//! # CSS — Privacy-Preserving Event-Driven Integration
//!
//! Umbrella crate re-exporting the full CSS platform. See `README.md`
//! for a guided tour and `DESIGN.md` for the subsystem inventory.
//!
//! ```
//! use css::prelude::*;
//! ```

pub use css_audit as audit;
pub use css_blackbox as blackbox;
pub use css_bus as bus;
pub use css_controller as controller;
pub use css_core as core;
pub use css_crypto as crypto;
pub use css_event as event;
pub use css_gateway as gateway;
pub use css_health as health;
pub use css_monitor as monitor;
pub use css_policy as policy;
pub use css_registry as registry;
pub use css_sim as sim;
pub use css_storage as storage;
pub use css_telemetry as telemetry;
pub use css_trace as trace;
pub use css_types as types;
pub use css_xml as xml;

/// Commonly used items, re-exported in one place.
pub mod prelude {
    pub use css_core::prelude::*;
}
