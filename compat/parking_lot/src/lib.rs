//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no access to crates.io, so this workspace
//! vendors the small API subset the CSS crates actually use — a
//! non-poisoning [`Mutex`], [`RwLock`], and a [`Condvar`] with
//! deadline waits — implemented over `std::sync`. Semantics match
//! parking_lot for the supported surface: `lock()` never returns a
//! poison error (a poisoned std lock is recovered via `into_inner`).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Instant;

/// A mutual exclusion primitive (non-poisoning, like `parking_lot`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a [`Condvar`] wait with a deadline.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |g| {
            self.inner.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        let mut timed_out = false;
        replace_guard(guard, |g| {
            let (g, result) = self
                .inner
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = result.timed_out();
            g
        });
        WaitTimeoutResult { timed_out }
    }
}

/// Run `f` on the guard inside `slot`, temporarily moving it out.
///
/// `std::sync::Condvar` consumes and returns the guard; parking_lot's
/// API takes `&mut`. Bridging needs a take-and-put-back, which is done
/// with a panic-on-unwind bomb avoided by `f` never panicking in
/// practice (waits don't run user code).
// The workspace denies unsafe_code; this is the one audited exception —
// the guard move-out/move-in below is sound because `f` cannot panic
// (Condvar waits run no user code) and the Bomb aborts if it somehow does.
#[allow(unsafe_code)]
fn replace_guard<'a, T: ?Sized>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T>,
) {
    // SAFETY-free version: use Option dance via ptr::read/write would be
    // unsafe; instead wrap the inner guard in an Option-like move using
    // std::mem::replace with a second lock is impossible. We therefore
    // rely on take-by-value through a helper struct.
    struct Bomb;
    impl Drop for Bomb {
        fn drop(&mut self) {
            if std::thread::panicking() {
                // The process state is unrecoverable if the wait itself
                // panicked while the guard was moved out; abort rather
                // than risk UB.
                std::process::abort();
            }
        }
    }
    let bomb = Bomb;
    // Move the guard out, run the wait, and move the result back in.
    unsafe {
        let g = std::ptr::read(&slot.inner);
        let g = f(g);
        std::ptr::write(&mut slot.inner, g);
    }
    std::mem::forget(bomb);
}

/// A reader-writer lock (non-poisoning subset).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_until(&mut g, Instant::now() + Duration::from_millis(20));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_wakes_across_threads() {
        let m = Arc::new(Mutex::new(false));
        let c = Arc::new(Condvar::new());
        let (m2, c2) = (m.clone(), c.clone());
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            *m2.lock() = true;
            c2.notify_all();
        });
        let mut g = m.lock();
        let deadline = Instant::now() + Duration::from_secs(5);
        while !*g {
            let r = c.wait_until(&mut g, deadline);
            if r.timed_out() {
                break;
            }
        }
        assert!(*g);
        t.join().unwrap();
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
