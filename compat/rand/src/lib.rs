//! Offline stand-in for the `rand` crate (0.8-style API subset).
//!
//! The build container has no crates.io access, so this workspace
//! vendors the surface the CSS crates use: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen_range`, `gen_bool`, `gen`, plus `fill_bytes`. The generator is
//! SplitMix64-seeded xoshiro256** — fast, reproducible, and obviously
//! **not** cryptographic (neither is rand's `StdRng` contractually).

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: Into<UniformRange<T>>,
    {
        let UniformRange { low, high_incl } = range.into();
        T::sample(self, low, high_incl)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<T: RngCore> Rng for T {}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A `(low, high-inclusive)` pair a range argument desugars to.
pub struct UniformRange<T> {
    low: T,
    high_incl: T,
}

impl<T: SampleUniform> From<Range<T>> for UniformRange<T> {
    fn from(r: Range<T>) -> Self {
        assert!(r.start < r.end, "gen_range called with empty range");
        UniformRange {
            high_incl: T::pred(r.end),
            low: r.start,
        }
    }
}

impl<T: SampleUniform + Copy> From<RangeInclusive<T>> for UniformRange<T> {
    fn from(r: RangeInclusive<T>) -> Self {
        UniformRange {
            low: *r.start(),
            high_incl: *r.end(),
        }
    }
}

/// Types uniformly sampleable from a range.
pub trait SampleUniform: PartialOrd + Sized {
    /// The value immediately below `v` (for half-open ranges).
    fn pred(v: Self) -> Self;
    /// A uniform sample from `[low, high]` (inclusive).
    fn sample<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn pred(v: Self) -> Self { v - 1 }
            fn sample<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u64).wrapping_sub(low as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                // Debiased multiply-shift (Lemire).
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut l = m as u64;
                if l < span {
                    let t = span.wrapping_neg() % span;
                    while l < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        l = m as u64;
                    }
                }
                low.wrapping_add((m >> 64) as $t)
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn pred(v: Self) -> Self { v - 1 }
            fn sample<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                let offset = u64::sample(rng, 0, span);
                low.wrapping_add(offset as $t)
            }
        }
    )*};
}

impl_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn pred(v: Self) -> Self {
        v
    }
    fn sample<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

/// Types with a "natural" uniform distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro reference seeding.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..18u64);
            assert!((10..18).contains(&v));
            let s = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&s));
            let c = rng.gen_range(0..26u8);
            assert!(c < 26);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((1_500..2_500).contains(&hits), "p=0.2 gave {hits}/10000");
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        for b in buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b}");
        }
    }
}
