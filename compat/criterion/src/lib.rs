//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so this workspace
//! vendors the API subset the E1–E14 benches use: `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::{iter, iter_batched}`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a
//! plain wall-clock loop (median of timed batches) — good enough to
//! regenerate the experiment tables, with none of criterion's
//! statistics machinery.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stand-in times each
/// routine call individually, so the variants are equivalent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id like `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    /// Nanoseconds per iteration measured by the last `iter*` call.
    ns_per_iter: f64,
    /// Total routine invocations across the last `iter*` call.
    iters: u64,
    measurement: Duration,
}

impl Bencher {
    /// Time `routine` over repeated calls.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm up and estimate a batch size targeting ~1ms per batch.
        let start = Instant::now();
        hint::black_box(routine());
        let one = start.elapsed().max(Duration::from_nanos(20));
        let batch = (Duration::from_millis(1).as_nanos() / one.as_nanos()).clamp(1, 100_000) as u64;

        let deadline = Instant::now() + self.measurement;
        let mut samples: Vec<f64> = Vec::new();
        while Instant::now() < deadline || samples.is_empty() {
            let t0 = Instant::now();
            for _ in 0..batch {
                hint::black_box(routine());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / batch as f64);
            if samples.len() >= 5_000 {
                break;
            }
        }
        self.iters = 1 + batch * samples.len() as u64;
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        self.ns_per_iter = samples[samples.len() / 2];
    }

    /// Time `routine` with a fresh untimed `setup` input per call.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let deadline = Instant::now() + self.measurement;
        let mut samples: Vec<f64> = Vec::new();
        while Instant::now() < deadline || samples.is_empty() {
            let input = setup();
            let t0 = Instant::now();
            hint::black_box(routine(input));
            samples.push(t0.elapsed().as_nanos() as f64);
            if samples.len() >= 5_000 {
                break;
            }
        }
        self.iters = samples.len() as u64;
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the stand-in sizes batches by
    /// time, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (throughput annotations ignored).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d.min(Duration::from_millis(500));
        self
    }

    /// Run one benchmark.
    pub fn bench_function<O>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher) -> O,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            ns_per_iter: 0.0,
            iters: 0,
            measurement: self.criterion.measurement,
        };
        f(&mut b);
        report(&self.name, &id, b.ns_per_iter, b.iters);
        self
    }

    /// Run one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, O>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I) -> O,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            ns_per_iter: 0.0,
            iters: 0,
            measurement: self.criterion.measurement,
        };
        f(&mut b, input);
        report(&self.name, &id, b.ns_per_iter, b.iters);
        self
    }

    /// End the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

fn report(group: &str, id: &BenchmarkId, ns: f64, iters: u64) {
    let (value, unit) = if ns >= 1_000_000.0 {
        (ns / 1_000_000.0, "ms")
    } else if ns >= 1_000.0 {
        (ns / 1_000.0, "µs")
    } else {
        (ns, "ns")
    };
    eprintln!("{group}/{id:<40} time: {value:>10.3} {unit}/iter (n={iters})");
}

/// The top-level bench context.
pub struct Criterion {
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // CSS_BENCH_MS overrides the per-benchmark measurement window.
        let ms = std::env::var("CSS_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Criterion {
            measurement: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Accepted for CLI compatibility; arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Define a bench group function from target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` from bench group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_positive_time() {
        std::env::set_var("CSS_BENCH_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        std::env::set_var("CSS_BENCH_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("scale", 32).to_string(), "scale/32");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
