//! The [`Strategy`] trait and core strategy implementations.

use crate::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A generator of random values of one type.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// pure function from an RNG to a value.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`; `whence` names the filter in
    /// the panic raised if it rejects too often.
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }

    /// Randomly permute generated collections.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shuffleable,
    {
        Shuffle { inner: self }
    }

    /// Build recursive structures: each of `depth` levels flips between
    /// staying at the current depth and wrapping once more via `branch`.
    /// The size/branch hints are accepted for API compatibility only.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = branch(current).boxed();
            current = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        current
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe shim behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the alternatives (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.whence
        );
    }
}

/// Collections that [`Strategy::prop_shuffle`] can permute.
pub trait Shuffleable {
    /// Permute in place.
    fn shuffle(&mut self, rng: &mut TestRng);
}

impl<T> Shuffleable for Vec<T> {
    fn shuffle(&mut self, rng: &mut TestRng) {
        // Fisher–Yates.
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// See [`Strategy::prop_shuffle`].
pub struct Shuffle<S> {
    inner: S,
}

impl<S: Strategy> Strategy for Shuffle<S>
where
    S::Value: Shuffleable,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut v = self.inner.generate(rng);
        v.shuffle(rng);
        v
    }
}

/// A collection-size specification (`0..10`, `1..=4`, or a fixed
/// count), sampled uniformly per generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    /// Draw one size.
    pub fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.min..=self.max)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Types with a canonical full-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Sample uniformly from the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: rand::Standard> Arbitrary for T {
    fn arbitrary(rng: &mut TestRng) -> T {
        rng.gen::<T>()
    }
}

/// The canonical strategy for `T` (integers, `bool`, `f64`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl<T> Strategy for Range<T>
where
    T: rand::SampleUniform + Copy + 'static,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: rand::SampleUniform + Copy + 'static,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// ---- regex-subset string strategies --------------------------------

/// One repeated character class in a compiled pattern.
struct Atom {
    /// Inclusive `(lo, hi)` codepoint ranges.
    ranges: Vec<(u32, u32)>,
    min: u32,
    max: u32,
}

/// Compile the supported regex subset: literal characters, `\`-escapes,
/// `[...]` classes of literals and `a-z` ranges, and the quantifiers
/// `{m}`, `{m,n}`, `?`, `*`, `+`. Anything else panics — the point is
/// generating test data, not full regex semantics.
fn compile_pattern(pattern: &str) -> Vec<Atom> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let ranges = match c {
            '[' => {
                let mut ranges = Vec::new();
                let mut pending: Option<char> = None;
                loop {
                    let c = chars.next().unwrap_or_else(|| {
                        panic!("unterminated character class in pattern {pattern:?}")
                    });
                    match c {
                        ']' => {
                            if let Some(p) = pending {
                                ranges.push((p as u32, p as u32));
                            }
                            break;
                        }
                        '-' if pending.is_some() && chars.peek() != Some(&']') => {
                            let lo = pending.take().expect("pending start");
                            let hi = chars.next().expect("range end");
                            assert!(lo <= hi, "inverted range in pattern {pattern:?}");
                            ranges.push((lo as u32, hi as u32));
                        }
                        '\\' => {
                            if let Some(p) = pending.replace(chars.next().unwrap_or_else(|| {
                                panic!("dangling escape in pattern {pattern:?}")
                            })) {
                                ranges.push((p as u32, p as u32));
                            }
                        }
                        '^' if pending.is_none() && ranges.is_empty() => {
                            panic!("negated classes are unsupported in pattern {pattern:?}")
                        }
                        c => {
                            if let Some(p) = pending.replace(c) {
                                ranges.push((p as u32, p as u32));
                            }
                        }
                    }
                }
                assert!(!ranges.is_empty(), "empty character class in {pattern:?}");
                ranges
            }
            '\\' => {
                let c = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                vec![(c as u32, c as u32)]
            }
            '.' => vec![(' ' as u32, '~' as u32)],
            c => vec![(c as u32, c as u32)],
        };
        // Optional quantifier.
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut body = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    body.push(c);
                }
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.parse()
                            .unwrap_or_else(|_| panic!("bad quantifier {body:?}")),
                        n.parse()
                            .unwrap_or_else(|_| panic!("bad quantifier {body:?}")),
                    ),
                    None => {
                        let m = body
                            .parse()
                            .unwrap_or_else(|_| panic!("bad quantifier {body:?}"));
                        (m, m)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
        atoms.push(Atom { ranges, min, max });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in compile_pattern(self) {
            let count = rng.gen_range(atom.min..=atom.max);
            let total: u32 = atom.ranges.iter().map(|(lo, hi)| hi - lo + 1).sum();
            for _ in 0..count {
                let mut offset = rng.gen_range(0..total);
                for &(lo, hi) in &atom.ranges {
                    let span = hi - lo + 1;
                    if offset < span {
                        out.push(
                            char::from_u32(lo + offset)
                                .expect("pattern ranges are valid codepoints"),
                        );
                        break;
                    }
                    offset -= span;
                }
            }
        }
        out
    }
}
