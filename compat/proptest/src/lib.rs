//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this workspace
//! vendors the API subset its property tests use: the [`Strategy`]
//! trait with `prop_map` / `prop_filter` / `prop_recursive` /
//! `prop_shuffle`, strategies for integer ranges, `&str` regex
//! patterns (a character-class subset), tuples, [`collection`],
//! [`option`], [`sample`], plus the `proptest!`, `prop_assert!`,
//! `prop_assert_eq!` and `prop_oneof!` macros.
//!
//! Differences from real proptest: generation only — **no shrinking**
//! and no failure persistence. A failing case reports the generator
//! seed (settable via `PROPTEST_SEED`) so runs are reproducible; case
//! count defaults to 64 (`PROPTEST_CASES` overrides).

pub mod strategy;

pub use strategy::{any, BoxedStrategy, Just, Strategy, Union};

/// The RNG handed to strategies.
pub type TestRng = rand::rngs::StdRng;

/// Runner configuration resolved from the environment.
pub struct Runner {
    /// Number of cases per property.
    pub cases: u32,
    /// Seed in use (print on failure for reproduction).
    pub seed: u64,
    /// The generator.
    pub rng: TestRng,
}

impl Default for Runner {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(0)
            });
        Runner {
            cases,
            seed,
            rng: <TestRng as rand::SeedableRng>::seed_from_u64(seed),
        }
    }
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Collection strategies.
pub mod collection {
    use super::strategy::{SizeRange, Strategy};
    use super::TestRng;
    use std::collections::{BTreeMap, BTreeSet};

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for ordered sets. The set size may come out below the
    /// requested minimum when the element domain is too small — same
    /// caveat as real proptest.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < n && attempts < n * 10 + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Strategy for ordered maps (size caveat as [`btree_set`]).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            let mut out = BTreeMap::new();
            let mut attempts = 0;
            while out.len() < n && attempts < n * 10 + 16 {
                out.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// `None` half the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_bool(0.5) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Sampling strategies over concrete values.
pub mod sample {
    use super::strategy::{SizeRange, Strategy};
    use super::TestRng;
    use rand::Rng;

    /// A random order-preserving subsequence of `values` whose length
    /// is drawn from `size`.
    pub fn subsequence<T: Clone>(
        values: Vec<T>,
        size: impl Into<SizeRange>,
    ) -> SubsequenceStrategy<T> {
        SubsequenceStrategy {
            values,
            size: size.into(),
        }
    }

    /// See [`subsequence`].
    pub struct SubsequenceStrategy<T> {
        values: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for SubsequenceStrategy<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng).min(self.values.len());
            // Reservoir-free selection: pick n distinct indices.
            let mut picked: Vec<usize> = Vec::new();
            while picked.len() < n {
                let i = rng.gen_range(0..self.values.len());
                if !picked.contains(&i) {
                    picked.push(i);
                }
            }
            picked.sort_unstable();
            picked.iter().map(|&i| self.values[i].clone()).collect()
        }
    }
}

/// Run each property with randomized inputs.
///
/// Supported form: zero or more `fn name(arg in strategy, ...) { body }`
/// items, each carrying its attributes (`#[test]`, doc comments).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::Runner::default();
                for case in 0..runner.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut runner.rng);)*
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || $body),
                    );
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest: case {}/{} failed (re-run with PROPTEST_SEED={})",
                            case + 1,
                            runner.cases,
                            runner.seed,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Assert inside a property (plain `assert!` in the stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Pick uniformly among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Generated ranges stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 10u64..20, y in -3i64..3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-3..3).contains(&y));
        }

        /// Regex-subset strings match their class and length bounds.
        #[test]
        fn regex_strings_shape(s in "[A-Z][a-z]{2,5}") {
            let chars: Vec<char> = s.chars().collect();
            prop_assert!((3..=6).contains(&chars.len()));
            prop_assert!(chars[0].is_ascii_uppercase());
            prop_assert!(chars[1..].iter().all(|c| c.is_ascii_lowercase()));
        }

        /// Collections respect their size ranges.
        #[test]
        fn collections_sized(
            v in crate::collection::vec(any::<u8>(), 2..5),
            o in crate::option::of(0u32..10),
        ) {
            prop_assert!((2..5).contains(&v.len()));
            if let Some(x) = o {
                prop_assert!(x < 10);
            }
        }

        /// prop_oneof, map and filter compose.
        #[test]
        fn combinators_compose(
            x in prop_oneof![
                (0u32..10).prop_map(|v| v * 2),
                (100u32..110).prop_filter("keep evens", |v| v % 2 == 0),
            ],
        ) {
            prop_assert!(x < 20 || (100..110).contains(&x));
        }

        /// Subsequence preserves order; shuffle preserves multiset.
        #[test]
        fn subsequence_and_shuffle(
            sub in crate::sample::subsequence(vec![1, 2, 3, 4], 0..=4),
            mut shuffled in crate::sample::subsequence(vec![1, 2, 3, 4], 4..=4).prop_shuffle(),
        ) {
            let mut sorted = sub.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&sorted, &sub, "subsequence must preserve order");
            shuffled.sort_unstable();
            prop_assert_eq!(shuffled, vec![1, 2, 3, 4]);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        fn leaf_sum(t: &Tree) -> u64 {
            match t {
                Tree::Leaf(n) => u64::from(*n),
                Tree::Node(kids) => kids.iter().map(leaf_sum).sum(),
            }
        }
        let strat = any::<u8>()
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut runner = crate::Runner::default();
        for _ in 0..200 {
            let t = strat.generate(&mut runner.rng);
            assert!(depth(&t) <= 4, "runaway recursion: {t:?}");
            let _ = leaf_sum(&t);
        }
    }
}
