//! Integration of the process monitor with the platform: monitoring
//! works on notifications alone, and the monitor's view matches what the
//! pathway generator actually produced.

use css::monitor::{InstanceStatus, ProcessDefinition, ProcessMonitor, Step};
use css::prelude::*;
use css::sim::{run_pathway, Scenario, ScenarioConfig};

#[test]
fn monitor_tracks_generated_pathways() {
    let scenario = Scenario::build(ScenarioConfig {
        persons: 6,
        family_doctors: 1,
        seed: 15,
    })
    .unwrap();
    let office = scenario
        .platform
        .consumer(scenario.orgs.elderly_office)
        .unwrap();
    let mut monitor = ProcessMonitor::new();
    monitor.register(ProcessDefinition::elderly_care());

    for person in scenario.persons.iter().take(4) {
        run_pathway(&scenario, &person.clone(), 2, person.id.value()).unwrap();
    }
    for person in scenario.persons.iter().take(4) {
        for n in office.inquire_by_person(person.id).unwrap() {
            monitor.feed(&n);
        }
    }
    let kpis = monitor.kpis();
    assert_eq!(kpis.total, 4);
    assert_eq!(kpis.completed, 4, "generated pathways respect deadlines");
    assert_eq!(kpis.deadline_violations, 0);
}

#[test]
fn monitor_never_touches_sensitive_data() {
    // Structural assertion of the paper's claim: the monitor's entire
    // input is notification messages, which carry identifying fields
    // only. We verify the notifications fed to it expose no detail
    // fields whatsoever.
    let scenario = Scenario::build(ScenarioConfig {
        persons: 2,
        family_doctors: 1,
        seed: 3,
    })
    .unwrap();
    let person = scenario.persons[0].clone();
    run_pathway(&scenario, &person, 1, 5).unwrap();
    let office = scenario
        .platform
        .consumer(scenario.orgs.elderly_office)
        .unwrap();
    for n in office.inquire_by_person(person.id).unwrap() {
        let xml = css::xml::to_string(&n.to_xml());
        // No clinical field names appear anywhere in the wire form.
        for sensitive in ["Diagnosis", "PsychNotes", "CareNotes", "AutonomyScore"] {
            assert!(
                !xml.contains(sensitive),
                "notification leaked a detail field name: {sensitive}"
            );
        }
    }
}

#[test]
fn deadline_violation_detected_region_wide() {
    // A citizen discharged but never assessed shows up as a violation
    // after the deadline, purely from the notification stream.
    let scenario = Scenario::build(ScenarioConfig {
        persons: 2,
        family_doctors: 1,
        seed: 9,
    })
    .unwrap();
    let person = scenario.persons[0].clone();
    let hospital = scenario.platform.producer(scenario.orgs.hospital).unwrap();
    let details = css::sim::synth_details(
        &EventTypeId::v1("hospital-discharge"),
        person.id,
        &mut rand::SeedableRng::seed_from_u64(1),
    );
    hospital
        .publish(
            person.clone(),
            "discharge",
            details,
            scenario.platform.clock().now(),
        )
        .unwrap();

    let office = scenario
        .platform
        .consumer(scenario.orgs.elderly_office)
        .unwrap();
    let mut monitor = ProcessMonitor::new();
    monitor.register(ProcessDefinition::elderly_care());
    for n in office.inquire_by_person(person.id).unwrap() {
        monitor.feed(&n);
    }
    // 10 silent days later...
    scenario.clock.advance(Duration::days(10));
    let flagged = monitor.check_deadlines(scenario.platform.clock().now());
    assert_eq!(flagged, 1);
    let inst = monitor.instance("elderly-care", person.id).unwrap();
    assert!(matches!(inst.status, InstanceStatus::Violated(_)));
}

#[test]
fn custom_process_definitions_compose() {
    // A second, unrelated process tracked concurrently over the same
    // stream.
    let mut monitor = ProcessMonitor::new();
    monitor.register(ProcessDefinition::elderly_care());
    monitor.register(
        ProcessDefinition::new("lab-follow-up", "Lab follow-up")
            .step(Step::required("test", EventTypeId::v1("blood-test")))
            .step(
                Step::required("report", EventTypeId::v1("radiology-report"))
                    .within(Duration::days(30)),
            ),
    );
    let make = |id: u64, ty: &str, at: u64| css::event::NotificationMessage {
        global_id: GlobalEventId(id),
        event_type: EventTypeId::v1(ty),
        person: PersonIdentity {
            id: PersonId(1),
            fiscal_code: "x".into(),
            name: "n".into(),
            surname: "s".into(),
        },
        description: String::new(),
        occurred_at: Timestamp(at),
        producer: ActorId(1),
    };
    monitor.feed(&make(1, "hospital-discharge", 0));
    monitor.feed(&make(2, "blood-test", 1));
    monitor.feed(&make(3, "radiology-report", 2));
    let kpis = monitor.kpis();
    assert_eq!(kpis.total, 2);
    assert_eq!(kpis.completed, 1); // lab follow-up done
    assert_eq!(kpis.running, 1); // elderly care still going
}
