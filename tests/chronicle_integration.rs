//! The metrics chronicle end to end: boot a platform with
//! `.chronicle(..)` on a simulated clock, drive a two-minute latency
//! degradation through the sampler, and prove the history answers for
//! it — `quantile_over_time(stage.total, p99)` shows the regression
//! over HTTP at raw *and* one-minute resolution, the anomaly detector
//! flips the `chronicle-anomaly` health check to Degraded within two
//! sampler ticks, and the auto-captured incident bundle embeds the
//! history window — all without leaking a single payload field or
//! personal identifier.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use css::core::{CssPlatform, CssPlatformBuilder, MemoryProvider, Retention};
use css::prelude::*;

/// A payload value that must never appear in any query answer.
const SECRET_RESULT: &str = "SECRET-RESULT-positive-hiv";
/// A personal identifier that must never appear either.
const SECRET_FISCAL: &str = "FCSECRET0000007";

/// Simulated milliseconds between sampler ticks.
const TICK_MS: u64 = 5_000;
/// Healthy per-request latency (well under the 200 µs SLO objective).
const HEALTHY_NS: u64 = 100_000;
/// Degraded per-request latency (a 50× regression).
const DEGRADED_NS: u64 = 5_000_000;

// ---- tiny HTTP client -----------------------------------------------------

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect ops server");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: ops\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let code: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (code, body)
}

/// Pull a `"key":<u64>` value out of a flat JSON body.
fn json_u64(body: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = body
        .find(&needle)
        .unwrap_or_else(|| panic!("{key} missing in {body}"));
    body[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric json value")
}

/// Pull the `"value":<f64>` a `/query` answer carries.
fn query_value(body: &str) -> f64 {
    let at = body
        .find("\"value\":")
        .unwrap_or_else(|| panic!("value missing in {body}"));
    body[at + "\"value\":".len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric value in {body}"))
}

fn assert_no_leak(context: &str, body: &str) {
    for secret in [SECRET_RESULT, SECRET_FISCAL, "Maria", "Rossi"] {
        assert!(
            !body.contains(secret),
            "{context} leaked {secret:?}: {body}"
        );
    }
}

// ---- platform under test --------------------------------------------------

fn incident_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("css-chronicle-int-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Boot a chronicle-equipped platform on a simulated clock and push one
/// sensitive event through publish → deliver → detail request, so the
/// leak checks have something real to miss.
fn chronicle_platform(tag: &str) -> (CssPlatform<MemoryProvider>, SocketAddr, PathBuf, SimClock) {
    let dir = incident_dir(tag);
    // Start on a minute boundary so the degradation windows below can
    // be aligned to whole one-minute slots.
    let clock = SimClock::starting_at(Timestamp(60_000));
    let mut platform = CssPlatformBuilder::new()
        .clock(Arc::new(clock.clone()))
        .tracing(1024)
        .ops_server("127.0.0.1:0")
        .ops_sample_interval(StdDuration::from_millis(2))
        .chronicle(Retention::default())
        .blackbox(512)
        .incident_dir(dir.clone())
        .build()
        .expect("boot platform");
    let addr = platform.ops_handle().expect("ops enabled").local_addr();

    let hospital = platform.register_organization("Hospital").unwrap();
    let doctor = platform.register_organization("Doctor").unwrap();
    platform.join(hospital, Role::Producer).unwrap();
    platform.join(doctor, Role::Consumer).unwrap();

    let ty = EventTypeId::v1("blood-test");
    let schema = EventSchema::new(ty.clone(), "Blood Test", hospital)
        .field(FieldDef::required("PatientId", FieldKind::Integer))
        .field(FieldDef::required("Result", FieldKind::Text).sensitive());
    let producer = platform.producer(hospital).unwrap();
    producer.declare(&schema, None).unwrap();
    producer
        .policy_wizard(&ty)
        .unwrap()
        .select_fields(["PatientId", "Result"])
        .unwrap()
        .grant_to([doctor])
        .unwrap()
        .for_purposes([Purpose::HealthcareTreatment])
        .labeled("doctor-bt", "")
        .save()
        .unwrap();

    let consumer = platform.consumer(doctor).unwrap();
    let sub = consumer.subscribe(&ty).unwrap();
    let details = EventDetails::new(ty.clone())
        .with("PatientId", FieldValue::Integer(7))
        .with("Result", FieldValue::Text(SECRET_RESULT.into()));
    let person = PersonIdentity {
        id: PersonId(7),
        fiscal_code: SECRET_FISCAL.into(),
        name: "Maria".into(),
        surname: "Rossi".into(),
    };
    producer
        .publish(person, "bt", details, platform.clock().now())
        .unwrap();
    let notification = sub.next().unwrap().expect("delivered").message;
    consumer
        .request_details(&notification, Purpose::HealthcareTreatment)
        .unwrap();
    (platform, addr, dir, clock)
}

/// One controlled sampler step: advance simulated time by [`TICK_MS`],
/// record a burst of `stage.total` observations at `latency_ns`, and
/// block until the sampler has run at least twice — so at least one
/// tick saw the burst at the advanced timestamp.
fn step(
    platform: &CssPlatform<MemoryProvider>,
    addr: SocketAddr,
    clock: &SimClock,
    latency_ns: u64,
) {
    clock.advance(Duration::millis(TICK_MS));
    for _ in 0..100 {
        platform
            .metrics()
            .histogram("stage.total")
            .record(latency_ns);
    }
    let t0 = json_u64(&get(addr, "/slo").1, "ticks");
    let deadline = Instant::now() + StdDuration::from_secs(10);
    while json_u64(&get(addr, "/slo").1, "ticks") < t0 + 2 {
        assert!(Instant::now() < deadline, "sampler stalled");
        std::thread::sleep(StdDuration::from_millis(1));
    }
}

// ---- the tests ------------------------------------------------------------

/// The acceptance path of the chronicle: a forced two-minute
/// degradation is visible through `/query` as a p99 regression at raw
/// and one-minute resolution, flips the anomaly health check to
/// Degraded within two sampler ticks, and freezes an incident bundle
/// with the history window embedded — all aggregate-only.
#[test]
fn two_minute_degradation_is_queryable_and_captured() {
    let (platform, addr, dir, clock) = chronicle_platform("degradation");

    // Two simulated minutes of healthy traffic: warms the anomaly
    // detector past its 8-sample warmup and fills whole 1-minute slots.
    let healthy_from = clock.now().0 + TICK_MS;
    for _ in 0..30 {
        step(&platform, addr, &clock, HEALTHY_NS);
    }
    let healthy_to = clock.now().0;

    // The degradation, aligned to a minute boundary so the minute-tier
    // comparison below reads whole slots.
    let aligned = (clock.now().0 / 60_000 + 1) * 60_000;
    clock.set(Timestamp(aligned - TICK_MS));
    let degraded_from = aligned;
    let ticks_at_regression = json_u64(&get(addr, "/slo").1, "ticks");
    step(&platform, addr, &clock, DEGRADED_NS);

    // The anomaly check flipped Degraded within two sampler ticks of
    // the regression landing: `step` waited for exactly two ticks past
    // the burst, and the check already reports drift.
    let (_, health) = get(addr, "/health");
    assert!(health.contains("chronicle-anomaly"), "{health}");
    assert!(health.contains("drifting"), "{health}");
    let ticks_at_degraded = json_u64(&get(addr, "/slo").1, "ticks");
    assert!(
        ticks_at_degraded.saturating_sub(ticks_at_regression) <= 6,
        "drift took {} ticks to surface",
        ticks_at_degraded - ticks_at_regression
    );

    for _ in 0..25 {
        step(&platform, addr, &clock, DEGRADED_NS);
    }
    let degraded_to = clock.now().0;
    assert!(
        degraded_to - degraded_from >= 120_000,
        "degradation shorter than two minutes"
    );

    // p99 over the degraded window vs the healthy one, at raw
    // resolution…
    let healthy_raw = query_value(
        &get(
            addr,
            &format!(
                "/query?metric=stage.total&fn=p99&res=raw&from={healthy_from}&to={healthy_to}"
            ),
        )
        .1,
    );
    let degraded_raw = query_value(
        &get(
            addr,
            &format!(
                "/query?metric=stage.total&fn=p99&res=raw&from={degraded_from}&to={degraded_to}"
            ),
        )
        .1,
    );
    assert!(
        degraded_raw >= DEGRADED_NS as f64,
        "raw p99 missed the regression: {degraded_raw}"
    );
    assert!(
        healthy_raw < DEGRADED_NS as f64 / 10.0,
        "healthy raw p99 implausibly high: {healthy_raw}"
    );
    assert!(
        degraded_raw > healthy_raw * 10.0,
        "raw regression not visible: {degraded_raw} vs {healthy_raw}"
    );

    // …and at one-minute resolution (whole slots on both sides: the
    // healthy window ends a full minute before the degradation starts).
    let (_, degraded_minute_body) = get(
        addr,
        &format!(
            "/query?metric=stage.total&fn=p99&res=minute&from={degraded_from}&to={degraded_to}"
        ),
    );
    let degraded_minute = query_value(&degraded_minute_body);
    let healthy_minute = query_value(
        &get(
            addr,
            &format!(
                "/query?metric=stage.total&fn=p99&res=minute&from={healthy_from}&to={}",
                degraded_from - 60_001
            ),
        )
        .1,
    );
    assert!(
        degraded_minute >= DEGRADED_NS as f64,
        "minute p99 missed the regression: {degraded_minute}"
    );
    assert!(
        degraded_minute > healthy_minute * 10.0,
        "minute regression not visible: {degraded_minute} vs {healthy_minute}"
    );

    // The anomaly edge froze an incident bundle with the history
    // window embedded (the SLO-critical capture may land first; scan
    // for the anomaly-triggered one).
    let deadline = Instant::now() + StdDuration::from_secs(10);
    let bundle = loop {
        let anomaly_bundle = std::fs::read_dir(&dir)
            .ok()
            .into_iter()
            .flatten()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("incident-") && n.ends_with(".json"))
            })
            .filter_map(|p| std::fs::read_to_string(p).ok())
            .find(|b| b.contains(r#""kind":"anomaly""#));
        if let Some(bundle) = anomaly_bundle {
            break bundle;
        }
        assert!(
            Instant::now() < deadline,
            "no anomaly bundle appeared in {}",
            dir.display()
        );
        std::thread::sleep(StdDuration::from_millis(2));
    };
    assert!(bundle.contains(r#""schema":"css-blackbox/1""#), "{bundle}");
    assert!(bundle.contains(r#""metric":"stage.total""#), "{bundle}");
    assert!(bundle.contains(r#""history":{"#), "{bundle}");
    assert!(
        bundle.contains(r#""anomaly":{"metric":"stage.total""#),
        "history carries the detector state: {bundle}"
    );
    assert!(
        bundle.contains(r#""series":[{"metric":"stage.total""#),
        "history carries the raw window: {bundle}"
    );

    // The platform-side accessors agree with the HTTP view.
    let chronicle = platform.chronicle().expect("chronicle enabled");
    assert!(
        chronicle
            .quantile_over_time(
                "stage.total",
                0.99,
                css::core::Resolution::Minute,
                degraded_from,
                degraded_to,
            )
            .expect("degraded window retained")
            >= DEGRADED_NS
    );

    // Aggregates only, end to end.
    assert_no_leak("/query", &degraded_minute_body);
    assert_no_leak("/health", &health);
    assert_no_leak("incident bundle", &bundle);
    let (_, range) = get(addr, "/range?metric=stage.total&res=minute");
    assert_no_leak("/range", &range);
    assert!(range.contains(r#""p99_ns":"#), "{range}");
}

/// `/query` and `/range` answer 404 without a chronicle, and with one
/// they list retained metrics on a bad request instead of guessing.
#[test]
fn query_endpoints_degrade_gracefully() {
    let platform = CssPlatformBuilder::new()
        .ops_server("127.0.0.1:0")
        .build()
        .expect("boot platform");
    let addr = platform.ops_handle().expect("ops enabled").local_addr();
    assert!(platform.chronicle().is_none());
    let (code, body) = get(addr, "/query?metric=stage.total");
    assert_eq!(code, 404, "{body}");
    assert!(body.contains("no chronicle configured"), "{body}");

    let (platform, addr, _dir, clock) = chronicle_platform("graceful");
    step(&platform, addr, &clock, HEALTHY_NS);
    let (code, body) = get(addr, "/query?metric=no.such.metric");
    assert_eq!(code, 200, "{body}");
    assert!(body.contains(r#""error":"unknown metric"#), "{body}");
    assert!(body.contains(r#""metric":"stage.total""#), "{body}");
    assert_no_leak("/query error document", &body);
}
