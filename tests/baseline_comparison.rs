//! Shape tests for the architecture comparison (experiments E1/E8):
//! the qualitative claims the paper makes must hold across parameter
//! sweeps, not just at one point.

use css::sim::baseline::FlowParams;
use css::sim::{full_push_exposure, point_to_point_exposure, two_phase_exposure};

#[test]
fn channel_growth_is_multiplicative_vs_additive() {
    for n in [2usize, 5, 10, 20, 40] {
        let p = FlowParams {
            producers: n,
            consumers: n,
            ..Default::default()
        };
        let ptp = point_to_point_exposure(&p);
        let css = two_phase_exposure(&p);
        assert_eq!(ptp.channels, n * n);
        assert_eq!(css.channels, 2 * n);
        if n > 2 {
            assert!(css.channels < ptp.channels);
        }
    }
}

#[test]
fn sensitive_exposure_ordering_holds_across_request_rates() {
    for prob in [0.0, 0.1, 0.3, 0.5, 0.9, 1.0] {
        let p = FlowParams {
            detail_request_prob: prob,
            allowed_fraction: 0.5,
            ..Default::default()
        };
        let ptp = point_to_point_exposure(&p);
        let push = full_push_exposure(&p);
        let css = two_phase_exposure(&p);
        // Two-phase never exposes more sensitive bytes than either
        // baseline (strictly less whenever the policy filters).
        assert!(css.sensitive_bytes <= push.sensitive_bytes);
        assert!(css.sensitive_bytes <= ptp.sensitive_bytes);
        if prob < 1.0 {
            assert!(css.sensitive_bytes < push.sensitive_bytes);
        }
        // And never discloses to consumers that did not ask.
        assert_eq!(css.unnecessary_disclosures, 0);
    }
}

#[test]
fn message_count_crossover_at_high_request_rates() {
    // Below ~50% request rate two-phase also sends FEWER bytes; the
    // extra round-trips only dominate when almost everyone wants
    // details. Locate the crossover and check it is interior.
    let at = |prob: f64| {
        let p = FlowParams {
            detail_request_prob: prob,
            ..Default::default()
        };
        (
            two_phase_exposure(&p).total_bytes,
            full_push_exposure(&p).total_bytes,
        )
    };
    let (css_low, push_low) = at(0.1);
    assert!(css_low < push_low, "low request rate favours two-phase");
    // Even at 100%, filtered responses keep total bytes below full push
    // with the default 50% allowed fraction.
    let (css_high, push_high) = at(1.0);
    assert!(css_high < push_high);
    // But with allow-everything policies and 100% request rate, the
    // protocol overhead finally makes two-phase more expensive.
    let p = FlowParams {
        detail_request_prob: 1.0,
        allowed_fraction: 1.0,
        ..Default::default()
    };
    assert!(two_phase_exposure(&p).total_bytes > full_push_exposure(&p).total_bytes);
    assert!(two_phase_exposure(&p).messages > full_push_exposure(&p).messages);
}

#[test]
fn measured_platform_behaviour_matches_analytic_shape() {
    // The analytic two-phase model and the measured platform agree on
    // the headline claim: raising the detail-request rate raises
    // sensitive exposure roughly linearly, and it is zero at rate zero.
    use css::sim::{run_workload, Scenario, ScenarioConfig, WorkloadConfig};
    let mut released = Vec::new();
    for (i, prob) in [0.0, 0.25, 0.5, 1.0].into_iter().enumerate() {
        let scenario = Scenario::build(ScenarioConfig {
            persons: 10,
            family_doctors: 1,
            seed: 42,
        })
        .unwrap();
        let report = run_workload(
            &scenario,
            WorkloadConfig {
                events: 100,
                detail_request_prob: prob,
                wrong_purpose_prob: 0.0,
                seed: 1000 + i as u64,
            },
        );
        released.push(report.sensitive_released_bytes);
    }
    assert_eq!(released[0], 0);
    assert!(released[1] > 0);
    assert!(
        released[3] > released[1],
        "exposure grows with request rate"
    );
}
