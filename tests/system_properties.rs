//! Property-based tests of subsystem invariants beyond the privacy core:
//! bus delivery semantics, the consent lattice, storage round-trips, and
//! monitor bookkeeping.

use proptest::prelude::*;

use css::bus::{Broker, OverflowPolicy, SubscriptionConfig};
use css::controller::{ConsentDecision, ConsentRegistry, ConsentScope};
use css::monitor::{ProcessDefinition, ProcessMonitor, Step};
use css::storage::{KvStore, MemBackend};
use css::types::{ActorId, EventTypeId, PersonId, Timestamp};

proptest! {
    /// FIFO per subscription: any publish sequence is drained in order.
    #[test]
    fn bus_preserves_publish_order(messages in proptest::collection::vec(any::<u32>(), 0..100)) {
        let broker: Broker<u32> = Broker::new();
        broker.create_topic("t");
        let sub = broker.subscribe("t", SubscriptionConfig {
            capacity: 1 << 10,
            ..Default::default()
        }).unwrap();
        for m in &messages {
            broker.publish("t", *m).unwrap();
        }
        prop_assert_eq!(sub.drain().unwrap(), messages);
    }

    /// DropOldest keeps exactly the newest `capacity` messages.
    #[test]
    fn drop_oldest_keeps_suffix(
        messages in proptest::collection::vec(any::<u16>(), 1..80),
        capacity in 1usize..20,
    ) {
        let broker: Broker<u16> = Broker::new();
        broker.create_topic("t");
        let sub = broker.subscribe("t", SubscriptionConfig {
            capacity,
            overflow: OverflowPolicy::DropOldest,
            ..Default::default()
        }).unwrap();
        for m in &messages {
            broker.publish("t", *m).unwrap();
        }
        let expected: Vec<u16> = messages
            .iter()
            .skip(messages.len().saturating_sub(capacity))
            .copied()
            .collect();
        prop_assert_eq!(sub.drain().unwrap(), expected);
    }

    /// Publish/deliver/ack accounting always balances.
    #[test]
    fn bus_stats_balance(
        publishes in 0usize..60,
        subscribers in 1usize..5,
    ) {
        let broker: Broker<usize> = Broker::new();
        broker.create_topic("t");
        let subs: Vec<_> = (0..subscribers)
            .map(|_| broker.subscribe("t", SubscriptionConfig {
                capacity: 1 << 12,
                ..Default::default()
            }).unwrap())
            .collect();
        for i in 0..publishes {
            broker.publish("t", i).unwrap();
        }
        let mut acked = 0u64;
        for s in &subs {
            acked += s.drain().unwrap().len() as u64;
        }
        let stats = broker.stats();
        prop_assert_eq!(stats.published, publishes as u64);
        prop_assert_eq!(stats.fanned_out, (publishes * subscribers) as u64);
        prop_assert_eq!(acked, stats.fanned_out);
    }

    /// Consent resolution is deterministic and most-specific-wins: a
    /// (producer, event-type)-scoped directive always beats any global
    /// directive, regardless of recording order or timestamps.
    #[test]
    fn consent_specificity_dominates(
        global_decision in any::<bool>(),
        specific_decision in any::<bool>(),
        global_time in 0u64..1_000,
        specific_time in 0u64..1_000,
    ) {
        let to_decision = |b: bool| if b { ConsentDecision::OptIn } else { ConsentDecision::OptOut };
        let mut reg = ConsentRegistry::new();
        let person = PersonId(1);
        let producer = ActorId(2);
        let ty = EventTypeId::v1("e");
        reg.record(person, ConsentScope::All, to_decision(global_decision), Timestamp(global_time));
        reg.record(
            person,
            ConsentScope::ProducerEventType(producer, ty.clone()),
            to_decision(specific_decision),
            Timestamp(specific_time),
        );
        prop_assert_eq!(reg.allows(person, producer, &ty), specific_decision);
        // An unrelated producer only sees the global directive.
        prop_assert_eq!(
            reg.allows(person, ActorId(99), &ty),
            global_decision
        );
    }

    /// KvStore equals a HashMap under any operation sequence, including
    /// after a replay from the log.
    #[test]
    fn kv_store_matches_model(
        ops in proptest::collection::vec(
            (0u8..3, 0u8..8, any::<u16>()), 0..100),
    ) {
        let (mut kv, _) = KvStore::open(MemBackend::new()).unwrap();
        let mut model = std::collections::HashMap::new();
        for (op, key, value) in ops {
            let k = vec![key];
            match op {
                0 | 1 => {
                    kv.put(&k, &value.to_le_bytes()).unwrap();
                    model.insert(k, value.to_le_bytes().to_vec());
                }
                _ => {
                    let was = kv.delete(&k).unwrap();
                    prop_assert_eq!(was, model.remove(&k).is_some());
                }
            }
        }
        prop_assert_eq!(kv.len(), model.len());
        for (k, v) in &model {
            let stored = kv.get(k).unwrap();
            prop_assert_eq!(stored.as_deref(), Some(v.as_slice()));
        }
    }

    /// A monitor instance never reports Completed unless every required
    /// step is in its history, for any feeding order of step events.
    #[test]
    fn monitor_completion_requires_all_required_steps(
        // Random subsequence of the 3-step process, possibly shuffled.
        order in proptest::sample::subsequence(vec![0usize, 1, 2], 0..=3).prop_shuffle(),
    ) {
        let def = ProcessDefinition::new("p", "P")
            .step(Step::required("a", EventTypeId::v1("step-a")))
            .step(Step::required("b", EventTypeId::v1("step-b")))
            .step(Step::required("c", EventTypeId::v1("step-c")));
        let mut monitor = ProcessMonitor::new();
        monitor.register(def);
        let codes = ["step-a", "step-b", "step-c"];
        for (i, step) in order.iter().enumerate() {
            monitor.feed(&css::event::NotificationMessage {
                global_id: css::types::GlobalEventId(i as u64 + 1),
                event_type: EventTypeId::v1(codes[*step]),
                person: css::types::PersonIdentity {
                    id: PersonId(1),
                    fiscal_code: "x".into(),
                    name: "n".into(),
                    surname: "s".into(),
                },
                description: String::new(),
                occurred_at: Timestamp(i as u64),
                producer: ActorId(1),
            });
        }
        if let Some(inst) = monitor.instance("p", PersonId(1)) {
            let completed = inst.status == css::monitor::InstanceStatus::Completed;
            let has_all = (0..3).all(|s| inst.history.iter().any(|r| r.step == s));
            prop_assert!(!completed || has_all, "completed without all steps: {inst:?}");
        }
    }
}
