//! End-to-end causal tracing: one publish, one subscription poll, one
//! index inquiry and one authorized detail request, all under an
//! enabled tracer — then the span trees, the trace ids stamped into
//! the audit log, and both exporters are checked against each other.

use std::sync::Arc;

use css::audit::{AuditAction, AuditQuery};
use css::prelude::*;
use css::trace::{render_chrome_trace, render_text_tree, Span, SpanId, TraceId};

fn person(i: u64) -> PersonIdentity {
    PersonIdentity {
        id: PersonId(i),
        fiscal_code: format!("FC{i:014}"),
        name: "P".into(),
        surname: format!("S{i}"),
    }
}

/// Build a traced platform, run the full flow once, and return
/// (finished spans, audit records, notification count).
fn traced_flow(capacity: usize) -> (css::core::CssPlatform, Vec<Span>) {
    let clock = SimClock::starting_at(Timestamp(7_000));
    let mut platform = CssPlatform::builder()
        .clock(Arc::new(clock.clone()))
        .tracing(capacity)
        .build()
        .unwrap();
    let hospital = platform.register_organization("Hospital").unwrap();
    let doctor = platform.register_organization("Doctor").unwrap();
    platform.join(hospital, Role::Producer).unwrap();
    platform.join(doctor, Role::Consumer).unwrap();

    let ty = EventTypeId::v1("blood-test");
    let schema = EventSchema::new(ty.clone(), "Blood Test", hospital)
        .field(FieldDef::required("PatientId", FieldKind::Integer))
        .field(FieldDef::required("Result", FieldKind::Text).sensitive());
    let producer = platform.producer(hospital).unwrap();
    producer.declare(&schema, None).unwrap();
    producer
        .policy_wizard(&ty)
        .unwrap()
        .select_fields(["PatientId", "Result"])
        .unwrap()
        .grant_to([doctor])
        .unwrap()
        .for_purposes([Purpose::HealthcareTreatment])
        .labeled("doctor-bt", "")
        .save()
        .unwrap();

    let consumer = platform.consumer(doctor).unwrap();
    let sub = consumer.subscribe(&ty).unwrap();

    let details = EventDetails::new(ty.clone())
        .with("PatientId", FieldValue::Integer(7))
        .with("Result", FieldValue::Text("negative".into()));
    producer
        .publish(person(1), "bt", details, clock.now())
        .unwrap();

    // The deliver span stays open until the subscriber polls.
    let delivered = sub.next().unwrap().expect("delivered");
    assert!(delivered.trace.is_some(), "delivery carries the trace id");
    let notification = delivered.message;

    let inquired = consumer.inquire_by_person(PersonId(1)).unwrap();
    assert_eq!(inquired.len(), 1);

    consumer
        .request_details(&notification, Purpose::HealthcareTreatment)
        .unwrap();

    let spans = platform.tracer().finished_spans();
    (platform, spans)
}

fn by_name<'a>(spans: &'a [Span], name: &str) -> &'a Span {
    let mut hits = spans.iter().filter(|s| s.name == name);
    let first = hits.next().unwrap_or_else(|| panic!("span {name} missing"));
    assert!(hits.next().is_none(), "span {name} not unique");
    first
}

fn children(spans: &[Span], parent: SpanId) -> Vec<&Span> {
    spans.iter().filter(|s| s.parent == Some(parent)).collect()
}

#[test]
fn one_flow_yields_three_causal_trees_and_stamped_audit_records() {
    let (platform, spans) = traced_flow(256);

    // ---- publish tree: publish → {bus.route → bus.deliver, index.insert}
    let publish = by_name(&spans, "publish");
    assert!(publish.parent.is_none(), "publish is a root");
    let route = by_name(&spans, "bus.route");
    let deliver = by_name(&spans, "bus.deliver");
    let insert = by_name(&spans, "index.insert");
    assert_eq!(route.parent, Some(publish.id));
    assert_eq!(deliver.parent, Some(route.id));
    assert_eq!(insert.parent, Some(publish.id));
    for s in [route, deliver, insert] {
        assert_eq!(
            s.trace, publish.trace,
            "{} shares the publish trace",
            s.name
        );
    }

    // ---- inquiry tree: inquiry → index.filter
    let inquiry = by_name(&spans, "inquiry");
    assert!(inquiry.parent.is_none());
    let filter = by_name(&spans, "index.filter");
    assert_eq!(filter.parent, Some(inquiry.id));
    assert_eq!(filter.trace, inquiry.trace);
    assert_ne!(inquiry.trace, publish.trace);

    // ---- detail tree: every Algorithm 1 stage and every Algorithm 2
    // stage hangs off the detail_request root, in one trace.
    let detail = by_name(&spans, "detail_request");
    assert!(detail.parent.is_none());
    let stage_names: Vec<&str> = children(&spans, detail.id).iter().map(|s| s.name).collect();
    for stage in [
        "pep.pip_resolve",
        "pep.notified_check",
        "pep.consent_check",
        "pep.pdp_evaluate",
        "gateway.retrieve",
        "gateway.parse",
        "gateway.filter",
        "pep.obligation_filter",
    ] {
        assert!(
            stage_names.contains(&stage),
            "{stage} missing: {stage_names:?}"
        );
        assert_eq!(by_name(&spans, stage).trace, detail.trace);
    }
    let pdp = by_name(&spans, "pep.pdp_evaluate");
    let attrs: Vec<String> = pdp.attrs.iter().map(|a| a.to_string()).collect();
    assert!(attrs.contains(&"cache_hit=false".to_string()), "{attrs:?}");
    assert!(attrs.contains(&"decision=permit".to_string()), "{attrs:?}");

    // Within a trace, children nest inside the root's time window.
    for s in &spans {
        if s.parent.is_some() {
            let root = spans
                .iter()
                .find(|r| r.trace == s.trace && r.parent.is_none())
                .expect("root in buffer");
            assert!(s.start_ns >= root.start_ns, "{} starts inside root", s.name);
        }
    }

    // ---- audit records carry the trace ids of their operations.
    let published = platform.audit_query(&AuditQuery::new().action(AuditAction::Publish));
    assert_eq!(published.len(), 1);
    assert_eq!(published[0].trace, Some(publish.trace));
    let delivered = platform.audit_query(&AuditQuery::new().action(AuditAction::Delivery));
    assert_eq!(delivered.len(), 1);
    assert_eq!(delivered[0].trace, Some(publish.trace));
    let inquiries = platform.audit_query(&AuditQuery::new().action(AuditAction::IndexInquiry));
    assert_eq!(inquiries.len(), 1);
    assert_eq!(inquiries[0].trace, Some(inquiry.trace));
    let detail_recs = platform.audit_query(&AuditQuery::new().action(AuditAction::DetailRequest));
    assert_eq!(detail_recs.len(), 1);
    assert_eq!(detail_recs[0].trace, Some(detail.trace));

    // The trace dimension is queryable: joining by the publish trace id
    // returns exactly the records of that causal tree.
    let joined = platform.audit_query(&AuditQuery::new().trace(publish.trace));
    assert_eq!(joined.len(), 2, "Publish + Delivery: {joined:#?}");

    // The trace id is seeded from the platform clock (7_000 ms).
    assert_eq!(publish.trace.value() >> 32, 7_000);

    // ---- text exporter renders each tree with indented children.
    let text = render_text_tree(&spans);
    assert!(text.contains(&format!("trace {}", publish.trace)));
    assert!(text.contains("publish"));
    assert!(text.contains("  bus.route"));
    assert!(text.contains("    bus.deliver"));
    assert!(text.contains("  pep.pdp_evaluate"));
}

#[test]
fn chrome_export_is_valid_json_with_monotonic_ts_and_matched_pairs() {
    let (_platform, spans) = traced_flow(256);
    let json = render_chrome_trace(&spans);
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.ends_with("]}"));

    // Structurally valid JSON: braces/brackets balance outside strings.
    let (mut depth, mut in_str, mut escape) = (0i64, false, false);
    for c in json.chars() {
        if in_str {
            match (escape, c) {
                (true, _) => escape = false,
                (false, '\\') => escape = true,
                (false, '"') => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0, "unbalanced close");
    }
    assert_eq!(depth, 0, "unbalanced JSON");
    assert!(!in_str, "unterminated string");

    // Every span contributes exactly one B and one E, and the global
    // event sequence is sorted by ts.
    let begins = json.matches("\"ph\":\"B\"").count();
    let ends = json.matches("\"ph\":\"E\"").count();
    assert_eq!(begins, spans.len());
    assert_eq!(ends, spans.len());
    let mut last_ts = -1.0f64;
    for part in json.split("\"ts\":").skip(1) {
        let num: String = part
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        let ts: f64 = num.parse().expect("numeric ts");
        assert!(ts >= last_ts, "ts went backwards: {ts} after {last_ts}");
        last_ts = ts;
    }
    // Per-name pairing: each operation opens as often as it closes.
    for span in &spans {
        let b = format!("\"name\":\"{}\",\"cat\":\"css\",\"ph\":\"B\"", span.name);
        let e = format!("\"name\":\"{}\",\"cat\":\"css\",\"ph\":\"E\"", span.name);
        assert_eq!(
            json.matches(&b).count(),
            json.matches(&e).count(),
            "{}",
            span.name
        );
    }
}

#[test]
fn tiny_ring_drops_oldest_spans_but_keeps_the_newest() {
    // Capacity 4 cannot hold the ~16 spans of a full flow: the ring
    // must overwrite the oldest (the publish tree) and keep the tail
    // of the detail request, with the loss accounted for.
    let (platform, spans) = traced_flow(4);
    assert_eq!(spans.len(), 4, "ring retains exactly its capacity");
    let tracer = platform.tracer();
    assert!(tracer.dropped() > 0, "overflow must be counted");
    assert_eq!(tracer.recorded(), tracer.dropped() + spans.len() as u64);
    assert!(
        spans.iter().all(|s| s.name != "publish"),
        "oldest span evicted first: {spans:#?}"
    );
    // The newest span of the flow survives.
    assert!(spans.iter().any(|s| s.name == "detail_request"));
    // The drop counter is also exported as telemetry.
    let snapshot = platform.telemetry();
    assert_eq!(snapshot.counter("trace.spans_dropped"), tracer.dropped());
    assert_eq!(snapshot.counter("trace.spans_recorded"), tracer.recorded());
}

#[test]
fn untraced_platform_records_nothing_and_omits_trace_dimensions() {
    let clock = SimClock::starting_at(Timestamp(1_000));
    let mut platform = CssPlatform::in_memory_with_clock(Arc::new(clock.clone()));
    let hospital = platform.register_organization("H").unwrap();
    let doctor = platform.register_organization("D").unwrap();
    platform.join(hospital, Role::Producer).unwrap();
    platform.join(doctor, Role::Consumer).unwrap();
    let ty = EventTypeId::v1("x");
    let schema =
        EventSchema::new(ty.clone(), "X", hospital).field(FieldDef::required("A", FieldKind::Text));
    let producer = platform.producer(hospital).unwrap();
    producer.declare(&schema, None).unwrap();
    producer
        .policy_wizard(&ty)
        .unwrap()
        .select_fields(["A"])
        .unwrap()
        .grant_to([doctor])
        .unwrap()
        .for_purposes([Purpose::HealthcareTreatment])
        .labeled("p", "")
        .save()
        .unwrap();
    let consumer = platform.consumer(doctor).unwrap();
    let sub = consumer.subscribe(&ty).unwrap();
    let details = EventDetails::new(ty.clone()).with("A", FieldValue::Text("v".into()));
    producer
        .publish(person(1), "x", details, clock.now())
        .unwrap();
    let delivered = sub.next().unwrap().expect("delivered");
    assert_eq!(
        delivered.trace, None,
        "disabled tracer puts no id on deliveries"
    );
    assert!(!platform.tracer().is_enabled());
    assert!(platform.tracer().finished_spans().is_empty());
    for record in platform.audit_query(&AuditQuery::new()) {
        assert_eq!(record.trace, None, "no trace dimension when disabled");
    }
    // Round-trip sanity for the id type used in the audit dimension.
    let id: TraceId = "00000000000003e9".parse().unwrap();
    assert_eq!(id.to_string(), "00000000000003e9");
}
