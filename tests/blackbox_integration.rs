//! The flight recorder end to end: boot a platform with
//! `.blackbox(..)`, drive a traced detail request through a slowed
//! storage backend so a real exemplar lands in a slow histogram
//! bucket, then force the `detail_request_p99` SLO critical and prove
//! the recorder freezes an incident bundle to disk — whose exemplar
//! trace id joins back to the css-trace span tree *and* the audit log
//! — without leaking a single payload field or personal identifier.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use css::audit::{AuditAction, AuditQuery};
use css::core::{BackendProvider, CssPlatform, CssPlatformBuilder};
use css::prelude::*;
use css::storage::{LogBackend, MemBackend};
use css::trace::TraceId;

/// A payload value that must never appear in any bundle or endpoint.
const SECRET_RESULT: &str = "SECRET-RESULT-positive-hiv";
/// A personal identifier that must never appear either.
const SECRET_FISCAL: &str = "FCSECRET0000007";

// ---- latency-injectable storage ------------------------------------------

/// An in-memory backend whose reads stall while the shared flag is up —
/// the lever that turns one traced detail request into a genuine p99
/// outlier (and therefore a slow-bucket exemplar).
struct SlowBackend {
    inner: MemBackend,
    slow: Arc<AtomicBool>,
}

impl LogBackend for SlowBackend {
    fn append(&mut self, data: &[u8]) -> css::types::CssResult<u64> {
        self.inner.append(data)
    }
    fn read_at(&self, offset: u64, len: usize) -> css::types::CssResult<Vec<u8>> {
        if self.slow.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(2));
        }
        self.inner.read_at(offset, len)
    }
    fn len(&self) -> u64 {
        self.inner.len()
    }
    fn sync(&mut self) -> css::types::CssResult<()> {
        self.inner.sync()
    }
    fn truncate(&mut self, len: u64) -> css::types::CssResult<()> {
        self.inner.truncate(len)
    }
}

#[derive(Clone)]
struct SlowProvider {
    slow: Arc<AtomicBool>,
}

impl BackendProvider for SlowProvider {
    type Backend = SlowBackend;
    fn backend(&self, _name: &str) -> css::types::CssResult<SlowBackend> {
        Ok(SlowBackend {
            inner: MemBackend::new(),
            slow: self.slow.clone(),
        })
    }
}

// ---- tiny HTTP client -----------------------------------------------------

fn http(addr: SocketAddr, method: &str, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect ops server");
    write!(stream, "{method} {path} HTTP/1.0\r\nHost: ops\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let code: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (code, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    http(addr, "GET", path)
}

/// Pull a `"key":<u64>` value out of a flat JSON body.
fn json_u64(body: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = body
        .find(&needle)
        .unwrap_or_else(|| panic!("{key} missing in {body}"));
    body[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric json value")
}

/// The hex trace id of the slowest-bucket `stage.total` exemplar in a
/// bundle (or `/debug/exemplars`) body.
fn slowest_stage_total_exemplar(body: &str) -> String {
    let mut best: Option<(u64, String)> = None;
    for fragment in body
        .split(r#"{"histogram":"stage.total","bucket_ns":"#)
        .skip(1)
    {
        let bucket: u64 = fragment
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .expect("bucket_ns");
        let hex_at =
            fragment.find(r#""trace_id":""#).expect("exemplar trace id") + r#""trace_id":""#.len();
        let hex = fragment[hex_at..hex_at + 16].to_string();
        if best.as_ref().is_none_or(|(b, _)| bucket > *b) {
            best = Some((bucket, hex));
        }
    }
    best.expect("no stage.total exemplars in body").1
}

// ---- platform under test --------------------------------------------------

fn incident_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("css-blackbox-int-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Boot a recorder-equipped platform and push one sensitive event
/// through publish → deliver → detail request, so the leak checks have
/// something real to miss.
#[allow(clippy::type_complexity)]
fn blackbox_platform(
    tag: &str,
    slow: Arc<AtomicBool>,
) -> (
    CssPlatform<SlowProvider>,
    SocketAddr,
    PathBuf,
    ActorId,
    NotificationMessage,
) {
    let dir = incident_dir(tag);
    let mut platform = CssPlatformBuilder::new()
        .provider(SlowProvider { slow })
        .tracing(1024)
        .ops_server("127.0.0.1:0")
        .ops_sample_interval(Duration::from_millis(10))
        .blackbox(512)
        .incident_dir(dir.clone())
        .build()
        .expect("boot platform");
    let addr = platform.ops_handle().expect("ops enabled").local_addr();

    let hospital = platform.register_organization("Hospital").unwrap();
    let doctor = platform.register_organization("Doctor").unwrap();
    platform.join(hospital, Role::Producer).unwrap();
    platform.join(doctor, Role::Consumer).unwrap();

    let ty = EventTypeId::v1("blood-test");
    let schema = EventSchema::new(ty.clone(), "Blood Test", hospital)
        .field(FieldDef::required("PatientId", FieldKind::Integer))
        .field(FieldDef::required("Result", FieldKind::Text).sensitive());
    let producer = platform.producer(hospital).unwrap();
    producer.declare(&schema, None).unwrap();
    producer
        .policy_wizard(&ty)
        .unwrap()
        .select_fields(["PatientId", "Result"])
        .unwrap()
        .grant_to([doctor])
        .unwrap()
        .for_purposes([Purpose::HealthcareTreatment])
        .labeled("doctor-bt", "")
        .save()
        .unwrap();

    let consumer = platform.consumer(doctor).unwrap();
    let sub = consumer.subscribe(&ty).unwrap();
    let details = EventDetails::new(ty.clone())
        .with("PatientId", FieldValue::Integer(7))
        .with("Result", FieldValue::Text(SECRET_RESULT.into()));
    let person = PersonIdentity {
        id: PersonId(7),
        fiscal_code: SECRET_FISCAL.into(),
        name: "Maria".into(),
        surname: "Rossi".into(),
    };
    producer
        .publish(person, "bt", details, platform.clock().now())
        .unwrap();
    let notification = sub.next().unwrap().expect("delivered").message;
    consumer
        .request_details(&notification, Purpose::HealthcareTreatment)
        .unwrap();
    (platform, addr, dir, doctor, notification)
}

fn assert_no_leak(context: &str, body: &str) {
    for secret in [SECRET_RESULT, SECRET_FISCAL, "Maria", "Rossi"] {
        assert!(
            !body.contains(secret),
            "{context} leaked {secret:?}: {body}"
        );
    }
}

// ---- the tests ------------------------------------------------------------

/// The acceptance path of the flight recorder: an injected p99
/// regression produces — within the SLO engine's critical transition
/// (≤ 2 ticks) plus at most one tick of polling slack — an incident
/// bundle on disk whose exemplar trace id resolves both to the
/// css-trace span tree and to the audit log.
#[test]
fn p99_regression_writes_a_joinable_incident_bundle() {
    let slow = Arc::new(AtomicBool::new(false));
    let (platform, addr, dir, _doctor, notification) =
        blackbox_platform("regression", slow.clone());
    let consumer = platform.consumer(_doctor).unwrap();

    // One healthy baseline tick, then a few genuinely slow traced
    // requests: each stalls on storage reads, so its `stage.total`
    // exemplar lands in a slow bucket carrying its trace id.
    std::thread::sleep(Duration::from_millis(30));
    slow.store(true, Ordering::SeqCst);
    for _ in 0..3 {
        consumer
            .request_details(&notification, Purpose::HealthcareTreatment)
            .unwrap();
    }
    slow.store(false, Ordering::SeqCst);

    // Force the regression past the 200 µs objective. Plain records
    // never disturb exemplar slots, so the slow-bucket exemplar stays
    // the traced request's.
    for _ in 0..200 {
        platform
            .metrics()
            .histogram("stage.total")
            .record(5_000_000);
    }
    let ticks_at_regression = json_u64(&get(addr, "/slo").1, "ticks");

    let deadline = Instant::now() + Duration::from_secs(10);
    let (bundle, ticks_at_bundle) = loop {
        let ticks = json_u64(&get(addr, "/slo").1, "ticks");
        let newest = std::fs::read_dir(&dir)
            .ok()
            .into_iter()
            .flatten()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("incident-") && n.ends_with(".json"))
            })
            .max();
        if let Some(path) = newest {
            break (std::fs::read_to_string(path).expect("read bundle"), ticks);
        }
        assert!(
            Instant::now() < deadline,
            "no incident bundle appeared in {}",
            dir.display()
        );
        std::thread::sleep(Duration::from_millis(2));
    };
    assert!(
        ticks_at_bundle.saturating_sub(ticks_at_regression) <= 3,
        "bundle took {} ticks (> 2 + 1 slack)",
        ticks_at_bundle - ticks_at_regression
    );

    // The trigger is the SLO transition, not a manual capture.
    assert!(bundle.contains(r#""schema":"css-blackbox/1""#), "{bundle}");
    assert!(bundle.contains(r#""kind":"slo_critical""#), "{bundle}");
    assert!(bundle.contains(r#""slo":"detail_request_p99""#), "{bundle}");

    // The slowest stage.total exemplar joins to its span tree inside
    // the bundle itself: a detail_request root with Algorithm 1 stages.
    let hex = slowest_stage_total_exemplar(&bundle);
    let trace_at = bundle.find(r#""traces":["#).expect("traces section");
    let traces = &bundle[trace_at..];
    assert!(
        traces.contains(&format!(r#""trace_id":"{hex}""#)),
        "exemplar trace {hex} missing from traces: {bundle}"
    );
    assert!(traces.contains(r#""name":"detail_request""#), "{bundle}");
    assert!(traces.contains(r#""name":"pep.pdp_evaluate""#), "{bundle}");

    // …and outside the bundle: to the live tracer ring…
    let id = TraceId(u64::from_str_radix(&hex, 16).expect("hex trace id"));
    let spans = platform.tracer().finished_spans();
    assert!(
        spans
            .iter()
            .any(|s| s.trace == id && s.name == "detail_request"),
        "trace {hex} not in tracer ring"
    );

    // …and to the audit log, closing the metrics → trace → audit join.
    let records = platform.audit_query(&AuditQuery::new().trace(id));
    assert!(!records.is_empty(), "trace {hex} not in audit log");
    assert!(
        records
            .iter()
            .any(|r| matches!(r.action, AuditAction::DetailRequest)),
        "audit records for {hex} carry no DetailRequest"
    );

    // The bundle is privacy-safe end to end.
    assert_no_leak("incident bundle", &bundle);
}

#[test]
fn debug_endpoints_serve_exemplars_incidents_and_manual_capture() {
    let (_platform, addr, _dir, _doctor, _n) =
        blackbox_platform("endpoints", Arc::new(AtomicBool::new(false)));

    // The detail request of the fixture already stamped exemplars.
    let (code, body) = get(addr, "/debug/exemplars");
    assert_eq!(code, 200);
    assert!(body.contains(r#""histogram":"stage.total""#), "{body}");
    assert_no_leak("/debug/exemplars", &body);

    // Manual capture over HTTP: POST works, GET is rejected.
    let (code, bundle) = http(addr, "POST", "/debug/capture");
    assert_eq!(code, 200, "{bundle}");
    assert!(bundle.contains(r#""schema":"css-blackbox/1""#), "{bundle}");
    assert!(bundle.contains(r#""kind":"manual""#), "{bundle}");
    assert_no_leak("POST /debug/capture", &bundle);
    let (code, _) = get(addr, "/debug/capture");
    assert_eq!(code, 405);

    // The capture is now listed with its on-disk path.
    let (code, body) = get(addr, "/debug/incidents");
    assert_eq!(code, 200);
    assert!(body.contains(r#""kind":"manual""#), "{body}");
    assert!(body.contains(r#""path":"#), "{body}");

    // The recorder reports its own health alongside the platform's.
    let (code, body) = get(addr, "/health");
    assert_eq!(code, 200, "{body}");
    assert!(body.contains(r#""component":"blackbox""#), "{body}");
}

#[test]
fn capture_incident_api_writes_the_bundle_it_returns() {
    let (platform, _addr, _dir, _doctor, _n) =
        blackbox_platform("api", Arc::new(AtomicBool::new(false)));
    let outcome = platform
        .capture_incident("operator request")
        .expect("recorder configured");
    assert!(
        outcome.json.contains(r#""kind":"manual""#),
        "{}",
        outcome.json
    );
    assert!(
        outcome.json.contains(r#""reason":"operator request""#),
        "{}",
        outcome.json
    );
    let path = outcome.path.as_ref().expect("bundle written to disk");
    let on_disk = std::fs::read_to_string(path).expect("read bundle file");
    assert_eq!(on_disk, outcome.json, "disk bundle differs from returned");
    assert_no_leak("capture_incident bundle", &outcome.json);
}

#[test]
fn platform_without_blackbox_serves_404_for_capture() {
    let platform = CssPlatformBuilder::new()
        .ops_server("127.0.0.1:0")
        .build()
        .expect("boot platform");
    let addr = platform.ops_handle().expect("ops enabled").local_addr();
    assert!(platform.blackbox().is_none());
    assert!(platform.capture_incident("noop").is_none());
    let (code, body) = http(addr, "POST", "/debug/capture");
    assert_eq!(code, 404, "{body}");
    assert!(body.contains("no flight recorder"), "{body}");
}
