//! Cross-crate integration tests over the umbrella crate: the full
//! Trentino scenario, driven through the public API only.

use css::audit::{AuditAction, AuditQuery};
use css::prelude::*;
use css::sim::{run_pathway, run_workload, Scenario, ScenarioConfig, WorkloadConfig};

fn small_scenario() -> Scenario {
    Scenario::build(ScenarioConfig {
        persons: 12,
        family_doctors: 2,
        seed: 21,
    })
    .unwrap()
}

#[test]
fn region_wide_workload_respects_privacy_invariants() {
    let scenario = small_scenario();
    let report = run_workload(
        &scenario,
        WorkloadConfig {
            events: 150,
            detail_request_prob: 0.5,
            wrong_purpose_prob: 0.1,
            seed: 5,
        },
    );
    assert_eq!(report.published, 150);
    assert!(report.detail_permits > 0);
    assert!(report.detail_denies > 0, "wrong-purpose requests must deny");
    // Sensitive bytes released must be strictly less than total bytes:
    // identifying/administrative fields dominate what policies allow.
    assert!(report.sensitive_released_bytes < report.released_bytes);
    scenario.platform.verify_audit().unwrap();
    // The audit knows exactly as many detail requests as we made.
    let audit = scenario.platform.audit_report(&AuditQuery::new());
    assert_eq!(
        audit.action_count(AuditAction::DetailRequest),
        report.detail_permits + report.detail_denies
    );
}

#[test]
fn cross_institution_profile_composition() {
    let scenario = small_scenario();
    let person = scenario.persons[3].clone();
    run_pathway(&scenario, &person, 3, 17).unwrap();

    // Welfare composes the social profile from 4 different producers.
    let welfare = scenario.platform.consumer(scenario.orgs.welfare).unwrap();
    let profile = welfare.inquire_by_person(person.id).unwrap();
    let producers: std::collections::HashSet<ActorId> =
        profile.iter().map(|n| n.producer).collect();
    assert!(
        producers.len() >= 3,
        "profile should span hospital, telecare, municipality: {producers:?}"
    );

    // Every detail welfare obtains is privacy safe and PsychNotes /
    // Diagnosis never leak to it.
    for n in &profile {
        match welfare.request_details(n, Purpose::SocialAssistance) {
            Ok(response) => {
                assert!(response.is_privacy_safe());
                for hidden in ["Diagnosis", "PsychNotes"] {
                    if let Some(v) = response.details.get(hidden) {
                        assert!(v.is_empty(), "{hidden} leaked to welfare");
                    }
                }
            }
            Err(CssError::AccessDenied(_)) => {} // some classes not granted
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}

#[test]
fn governance_never_sees_identifying_clinical_data() {
    let scenario = small_scenario();
    run_workload(
        &scenario,
        WorkloadConfig {
            events: 100,
            detail_request_prob: 0.0,
            wrong_purpose_prob: 0.0,
            seed: 9,
        },
    );
    let governance = scenario
        .platform
        .consumer(scenario.orgs.governance)
        .unwrap();
    // Governance can inquire autonomy assessments...
    let assessments = governance
        .inquire_by_type(&EventTypeId::v1("autonomy-assessment"))
        .unwrap();
    for n in assessments.iter().take(5) {
        let response = governance
            .request_details(n, Purpose::StatisticalAnalysis)
            .unwrap();
        // ...but only the statistical fields.
        let exposed: Vec<&str> = response.details.non_empty_fields().collect();
        for field in exposed {
            assert!(
                ["Age", "Sex", "AutonomyScore"].contains(&field),
                "governance saw unexpected field {field}"
            );
        }
    }
    // Blood tests are entirely invisible to it.
    let blood = governance
        .inquire_by_type(&EventTypeId::v1("blood-test"))
        .unwrap();
    assert!(blood.is_empty());
}

#[test]
fn detail_requests_work_months_after_notification() {
    let scenario = small_scenario();
    let person = scenario.persons[0].clone();
    run_pathway(&scenario, &person, 1, 3).unwrap();
    let doctor = scenario
        .platform
        .consumer(scenario.orgs.family_doctors[0])
        .unwrap();
    let seen = doctor.inquire_by_person(person.id).unwrap();
    let discharge = seen
        .iter()
        .find(|n| n.event_type.code() == "hospital-discharge")
        .unwrap()
        .clone();
    // Six months pass.
    scenario.clock.advance(Duration::days(180));
    let response = doctor
        .request_details(&discharge, Purpose::HealthcareTreatment)
        .unwrap();
    assert!(!response.details.get("Diagnosis").unwrap().is_empty());
}

#[test]
fn audit_answers_the_guarantors_questions() {
    let scenario = small_scenario();
    run_workload(
        &scenario,
        WorkloadConfig {
            events: 80,
            detail_request_prob: 0.4,
            wrong_purpose_prob: 0.2,
            seed: 31,
        },
    );
    let platform = &scenario.platform;

    // Q1: who accessed person X's data, for which purposes?
    let person = scenario.persons[0].id;
    let accesses = platform.audit_query(
        &AuditQuery::new()
            .person(person)
            .action(AuditAction::DetailRequest),
    );
    for a in &accesses {
        assert!(a.purpose.is_some(), "every detail request states a purpose");
    }

    // Q2: what is the platform-wide denial profile?
    let report = platform.audit_report(&AuditQuery::new().denied_only());
    assert!(report.deny_reasons.contains_key("purpose not allowed"));

    // Q3: is the log intact?
    platform.verify_audit().unwrap();
}

#[test]
fn bus_delivery_matches_policy_grants() {
    let scenario = small_scenario();
    // Doctors never receive autonomy assessments (no policy), even when
    // hundreds of them are published.
    let doctor = scenario
        .platform
        .consumer(scenario.orgs.family_doctors[0])
        .unwrap();
    assert!(doctor
        .subscribe(&EventTypeId::v1("autonomy-assessment"))
        .is_err());
    run_workload(
        &scenario,
        WorkloadConfig {
            events: 60,
            detail_request_prob: 0.0,
            wrong_purpose_prob: 0.0,
            seed: 77,
        },
    );
    // And their inquiry into that class yields nothing.
    let hidden = doctor
        .inquire_by_type(&EventTypeId::v1("autonomy-assessment"))
        .unwrap();
    assert!(hidden.is_empty());
}
