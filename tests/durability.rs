//! Durability and failure-injection tests across the storage-backed
//! components: torn writes, restarts, offline sources, tampered logs.

use std::sync::Arc;

use css::prelude::*;
use css::storage::{FileBackend, KvStore, LogBackend, MemBackend};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("css-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn kv_store_recovers_from_torn_write_mid_batch() {
    let dir = temp_dir("kv");
    let path = dir.join("kv.log");
    {
        let (mut kv, _) = KvStore::open(FileBackend::open(&path).unwrap()).unwrap();
        for i in 0..100u32 {
            kv.put(format!("k{i}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        kv.sync().unwrap();
    }
    // Simulate a crash mid-append: chop arbitrary tail bytes.
    let len = std::fs::metadata(&path).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(len - 7).unwrap();
    drop(f);
    let (kv, torn) = KvStore::open(FileBackend::open(&path).unwrap()).unwrap();
    assert!(torn > 0);
    // At most the last record is lost.
    assert!(kv.len() >= 99);
    assert_eq!(kv.get(b"k42").unwrap().unwrap(), b"v42");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn platform_survives_full_restart_cycle() {
    let dir = temp_dir("platform");
    let clock = SimClock::starting_at(Timestamp(1_000));
    let hospital_name = "Hospital";
    // Session 1: set up and publish.
    {
        let mut platform = CssPlatform::on_disk(&dir, Arc::new(clock.clone())).unwrap();
        let hospital = platform.register_organization(hospital_name).unwrap();
        let doctor = platform.register_organization("Doctor").unwrap();
        platform.join(hospital, Role::Producer).unwrap();
        platform.join(doctor, Role::Consumer).unwrap();
        let schema = EventSchema::new(EventTypeId::v1("visit"), "Visit", hospital)
            .field(FieldDef::required("PatientId", FieldKind::Integer))
            .field(FieldDef::optional("Notes", FieldKind::Text).sensitive());
        let producer = platform.producer(hospital).unwrap();
        producer.declare(&schema, None).unwrap();
        producer
            .policy_wizard(&EventTypeId::v1("visit"))
            .unwrap()
            .select_fields(["PatientId"])
            .unwrap()
            .grant_to([doctor])
            .unwrap()
            .for_purposes([Purpose::HealthcareTreatment])
            .labeled("p", "")
            .save()
            .unwrap();
        producer
            .publish(
                PersonIdentity {
                    id: PersonId(1),
                    fiscal_code: "X".into(),
                    name: "A".into(),
                    surname: "B".into(),
                },
                "visit",
                EventDetails::new(EventTypeId::v1("visit"))
                    .with("PatientId", FieldValue::Integer(1))
                    .with("Notes", FieldValue::Text("sensitive note".into())),
                clock.now(),
            )
            .unwrap();
        platform.verify_audit().unwrap();
    }
    // Session 2: a fresh platform over the same directory. Policies and
    // the audit log are durable; gateway details too.
    {
        let platform = CssPlatform::on_disk(&dir, Arc::new(clock.clone())).unwrap();
        platform.verify_audit().unwrap();
        let policies = platform.policy_repository().lock().load_all().unwrap();
        assert_eq!(policies.len(), 1);
        assert_eq!(policies[0].label, "p");
        // The gateway log from session 1 is still on disk and non-empty.
        let gateway_log = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .find(|e| e.file_name().to_string_lossy().starts_with("gateway-"));
        let entry = gateway_log.expect("gateway log persisted");
        assert!(entry.metadata().unwrap().len() > 0);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn audit_tampering_detected_on_reload() {
    let dir = temp_dir("audit");
    let clock = SimClock::starting_at(Timestamp(1_000));
    {
        let mut platform = CssPlatform::on_disk(&dir, Arc::new(clock.clone())).unwrap();
        let org = platform.register_organization("Org").unwrap();
        let org2 = platform.register_organization("Org2").unwrap();
        platform.join(org, Role::Consumer).unwrap();
        platform.join(org2, Role::Consumer).unwrap();
    }
    // Flip one byte inside the FIRST audit record's payload. (A flipped
    // final record is indistinguishable from a torn tail and is dropped
    // by design; anything earlier must fail loudly.)
    let audit_path = dir.join("audit.log");
    let mut bytes = std::fs::read(&audit_path).unwrap();
    let pos = bytes
        .windows(6)
        .position(|w| w == b"actor=")
        .expect("record text present");
    bytes[pos + 7] ^= 0x01;
    std::fs::write(&audit_path, &bytes).unwrap();
    // Reload must fail: either the CRC catches it or the hash chain does.
    let result = CssPlatform::on_disk(&dir, Arc::new(clock));
    assert!(result.is_err(), "tampered audit log must not load");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gateway_serves_details_with_source_offline() {
    use css::gateway::LocalCooperationGateway;
    let mut gw = LocalCooperationGateway::open(ActorId(1), MemBackend::new()).unwrap();
    let schema = EventSchema::new(EventTypeId::v1("x"), "X", ActorId(1))
        .field(FieldDef::required("A", FieldKind::Text));
    gw.register_schema(schema).unwrap();
    gw.persist(&DetailMessage {
        src_event_id: css::types::SourceEventId(1),
        producer: ActorId(1),
        details: EventDetails::new(EventTypeId::v1("x")).with("A", FieldValue::Text("kept".into())),
    })
    .unwrap();
    gw.set_source_online(false);
    let allowed: std::collections::BTreeSet<String> = ["A".to_string()].into_iter().collect();
    let details = gw
        .get_response(css::types::SourceEventId(1), &allowed, None)
        .unwrap();
    assert_eq!(details.get("A").unwrap(), &FieldValue::Text("kept".into()));
}

#[test]
fn kv_compaction_after_heavy_churn_preserves_state() {
    let (mut kv, _) = KvStore::open(MemBackend::new()).unwrap();
    for round in 0..20u32 {
        for key in 0..50u32 {
            kv.put(
                format!("person-{key}").as_bytes(),
                format!("state-{round}-{key}").as_bytes(),
            )
            .unwrap();
        }
    }
    for key in (0..50u32).step_by(2) {
        kv.delete(format!("person-{key}").as_bytes()).unwrap();
    }
    let expected_live = 25;
    assert_eq!(kv.len(), expected_live);
    let before = kv.log_bytes();
    let kv = kv.compact_into(MemBackend::new()).unwrap();
    assert_eq!(kv.len(), expected_live);
    assert!(kv.log_bytes() < before / 5);
    assert_eq!(kv.get(b"person-1").unwrap().unwrap(), b"state-19-1");
    assert_eq!(kv.get(b"person-2").unwrap(), None);
}

#[test]
fn record_log_scan_is_all_or_tail() {
    // Corruption strictly before the tail must fail loudly, never be
    // silently skipped.
    use css::storage::RecordLog;
    let mut log = RecordLog::new(MemBackend::new());
    log.append(b"first").unwrap();
    log.append(b"second").unwrap();
    log.append(b"third").unwrap();
    let backend = log.into_backend();
    let raw = backend.read_at(0, backend.len() as usize).unwrap();
    // Corrupt a byte inside "second" (safely inside the middle record).
    let pos = raw.windows(6).position(|w| w == b"second").unwrap();
    let mut tampered_bytes = raw.clone();
    tampered_bytes[pos] ^= 0xFF;
    let mut tampered = MemBackend::new();
    tampered.append(&tampered_bytes).unwrap();
    assert!(RecordLog::recover(tampered).is_err());
}

#[test]
fn full_restart_preserves_events_policies_and_details() {
    let dir = temp_dir("restart");
    let clock = SimClock::starting_at(Timestamp(50_000));
    let schema_of = |hospital| {
        EventSchema::new(EventTypeId::v1("visit"), "Visit", hospital)
            .field(FieldDef::required("PatientId", FieldKind::Integer))
            .field(FieldDef::optional("Notes", FieldKind::Text).sensitive())
    };
    let anna = PersonIdentity {
        id: PersonId(5),
        fiscal_code: "ANNA".into(),
        name: "Anna".into(),
        surname: "Verdi".into(),
    };
    let pre_restart_event;
    // --- session 1: set up, publish one event -----------------------
    {
        let mut platform = CssPlatform::on_disk(&dir, Arc::new(clock.clone())).unwrap();
        let hospital = platform.register_organization("Hospital").unwrap();
        let doctor = platform.register_organization("Doctor").unwrap();
        platform.join(hospital, Role::Producer).unwrap();
        platform.join(doctor, Role::Consumer).unwrap();
        let producer = platform.producer(hospital).unwrap();
        producer.declare(&schema_of(hospital), None).unwrap();
        producer
            .policy_wizard(&EventTypeId::v1("visit"))
            .unwrap()
            .select_all_fields()
            .grant_to([doctor])
            .unwrap()
            .for_purposes([Purpose::HealthcareTreatment])
            .labeled("doctor", "")
            .save()
            .unwrap();
        let receipt = producer
            .publish(
                anna.clone(),
                "first visit",
                EventDetails::new(EventTypeId::v1("visit"))
                    .with("PatientId", FieldValue::Integer(5))
                    .with("Notes", FieldValue::Text("pre-restart note".into())),
                clock.now(),
            )
            .unwrap();
        pre_restart_event = receipt.global_id;
    }
    // --- session 2: fresh process over the same directory ----------
    {
        let mut platform = CssPlatform::on_disk(&dir, Arc::new(clock.clone())).unwrap();
        // Operators re-register the same org structure (same order →
        // same ids) and re-declare schemas.
        let hospital = platform.register_organization("Hospital").unwrap();
        let doctor = platform.register_organization("Doctor").unwrap();
        platform.join(hospital, Role::Producer).unwrap();
        platform.join(doctor, Role::Consumer).unwrap();
        let producer = platform.producer(hospital).unwrap();
        producer.declare(&schema_of(hospital), None).unwrap();
        // Policies come back from the certified repository.
        assert_eq!(platform.reload_policies().unwrap(), 1);

        let consumer = platform.consumer(doctor).unwrap();
        // The pre-restart event is still in the (recovered) index...
        let found = consumer.inquire_by_person(anna.id).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].global_id, pre_restart_event);
        assert_eq!(found[0].person.fiscal_code, "ANNA");
        // ...and its details are still retrievable from the gateway.
        let resp = consumer
            .request_details(&found[0], Purpose::HealthcareTreatment)
            .unwrap();
        assert_eq!(
            resp.details.get("Notes").unwrap(),
            &FieldValue::Text("pre-restart note".into())
        );
        // New publishes don't collide with recovered ids.
        let receipt = producer
            .publish(
                anna.clone(),
                "post-restart visit",
                EventDetails::new(EventTypeId::v1("visit"))
                    .with("PatientId", FieldValue::Integer(5)),
                clock.now(),
            )
            .unwrap();
        assert!(receipt.global_id.value() > pre_restart_event.value());
        assert_eq!(consumer.inquire_by_person(anna.id).unwrap().len(), 2);
        platform.verify_audit().unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
