//! Concurrency tests: the platform under multi-threaded producers and
//! consumers, and the bus under push-style dispatchers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use css::bus::{spawn_dispatcher, Broker, SubscriptionConfig};
use css::prelude::*;

fn build_platform() -> (Arc<CssPlatform>, ActorId, ActorId, SimClock) {
    let clock = SimClock::starting_at(Timestamp(1_000));
    let mut platform = CssPlatform::in_memory_with_clock(Arc::new(clock.clone()));
    let hospital = platform.register_organization("Hospital").unwrap();
    let doctor = platform.register_organization("Doctor").unwrap();
    platform.join(hospital, Role::Producer).unwrap();
    platform.join(doctor, Role::Consumer).unwrap();
    let schema = EventSchema::new(EventTypeId::v1("obs"), "Observation", hospital)
        .field(FieldDef::required("PatientId", FieldKind::Integer))
        .field(FieldDef::optional("Value", FieldKind::Integer).sensitive());
    let producer = platform.producer(hospital).unwrap();
    producer.declare(&schema, None).unwrap();
    producer
        .policy_wizard(&EventTypeId::v1("obs"))
        .unwrap()
        .select_all_fields()
        .grant_to([doctor])
        .unwrap()
        .for_purposes([Purpose::HealthcareTreatment])
        .labeled("p", "")
        .save()
        .unwrap();
    (Arc::new(platform), hospital, doctor, clock)
}

fn person(i: u64) -> PersonIdentity {
    PersonIdentity {
        id: PersonId(i),
        fiscal_code: format!("FC{i}"),
        name: "P".into(),
        surname: format!("S{i}"),
    }
}

#[test]
fn concurrent_producers_and_detail_requests() {
    let (platform, hospital, doctor, clock) = build_platform();
    let consumer = platform.consumer(doctor).unwrap();
    let sub = consumer.subscribe(&EventTypeId::v1("obs")).unwrap();

    // 4 producer threads, 50 events each.
    let mut publishers = Vec::new();
    for t in 0..4u64 {
        let platform = platform.clone();
        let clock = clock.clone();
        publishers.push(std::thread::spawn(move || {
            let producer = platform.producer(hospital).unwrap();
            for i in 0..50u64 {
                producer
                    .publish(
                        person(t * 1_000 + i),
                        "obs",
                        EventDetails::new(EventTypeId::v1("obs"))
                            .with("PatientId", FieldValue::Integer((t * 1_000 + i) as i64))
                            .with("Value", FieldValue::Integer(i as i64)),
                        clock.now(),
                    )
                    .unwrap();
            }
        }));
    }
    for p in publishers {
        p.join().unwrap();
    }

    // A consumer thread chases details for everything it was notified of.
    let notifications = sub.drain().unwrap();
    assert_eq!(notifications.len(), 200);
    let permits = Arc::new(AtomicUsize::new(0));
    let mut consumers = Vec::new();
    for chunk in notifications.chunks(50) {
        let chunk: Vec<NotificationMessage> = chunk.to_vec();
        let platform = platform.clone();
        let permits = permits.clone();
        consumers.push(std::thread::spawn(move || {
            let handle = platform.consumer(doctor).unwrap();
            for n in &chunk {
                let response = handle
                    .request_details(n, Purpose::HealthcareTreatment)
                    .unwrap();
                assert!(response.is_privacy_safe());
                permits.fetch_add(1, Ordering::SeqCst);
            }
        }));
    }
    for c in consumers {
        c.join().unwrap();
    }
    assert_eq!(permits.load(Ordering::SeqCst), 200);
    platform.verify_audit().unwrap();
    // Audit saw every publish and every detail request.
    let report = platform.audit_report(&css::audit::AuditQuery::new());
    assert_eq!(report.action_count(css::audit::AuditAction::Publish), 200);
    assert_eq!(
        report.action_count(css::audit::AuditAction::DetailRequest),
        200
    );
}

#[test]
fn dispatcher_fleet_processes_fanout() {
    let broker: Broker<u64> = Broker::new();
    broker.create_topic("events");
    let total = Arc::new(AtomicUsize::new(0));
    let mut dispatchers = Vec::new();
    for _ in 0..3 {
        let sub = broker
            .subscribe("events", SubscriptionConfig::default())
            .unwrap();
        let counter = total.clone();
        dispatchers.push(spawn_dispatcher(sub, move |_| {
            counter.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }));
    }
    let mut publishers = Vec::new();
    for t in 0..4u64 {
        let broker = broker.clone();
        publishers.push(std::thread::spawn(move || {
            for i in 0..100 {
                broker.publish("events", t * 100 + i).unwrap();
            }
        }));
    }
    for p in publishers {
        p.join().unwrap();
    }
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while total.load(Ordering::SeqCst) < 1_200 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let processed: u64 = dispatchers.into_iter().map(|d| d.stop()).sum();
    assert_eq!(processed, 1_200); // 400 events × 3 subscriptions
    assert_eq!(broker.stats().fanned_out, 1_200);
}
