//! Property-based tests of the platform's privacy invariants.
//!
//! The central theorem the paper's design rests on is Definition 4: a
//! released event must never expose a field outside the policy's allowed
//! set. These properties check the invariant (and the machinery around
//! it) over randomized inputs.

use std::collections::BTreeSet;

use proptest::prelude::*;

use css::crypto::{HashChain, SealedBox};
use css::event::{Decimal, EventDetails, FieldValue, PrivacyAwareEvent};
use css::policy::{
    matches, Decision, DetailRequest, MatchOutcome, PolicyDecisionPoint, PrivacyPolicy,
};
use css::types::{
    Actor, ActorId, ActorRegistry, EventTypeId, GlobalEventId, PolicyId, Purpose, RequestId,
    Timestamp,
};

fn field_name() -> impl Strategy<Value = String> {
    "[A-Z][a-zA-Z]{0,8}"
}

fn field_value() -> impl Strategy<Value = FieldValue> {
    prop_oneof![
        any::<i64>().prop_map(FieldValue::Integer),
        "[ -~]{0,20}".prop_map(FieldValue::Text),
        any::<bool>().prop_map(FieldValue::Boolean),
        Just(FieldValue::Empty),
    ]
}

fn details() -> impl Strategy<Value = EventDetails> {
    proptest::collection::btree_map(field_name(), field_value(), 0..10).prop_map(|fields| {
        let mut d = EventDetails::new(EventTypeId::v1("prop-event"));
        for (k, v) in fields {
            d.set(k, v);
        }
        d
    })
}

fn allowed_set() -> impl Strategy<Value = BTreeSet<String>> {
    proptest::collection::btree_set(field_name(), 0..6)
}

proptest! {
    /// Definition 4 as a law: filtering to F always yields a
    /// privacy-safe instance, regardless of overlap between F and the
    /// instance's fields.
    #[test]
    fn filtered_details_are_always_privacy_safe(d in details(), f in allowed_set()) {
        let filtered = d.filtered_to(&f);
        prop_assert!(filtered.is_privacy_safe(&f));
        // Shape is preserved.
        prop_assert_eq!(filtered.len(), d.len());
    }

    /// Filtering is idempotent and monotone in exposure.
    #[test]
    fn filtering_idempotent_and_monotone(d in details(), f in allowed_set()) {
        let once = d.filtered_to(&f);
        let twice = once.filtered_to(&f);
        prop_assert_eq!(&once, &twice);
        prop_assert!(once.exposed_bytes() <= d.exposed_bytes());
    }

    /// A smaller allowed set never exposes more.
    #[test]
    fn smaller_allowed_set_exposes_no_more(d in details(), f in allowed_set()) {
        let mut smaller = f.clone();
        let removed = smaller.iter().next().cloned();
        if let Some(r) = removed {
            smaller.remove(&r);
        }
        prop_assert!(d.filtered_to(&smaller).exposed_bytes() <= d.filtered_to(&f).exposed_bytes());
    }

    /// The release constructor upholds the invariant for any input.
    #[test]
    fn release_invariant(d in details(), f in allowed_set()) {
        let released = PrivacyAwareEvent::release(
            GlobalEventId(1),
            ActorId(1),
            &d,
            f,
        );
        prop_assert!(released.is_privacy_safe());
    }

    /// Deny-by-default: whatever the request, an empty PDP denies.
    #[test]
    fn empty_pdp_denies_everything(
        actor in 1u64..100,
        ty in "[a-z]{3,10}",
        purpose_code in "[a-z-]{3,15}",
    ) {
        let pdp = PolicyDecisionPoint::new();
        let mut actors = ActorRegistry::new();
        actors.register(Actor::organization(ActorId(actor), "X")).unwrap();
        let request = DetailRequest::new(
            RequestId(1),
            ActorId(actor),
            EventTypeId::v1(&ty),
            GlobalEventId(1),
            purpose_code.parse::<Purpose>().unwrap(),
        );
        let d = pdp.evaluate(&request, &actors, Timestamp(0));
        prop_assert!(matches!(d, Decision::Deny(_)));
    }

    /// A permit's allowed fields always come from the matching policies'
    /// field sets (no field materializes out of nowhere).
    #[test]
    fn permit_fields_subset_of_policy_fields(
        policy_fields in proptest::collection::btree_set(field_name(), 0..8),
    ) {
        let mut pdp = PolicyDecisionPoint::new();
        let mut actors = ActorRegistry::new();
        actors.register(Actor::organization(ActorId(1), "Consumer")).unwrap();
        pdp.install(PrivacyPolicy::new(
            PolicyId(1),
            ActorId(9),
            ActorId(1),
            EventTypeId::v1("e"),
            [Purpose::Administration],
            policy_fields.iter().cloned(),
        ));
        let request = DetailRequest::new(
            RequestId(1),
            ActorId(1),
            EventTypeId::v1("e"),
            GlobalEventId(1),
            Purpose::Administration,
        );
        match pdp.evaluate(&request, &actors, Timestamp(0)) {
            Decision::Permit { allowed_fields, .. } => {
                prop_assert!(allowed_fields.is_subset(&policy_fields));
                prop_assert!(policy_fields.is_subset(&allowed_fields));
            }
            Decision::Deny(r) => prop_assert!(false, "unexpected deny: {r}"),
        }
    }

    /// Matching is exact on the event type: any differing code or
    /// version fails Definition 3.
    #[test]
    fn matching_requires_exact_type(
        code_a in "[a-z]{3,8}", code_b in "[a-z]{3,8}",
        va in 1u32..4, vb in 1u32..4,
    ) {
        let mut actors = ActorRegistry::new();
        actors.register(Actor::organization(ActorId(1), "A")).unwrap();
        let policy = PrivacyPolicy::new(
            PolicyId(1),
            ActorId(9),
            ActorId(1),
            EventTypeId::new(&code_a, va),
            [Purpose::Audit],
            ["f".to_string()],
        );
        let request = DetailRequest::new(
            RequestId(1),
            ActorId(1),
            EventTypeId::new(&code_b, vb),
            GlobalEventId(1),
            Purpose::Audit,
        );
        let outcome = matches(&policy, &request, &actors, Timestamp(0));
        if code_a == code_b && va == vb {
            prop_assert_eq!(outcome, MatchOutcome::Match);
        } else {
            prop_assert_eq!(outcome, MatchOutcome::WrongEventType);
        }
    }

    /// XACML serialization is lossless for arbitrary policies.
    #[test]
    fn xacml_roundtrip(
        id in 1u64..10_000,
        actor in 1u64..100,
        producer in 1u64..100,
        ty in "[a-z][a-z-]{2,12}",
        fields in proptest::collection::btree_set("[A-Za-z]{1,10}", 0..8),
        purposes in proptest::collection::btree_set(
            prop_oneof![
                Just(Purpose::HealthcareTreatment),
                Just(Purpose::StatisticalAnalysis),
                // Filter out codes that collide with standard purposes:
                // those parse back to the standard variant, not Custom.
                "[a-z]{3,10}"
                    .prop_filter("custom code must not collide with standard", |c| {
                        Purpose::standard().iter().all(|p| p.code() != c)
                    })
                    .prop_map(Purpose::Custom),
            ],
            1..4,
        ),
        not_after in proptest::option::of(0u64..u64::MAX / 2),
        label in "[ -~]{0,20}",
        revoked in any::<bool>(),
    ) {
        let mut policy = PrivacyPolicy::new(
            PolicyId(id),
            ActorId(producer),
            ActorId(actor),
            EventTypeId::v1(&ty),
            purposes,
            fields,
        )
        .labeled(label, "prop test");
        policy.validity.not_after = not_after.map(Timestamp);
        if revoked {
            policy.revoke();
        }
        let xml_text = css::xml::to_string_pretty(&css::policy::xacml::to_xacml(&policy));
        let parsed = css::policy::xacml::from_xacml(
            &css::xml::parse(&xml_text).unwrap()
        ).unwrap();
        prop_assert_eq!(parsed, policy);
    }

    /// Sealed boxes round-trip and any single-byte corruption is caught.
    #[test]
    fn sealed_box_roundtrip_and_tamper(
        key in proptest::collection::vec(any::<u8>(), 1..64),
        seq in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..200),
        flip in any::<usize>(),
    ) {
        let sealer = SealedBox::new(&key);
        let mut sealed = sealer.seal(seq, &payload);
        prop_assert_eq!(sealer.open(&sealed).unwrap(), payload);
        let idx = flip % sealed.len();
        sealed[idx] ^= 0x55;
        prop_assert!(sealer.open(&sealed).is_err());
    }

    /// Hash chains detect any payload mutation.
    #[test]
    fn hash_chain_detects_mutation(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..40), 1..20),
        victim in any::<usize>(),
    ) {
        let mut chain = HashChain::new();
        for p in &payloads {
            chain.append(p.clone());
        }
        prop_assert!(chain.verify().is_ok());
        let mut links = chain.links().to_vec();
        let idx = victim % links.len();
        links[idx].payload.push(0xFF);
        prop_assert!(HashChain::from_links(links).is_err());
    }

    /// Decimal parse/display round-trips.
    #[test]
    fn decimal_roundtrip(mantissa in -1_000_000_000i64..1_000_000_000, scale in 0u8..9) {
        let d = Decimal::new(mantissa, scale);
        let s = d.to_string();
        let back: Decimal = s.parse().unwrap();
        prop_assert_eq!(back, d);
    }

    /// XML escaping round-trips arbitrary text.
    #[test]
    fn xml_text_roundtrip(text in "[ -~]{0,64}") {
        let doc = css::xml::Element::new("t").text(text.clone());
        let parsed = css::xml::parse(&css::xml::to_string(&doc)).unwrap();
        // Leading/trailing whitespace is normalized away by content
        // handling; compare trimmed.
        prop_assert_eq!(parsed.text_content(), text.trim());
    }

    /// XML attribute values round-trip exactly (no trimming there).
    #[test]
    fn xml_attr_roundtrip(value in "[ -~]{0,64}") {
        let doc = css::xml::Element::new("t").attr("v", value.clone());
        let parsed = css::xml::parse(&css::xml::to_string(&doc)).unwrap();
        prop_assert_eq!(parsed.attribute("v").unwrap(), value);
    }
}

// ---- structured XML round-trip -------------------------------------

fn arb_element(depth: u32) -> impl Strategy<Value = css::xml::Element> {
    let name = "[A-Za-z][A-Za-z0-9]{0,8}";
    let attr = ("[A-Za-z][A-Za-z0-9]{0,6}", "[ -~]{0,12}");
    let leaf = (name, proptest::collection::vec(attr, 0..3), "[ -~]{1,16}").prop_map(
        |(n, attrs, text)| {
            let mut e = css::xml::Element::new(n);
            for (k, v) in attrs {
                if e.attribute(&k).is_none() {
                    e.attributes.push((k, v));
                }
            }
            // Whitespace-only text normalizes away in parsing, so only
            // attach a text node when something survives trimming.
            let text = text.trim().to_string();
            if text.is_empty() {
                e
            } else {
                e.text(text)
            }
        },
    );
    leaf.prop_recursive(depth, 24, 4, move |inner| {
        (
            "[A-Za-z][A-Za-z0-9]{0,8}",
            proptest::collection::vec(("[A-Za-z][A-Za-z0-9]{0,6}", "[ -~]{0,12}"), 0..3),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(n, attrs, kids)| {
                let mut e = css::xml::Element::new(n);
                for (k, v) in attrs {
                    if e.attribute(&k).is_none() {
                        e.attributes.push((k, v));
                    }
                }
                e.children(kids)
            })
    })
}

proptest! {
    /// Arbitrary element trees survive write → parse, both compact and
    /// pretty-printed (whitespace-only text normalization aside, which
    /// the generator avoids by trimming leaf text).
    #[test]
    fn structured_xml_roundtrip(tree in arb_element(3)) {
        let compact = css::xml::parse(&css::xml::to_string(&tree)).unwrap();
        prop_assert_eq!(&compact, &tree);
        // Pretty printing preserves attributes and element structure
        // (text inside mixed-content nodes keeps its value because the
        // generator only puts text in leaves).
        let pretty = css::xml::parse(&css::xml::to_string_pretty(&tree)).unwrap();
        prop_assert_eq!(pretty.subtree_size(), tree.subtree_size());
    }
}
