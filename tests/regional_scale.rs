//! Region-scale stress test. The default test run exercises a trimmed
//! version; the full-size sweep is `#[ignore]`d and run explicitly with
//! `cargo test --test regional_scale -- --ignored`.

use css::audit::AuditQuery;
use css::sim::{run_workload, Scenario, ScenarioConfig, WorkloadConfig};

fn run(persons: usize, events: usize) {
    let scenario = Scenario::build(ScenarioConfig {
        persons,
        family_doctors: 5,
        seed: 1,
    })
    .unwrap();
    let report = run_workload(
        &scenario,
        WorkloadConfig {
            events,
            detail_request_prob: 0.3,
            wrong_purpose_prob: 0.05,
            seed: 2,
        },
    );
    assert_eq!(report.published, events);
    assert!(
        report.notifications_delivered >= events,
        "every event has >=1 subscriber"
    );
    // Accounting closes: audit knows every publish, delivery and request.
    let audit = scenario.platform.audit_report(&AuditQuery::new());
    assert_eq!(audit.action_count(css::audit::AuditAction::Publish), events);
    assert_eq!(
        audit.action_count(css::audit::AuditAction::Delivery),
        report.notifications_delivered
    );
    assert_eq!(
        audit.action_count(css::audit::AuditAction::DetailRequest),
        report.detail_permits + report.detail_denies
    );
    scenario.platform.verify_audit().unwrap();
}

#[test]
fn medium_region() {
    run(100, 500);
}

#[test]
#[ignore = "full-scale run; invoke with --ignored"]
fn full_region() {
    run(1_000, 5_000);
}
