//! The live ops plane end to end: boot a platform with
//! `ops_server("127.0.0.1:0")`, drive real traffic through it, and
//! scrape every endpoint over actual TCP — `/metrics` must parse as
//! Prometheus text, `/health` must flip 200 → 503 under an injected
//! storage fault (and back), `/slo` must go Critical within two sampler
//! ticks of a forced p99 regression, and no endpoint may ever leak a
//! payload field or personal identifier.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use css::core::{BackendProvider, CssPlatform, CssPlatformBuilder};
use css::health::Slo;
use css::monitor::ProcessMonitor;
use css::prelude::*;
use css::storage::{LogBackend, MemBackend};
use css::types::CssError;

/// A payload value that must never appear on any ops endpoint.
const SECRET_RESULT: &str = "SECRET-RESULT-positive-hiv";
/// A personal identifier that must never appear either.
const SECRET_FISCAL: &str = "FCSECRET0000007";

// ---- fault-injectable storage --------------------------------------------

/// An in-memory backend whose I/O fails while the shared flag is up —
/// the "disk died" lever for the `/health` 503 test.
struct FaultableBackend {
    inner: MemBackend,
    fail: Arc<AtomicBool>,
}

impl FaultableBackend {
    fn check(&self) -> css::types::CssResult<()> {
        if self.fail.load(Ordering::SeqCst) {
            Err(CssError::Storage("injected fault: disk offline".into()))
        } else {
            Ok(())
        }
    }
}

impl LogBackend for FaultableBackend {
    fn append(&mut self, data: &[u8]) -> css::types::CssResult<u64> {
        self.check()?;
        self.inner.append(data)
    }
    fn read_at(&self, offset: u64, len: usize) -> css::types::CssResult<Vec<u8>> {
        self.check()?;
        self.inner.read_at(offset, len)
    }
    fn len(&self) -> u64 {
        self.inner.len()
    }
    fn sync(&mut self) -> css::types::CssResult<()> {
        self.check()?;
        self.inner.sync()
    }
    fn truncate(&mut self, len: u64) -> css::types::CssResult<()> {
        self.check()?;
        self.inner.truncate(len)
    }
}

#[derive(Clone)]
struct FaultableProvider {
    fail: Arc<AtomicBool>,
}

impl BackendProvider for FaultableProvider {
    type Backend = FaultableBackend;
    fn backend(&self, _name: &str) -> css::types::CssResult<FaultableBackend> {
        Ok(FaultableBackend {
            inner: MemBackend::new(),
            fail: self.fail.clone(),
        })
    }
}

// ---- tiny HTTP client -----------------------------------------------------

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect ops server");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: ops\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let code: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (code, body)
}

// ---- Prometheus text validation ------------------------------------------

/// Minimal format check for exposition text 0.0.4: every line is a
/// `# HELP`/`# TYPE` comment or `name[{label="…"}] value`; every
/// `# TYPE` is preceded by a `# HELP` for the same metric; every
/// histogram carries cumulative `_bucket` lines closed by `+Inf`,
/// plus `_sum`/`_count`, with `+Inf == _count`.
fn assert_valid_prometheus(text: &str) {
    fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    let mut histograms: Vec<String> = Vec::new();
    let mut helped: Vec<String> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest
                .split_once(' ')
                .unwrap_or_else(|| panic!("HELP without text: {line}"));
            assert!(valid_name(name), "bad metric name in {line:?}");
            assert!(!help.trim().is_empty(), "empty help text: {line}");
            helped.push(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("typed metric name");
            let kind = parts.next().expect("metric kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown kind: {line}"
            );
            assert!(
                helped.iter().any(|h| h == name),
                "# TYPE without preceding # HELP: {line}"
            );
            if kind == "histogram" {
                histograms.push(name.to_string());
            }
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("bad line: {line}"));
        value
            .parse::<f64>()
            .unwrap_or_else(|e| panic!("bad value in {line:?}: {e}"));
        let name = series.split('{').next().unwrap();
        assert!(valid_name(name), "bad metric name in {line:?}");
        if let Some(labels) = series.strip_prefix(name) {
            assert!(
                labels.is_empty()
                    || ((labels.starts_with("{le=\"") || labels.starts_with("{version=\""))
                        && labels.ends_with("\"}")),
                "unexpected labels in {line:?}"
            );
        }
    }
    for h in histograms {
        let bucket_counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with(&format!("{h}_bucket{{")))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(!bucket_counts.is_empty(), "{h}: no buckets");
        assert!(
            bucket_counts.windows(2).all(|w| w[0] <= w[1]),
            "{h}: buckets not cumulative: {bucket_counts:?}"
        );
        let inf = text
            .lines()
            .find(|l| l.starts_with(&format!("{h}_bucket{{le=\"+Inf\"}}")))
            .unwrap_or_else(|| panic!("{h}: missing +Inf bucket"));
        let count_line = text
            .lines()
            .find(|l| l.starts_with(&format!("{h}_count ")))
            .unwrap_or_else(|| panic!("{h}: missing _count"));
        assert!(
            text.lines().any(|l| l.starts_with(&format!("{h}_sum "))),
            "{h}: missing _sum"
        );
        assert_eq!(
            inf.rsplit(' ').next().unwrap(),
            count_line.rsplit(' ').next().unwrap(),
            "{h}: +Inf bucket must equal _count"
        );
    }
}

/// Pull a `"key":<u64>` value out of a flat JSON body.
fn json_u64(body: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = body
        .find(&needle)
        .unwrap_or_else(|| panic!("{key} missing in {body}"));
    body[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric json value")
}

// ---- platform under test --------------------------------------------------

/// Boot an ops-served platform and push one sensitive event through
/// publish → deliver → detail request, so every subsystem has traffic.
fn ops_platform(fail: Arc<AtomicBool>) -> (CssPlatform<FaultableProvider>, SocketAddr) {
    let monitor = Arc::new(parking_lot::Mutex::new(ProcessMonitor::new()));
    let mut platform = CssPlatformBuilder::new()
        .provider(FaultableProvider { fail })
        .tracing(256)
        .ops_server("127.0.0.1:0")
        .ops_sample_interval(Duration::from_millis(10))
        .ops_slo(Slo::latency_p99(
            "ops_test_latency",
            "test.latency",
            200_000,
        ))
        .ops_monitor(monitor)
        .build()
        .expect("boot platform");
    let addr = platform.ops_handle().expect("ops enabled").local_addr();

    let hospital = platform.register_organization("Hospital").unwrap();
    let doctor = platform.register_organization("Doctor").unwrap();
    platform.join(hospital, Role::Producer).unwrap();
    platform.join(doctor, Role::Consumer).unwrap();

    let ty = EventTypeId::v1("blood-test");
    let schema = EventSchema::new(ty.clone(), "Blood Test", hospital)
        .field(FieldDef::required("PatientId", FieldKind::Integer))
        .field(FieldDef::required("Result", FieldKind::Text).sensitive());
    let producer = platform.producer(hospital).unwrap();
    producer.declare(&schema, None).unwrap();
    producer
        .policy_wizard(&ty)
        .unwrap()
        .select_fields(["PatientId", "Result"])
        .unwrap()
        .grant_to([doctor])
        .unwrap()
        .for_purposes([Purpose::HealthcareTreatment])
        .labeled("doctor-bt", "")
        .save()
        .unwrap();

    let consumer = platform.consumer(doctor).unwrap();
    let sub = consumer.subscribe(&ty).unwrap();
    let details = EventDetails::new(ty.clone())
        .with("PatientId", FieldValue::Integer(7))
        .with("Result", FieldValue::Text(SECRET_RESULT.into()));
    let person = PersonIdentity {
        id: PersonId(7),
        fiscal_code: SECRET_FISCAL.into(),
        name: "Maria".into(),
        surname: "Rossi".into(),
    };
    producer
        .publish(person, "bt", details, platform.clock().now())
        .unwrap();
    let notification = sub.next().unwrap().expect("delivered").message;
    consumer
        .request_details(&notification, Purpose::HealthcareTreatment)
        .unwrap();
    (platform, addr)
}

// ---- the tests ------------------------------------------------------------

#[test]
fn metrics_endpoint_serves_valid_prometheus_with_live_counters() {
    let (_platform, addr) = ops_platform(Arc::new(AtomicBool::new(false)));
    let (code, body) = get(addr, "/metrics");
    assert_eq!(code, 200);
    assert_valid_prometheus(&body);
    // Live traffic is visible: the publish, the enforcement stages.
    assert!(body.contains("css_controller_published_total 1"), "{body}");
    assert!(
        body.contains("# TYPE css_stage_total_ns histogram"),
        "{body}"
    );
    assert!(body.contains("css_platform_indexed_events 1"), "{body}");
}

#[test]
fn health_flips_to_503_under_storage_fault_and_recovers() {
    let fail = Arc::new(AtomicBool::new(false));
    let (_platform, addr) = ops_platform(fail.clone());

    let (code, body) = get(addr, "/health");
    assert_eq!(code, 200, "{body}");
    assert!(body.contains(r#""status":"healthy""#), "{body}");
    for component in ["storage", "bus-queue", "policy", "gateway", "trace"] {
        assert!(
            body.contains(&format!(r#""component":"{component}""#)),
            "{body}"
        );
    }

    // Storage dies: the probe's write/read round-trip fails and the
    // rollup must stop serving, with a machine-readable reason.
    fail.store(true, Ordering::SeqCst);
    let (code, body) = get(addr, "/health");
    assert_eq!(code, 503, "{body}");
    assert!(body.contains(r#""status":"unhealthy""#), "{body}");
    assert!(
        body.contains(r#""component":"storage","status":"unhealthy","reason":"#),
        "{body}"
    );
    assert!(body.contains("injected fault"), "{body}");

    // Storage comes back: the next probe round-trips and we serve again.
    fail.store(false, Ordering::SeqCst);
    let (code, body) = get(addr, "/health");
    assert_eq!(code, 200, "{body}");
}

/// The alert level reported for one named SLO in the `/slo` body.
fn slo_alert(body: &str, name: &str) -> String {
    let at = body
        .find(&format!(r#""name":"{name}""#))
        .unwrap_or_else(|| panic!("{name} missing in {body}"));
    let rest = &body[at..];
    let alert_at = rest.find(r#""alert":""#).expect("alert field") + r#""alert":""#.len();
    rest[alert_at..]
        .split('"')
        .next()
        .expect("alert value")
        .to_string()
}

#[test]
fn slo_goes_critical_within_two_sampler_ticks_of_a_p99_regression() {
    let (platform, addr) = ops_platform(Arc::new(AtomicBool::new(false)));

    // Give the sampler a tick of healthy baseline first.
    std::thread::sleep(Duration::from_millis(30));
    let (code, body) = get(addr, "/slo");
    assert_eq!(code, 200);
    assert!(body.contains(r#""name":"detail_request_p99""#), "{body}");
    assert_eq!(slo_alert(&body, "ops_test_latency"), "ok", "{body}");

    // Force the regression: a burst of observations far past the
    // 200 µs objective on the SLO's histogram.
    for _ in 0..200 {
        platform
            .metrics()
            .histogram("test.latency")
            .record(5_000_000);
    }
    let ticks_at_regression = json_u64(&get(addr, "/slo").1, "ticks");

    let deadline = Instant::now() + Duration::from_secs(10);
    let ticks_at_critical = loop {
        let (_, body) = get(addr, "/slo");
        if slo_alert(&body, "ops_test_latency") == "critical" {
            break json_u64(&body, "ticks");
        }
        assert!(Instant::now() < deadline, "SLO never went critical: {body}");
        std::thread::sleep(Duration::from_millis(2));
    };
    assert!(
        ticks_at_critical.saturating_sub(ticks_at_regression) <= 2,
        "critical took {} ticks (> 2)",
        ticks_at_critical - ticks_at_regression
    );
}

#[test]
fn traces_and_monitor_endpoints_serve_aggregates() {
    let (_platform, addr) = ops_platform(Arc::new(AtomicBool::new(false)));
    let (code, body) = get(addr, "/traces");
    assert_eq!(code, 200);
    assert!(
        body.starts_with(r#"{"traceEvents":["#),
        "Chrome trace document: {body}"
    );
    assert!(body.contains(r#""name":"publish""#), "{body}");

    let (code, body) = get(addr, "/monitor");
    assert_eq!(code, 200);
    assert!(body.contains(r#""total":"#), "{body}");
    assert!(body.contains(r#""completion_rate":"#), "{body}");
}

/// The trust argument of the ops plane: every endpoint serves
/// aggregates only. Payload fields, fiscal codes, and subject names
/// from the sensitive event pushed through the platform must not be
/// reachable from any scrape.
#[test]
fn no_endpoint_leaks_payload_fields_or_identifiers() {
    let (_platform, addr) = ops_platform(Arc::new(AtomicBool::new(false)));
    for path in ["/metrics", "/health", "/slo", "/traces", "/monitor"] {
        let (code, body) = get(addr, path);
        assert_eq!(code, 200, "{path}");
        for secret in [SECRET_RESULT, SECRET_FISCAL, "Maria", "Rossi"] {
            assert!(!body.contains(secret), "{path} leaked {secret:?}: {body}");
        }
    }
}

#[test]
fn ops_plane_shuts_down_with_the_platform() {
    let (platform, addr) = ops_platform(Arc::new(AtomicBool::new(false)));
    let (code, _) = get(addr, "/health");
    assert_eq!(code, 200);
    drop(platform); // joins the sampler and server threads; must not hang
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "ops server still accepting after platform drop"
    );
}
