//! Telemetry agrees with the audit log: after an end-to-end flow the
//! `telemetry()` snapshot's stage counts match what `audit_query`
//! returns record-by-record, and every hot path left latency samples.

use std::sync::Arc;

use css::audit::{AuditAction, AuditQuery};
use css::prelude::*;

const PUBLISHES: u64 = 5;
const PERMITS: u64 = 3;
const DENIES: u64 = 2;

fn person(i: u64) -> PersonIdentity {
    PersonIdentity {
        id: PersonId(i),
        fiscal_code: format!("FC{i:014}"),
        name: "P".into(),
        surname: format!("S{i}"),
    }
}

#[test]
fn telemetry_matches_audit_after_end_to_end_flow() {
    let clock = SimClock::starting_at(Timestamp(1_000));
    let mut platform = CssPlatform::in_memory_with_clock(Arc::new(clock.clone()));
    let hospital = platform.register_organization("Hospital").unwrap();
    let doctor = platform.register_organization("Doctor").unwrap();
    platform.join(hospital, Role::Producer).unwrap();
    platform.join(doctor, Role::Consumer).unwrap();

    let ty = EventTypeId::v1("blood-test");
    let schema = EventSchema::new(ty.clone(), "Blood Test", hospital)
        .field(FieldDef::required("PatientId", FieldKind::Integer))
        .field(FieldDef::required("Result", FieldKind::Text).sensitive());
    let producer = platform.producer(hospital).unwrap();
    producer.declare(&schema, None).unwrap();
    producer
        .policy_wizard(&ty)
        .unwrap()
        .select_fields(["PatientId", "Result"])
        .unwrap()
        .grant_to([doctor])
        .unwrap()
        .for_purposes([Purpose::HealthcareTreatment])
        .labeled("doctor-bt", "")
        .save()
        .unwrap();

    let consumer = platform.consumer(doctor).unwrap();
    let sub = consumer.subscribe(&ty).unwrap();

    let mut notifications = Vec::new();
    for i in 0..PUBLISHES {
        let details = EventDetails::new(ty.clone())
            .with("PatientId", FieldValue::Integer(i as i64))
            .with("Result", FieldValue::Text("negative".into()));
        producer
            .publish(person(i), "bt", details, clock.now())
            .unwrap();
        notifications.push(sub.next().unwrap().expect("notification delivered").message);
    }

    for n in notifications.iter().take(PERMITS as usize) {
        consumer
            .request_details(n, Purpose::HealthcareTreatment)
            .unwrap();
    }
    for n in notifications.iter().take(DENIES as usize) {
        // Purpose outside the policy: denied at the PDP.
        consumer
            .request_details(n, Purpose::StatisticalAnalysis)
            .unwrap_err();
    }

    let telemetry = platform.telemetry();

    // Publish pipeline vs audit Publish records.
    let published = platform.audit_query(&AuditQuery::new().action(AuditAction::Publish));
    assert_eq!(published.len() as u64, PUBLISHES);
    assert_eq!(telemetry.counter("controller.published"), PUBLISHES);
    for stage in ["consent_gate", "route", "index", "audit", "total"] {
        let h = telemetry
            .histogram(&format!("publish.{stage}"))
            .unwrap_or_else(|| panic!("publish.{stage} missing"));
        assert_eq!(h.count, PUBLISHES, "publish.{stage} count");
    }

    // Detail requests vs audit DetailRequest records, permit/deny split.
    let detail = platform.audit_query(&AuditQuery::new().action(AuditAction::DetailRequest));
    assert_eq!(detail.len() as u64, PERMITS + DENIES);
    let audited_permits = detail.iter().filter(|r| r.outcome.is_permitted()).count() as u64;
    assert_eq!(audited_permits, PERMITS);
    assert_eq!(
        telemetry.counter("controller.detail_requests"),
        PERMITS + DENIES
    );
    assert_eq!(telemetry.counter("controller.detail_permits"), PERMITS);
    assert_eq!(telemetry.counter("controller.detail_denies"), DENIES);

    // Every request reached the PDP (the denies are purpose denials);
    // only permits went on through retrieval and filtering.
    for stage in [
        "pip_resolve",
        "notified_check",
        "consent_check",
        "pdp_evaluate",
    ] {
        let h = telemetry.histogram(&format!("stage.{stage}")).unwrap();
        assert_eq!(h.count, PERMITS + DENIES, "stage.{stage} count");
    }
    for stage in ["gateway_retrieve", "obligation_filter"] {
        let h = telemetry.histogram(&format!("stage.{stage}")).unwrap();
        assert_eq!(h.count, PERMITS, "stage.{stage} count");
    }
    // Denied requests abandon the stage timer mid-flight; its drop
    // guard still records the elapsed total (plus a `partial` sample
    // for the stage in progress), so `stage.total` covers every
    // request, permitted or not.
    assert_eq!(
        telemetry.histogram("stage.total").unwrap().count,
        PERMITS + DENIES,
        "stage.total count"
    );
    assert_eq!(
        telemetry.histogram("stage.partial").unwrap().count,
        DENIES,
        "stage.partial count"
    );

    // Bus lifecycle: one fanout per publish, all delivered and acked.
    assert_eq!(telemetry.counter("bus.published"), PUBLISHES);
    assert_eq!(telemetry.counter("bus.fanned_out"), PUBLISHES);
    assert_eq!(telemetry.histogram("bus.deliver").unwrap().count, PUBLISHES);
    assert_eq!(telemetry.histogram("bus.ack").unwrap().count, PUBLISHES);
    assert_eq!(telemetry.gauge("bus.queue_depth"), 0);

    // Gateway (Algorithm 2): every publish persisted, every permit
    // produced a filtered response.
    assert_eq!(telemetry.counter("gateway.persisted"), PUBLISHES);
    assert_eq!(telemetry.counter("gateway.responses"), PERMITS);
    assert_eq!(
        telemetry.histogram("gateway.filter").unwrap().count,
        PERMITS
    );

    // Storage backends saw traffic, and the state gauges agree with
    // the audit log itself.
    assert!(telemetry.counter("storage.appended_bytes") > 0);
    assert!(telemetry.histogram("storage.append").unwrap().count > 0);
    let all = platform.audit_query(&AuditQuery::new());
    assert_eq!(
        telemetry.gauge("platform.audit_records") as usize,
        all.len()
    );
    assert_eq!(telemetry.gauge("platform.indexed_events") as u64, PUBLISHES);

    // The text exposition renders every metric family.
    let text = telemetry.to_text();
    for needle in [
        "counter controller.published",
        "gauge platform.audit_records",
        "histogram stage.pdp_evaluate",
    ] {
        assert!(text.contains(needle), "exposition missing {needle}");
    }
}
