//! Incremental lint cache: per-file facts keyed by (path, mtime, size).
//!
//! A warm run re-reads nothing that has not changed on disk: for every
//! file whose (mtime, size) stat matches the cached entry, the engine
//! reuses the persisted [`FileFacts`] — file-scoped findings, waivers,
//! and fn summaries — and only the project/workspace phases rerun
//! (they are cheap: they walk summaries, not source). The cache lives
//! in `target/css-lint-cache.json` and is versioned by a fingerprint of
//! the rule set, so editing a rule invalidates every entry at once
//! rather than silently serving findings from an older rule.
//!
//! The crate is zero-dependency, so this module carries its own minimal
//! JSON value parser (also used by the SARIF tests and the waiver
//! baseline ratchet). It parses exactly the JSON this crate writes:
//! objects, arrays, strings with the escapes [`crate::json::escape`]
//! emits, integers, and booleans.

use std::collections::HashMap;
use std::fs;
use std::path::Path;

use crate::callgraph::{CallSite, FileFacts, FnSummary};
use crate::diag::{Finding, Severity};
use crate::json::escape;
use crate::rules::all_rules;
use crate::source::FileRole;
use crate::waiver::Waiver;

/// Bump to invalidate caches whose serialized shape is unchanged but
/// whose semantics are not (e.g. a summarizer bug fix).
const CACHE_SCHEMA: u32 = 1;

// ---------------------------------------------------------------------------
// Minimal JSON value parser
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers keep their raw text so 64-bit stat
/// values round-trip exactly (no f64 detour).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a JSON document. `None` on any syntax error (the cache is an
/// optimization: a corrupt file must read as "cold", never as a panic).
pub fn parse_json(src: &str) -> Option<Json> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    (pos == bytes.len()).then_some(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && (b[*pos] as char).is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Option<Json> {
    skip_ws(b, pos);
    match *b.get(*pos)? {
        b'{' => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Some(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return None;
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                pairs.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b'}' => {
                        *pos += 1;
                        return Some(Json::Obj(pairs));
                    }
                    _ => return None,
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Some(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b']' => {
                        *pos += 1;
                        return Some(Json::Arr(items));
                    }
                    _ => return None,
                }
            }
        }
        b'"' => Some(Json::Str(parse_string(b, pos)?)),
        b't' => {
            *pos = pos.checked_add(4)?;
            (b.get(*pos - 4..*pos)? == b"true").then_some(Json::Bool(true))
        }
        b'f' => {
            *pos = pos.checked_add(5)?;
            (b.get(*pos - 5..*pos)? == b"false").then_some(Json::Bool(false))
        }
        b'n' => {
            *pos = pos.checked_add(4)?;
            (b.get(*pos - 4..*pos)? == b"null").then_some(Json::Null)
        }
        c if c == b'-' || c.is_ascii_digit() => {
            let start = *pos;
            if c == b'-' {
                *pos += 1;
            }
            while *pos < b.len()
                && (b[*pos].is_ascii_digit()
                    || b[*pos] == b'.'
                    || b[*pos] == b'e'
                    || b[*pos] == b'E'
                    || b[*pos] == b'+'
                    || b[*pos] == b'-')
            {
                *pos += 1;
            }
            Some(Json::Num(
                std::str::from_utf8(&b[start..*pos]).ok()?.to_string(),
            ))
        }
        _ => None,
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Option<String> {
    if b.get(*pos) != Some(&b'"') {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match *b.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match *b.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = std::str::from_utf8(b.get(*pos + 1..*pos + 5)?).ok()?;
                        let code = u32::from_str_radix(hex, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // Copy the full UTF-8 sequence starting here.
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).ok()?);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule-id interning (Finding.rule is &'static str)
// ---------------------------------------------------------------------------

/// Map a cached rule-id string back to the live rule's static id.
/// `None` for ids this build no longer ships — the entry is stale.
fn intern_rule(id: &str) -> Option<&'static str> {
    if id == "waiver-syntax" {
        return Some("waiver-syntax");
    }
    all_rules().iter().map(|r| r.id()).find(|r| *r == id)
}

/// A fingerprint of the live rule set; any rule change (id, severity,
/// description — the description doubles as a cheap version string)
/// invalidates the whole cache.
pub fn rules_fingerprint() -> String {
    let mut h: u64 = 0xcbf29ce484222325; // FNV-1a
    let mut eat = |s: &str| {
        for byte in s.bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    eat(&CACHE_SCHEMA.to_string());
    for rule in all_rules() {
        eat(rule.id());
        eat(rule.severity().as_str());
        eat(rule.description());
    }
    format!("{h:016x}")
}

// ---------------------------------------------------------------------------
// Cache entries
// ---------------------------------------------------------------------------

/// One cached file: its stat key and the facts the engine needs.
pub struct CachedFile {
    pub mtime_ns: u128,
    pub size: u64,
    pub facts: FileFacts,
}

/// Load the cache; empty map on missing/corrupt/stale-fingerprint file.
pub fn load(path: &Path) -> HashMap<String, CachedFile> {
    let Ok(src) = fs::read_to_string(path) else {
        return HashMap::new();
    };
    let Some(doc) = parse_json(&src) else {
        return HashMap::new();
    };
    if doc.get("fingerprint").and_then(Json::as_str) != Some(rules_fingerprint().as_str()) {
        return HashMap::new();
    }
    let mut out = HashMap::new();
    let Some(files) = doc.get("files").and_then(Json::as_arr) else {
        return HashMap::new();
    };
    for entry in files {
        if let Some((key, cached)) = read_entry(entry) {
            out.insert(key, cached);
        }
    }
    out
}

fn read_entry(entry: &Json) -> Option<(String, CachedFile)> {
    let path = entry.get("path")?.as_str()?.to_string();
    let mtime_ns = entry.get("mtime")?.as_u128()?;
    let size = entry.get("size")?.as_u64()?;
    let crate_name = entry.get("crate")?.as_str()?.to_string();
    let role = match entry.get("role")?.as_str()? {
        "prod" => FileRole::Production,
        "test" => FileRole::Test,
        _ => return None,
    };
    let mut findings = Vec::new();
    for f in entry.get("findings")?.as_arr()? {
        findings.push(read_finding(f)?);
    }
    let mut waivers = Vec::new();
    for w in entry.get("waivers")?.as_arr()? {
        waivers.push(Waiver {
            rule: w.get("rule")?.as_str()?.to_string(),
            reason: w.get("reason")?.as_str()?.to_string(),
            line: w.get("line")?.as_u64()? as u32,
        });
    }
    let mut fns = Vec::new();
    for f in entry.get("fns")?.as_arr()? {
        fns.push(read_fn(f)?);
    }
    let facts = FileFacts {
        crate_name,
        path: path.clone(),
        role,
        findings,
        waivers,
        fns,
    };
    Some((
        path,
        CachedFile {
            mtime_ns,
            size,
            facts,
        },
    ))
}

fn read_finding(f: &Json) -> Option<Finding> {
    Some(Finding {
        rule: intern_rule(f.get("rule")?.as_str()?)?,
        severity: match f.get("severity")?.as_str()? {
            "warn" => Severity::Warn,
            "error" => Severity::Error,
            _ => return None,
        },
        crate_name: f.get("crate")?.as_str()?.to_string(),
        file: f.get("file")?.as_str()?.to_string(),
        line: f.get("line")?.as_u64()? as u32,
        message: f.get("message")?.as_str()?.to_string(),
        waive_reason: None,
    })
}

fn read_fn(f: &Json) -> Option<FnSummary> {
    let mut calls = Vec::new();
    for c in f.get("calls")?.as_arr()? {
        calls.push(c.as_str()?.to_string());
    }
    let read_sites = |key: &str| -> Option<Vec<CallSite>> {
        let mut sites = Vec::new();
        for s in f.get(key)?.as_arr()? {
            sites.push(CallSite {
                callee: s.get("callee")?.as_str()?.to_string(),
                line: s.get("line")?.as_u64()? as u32,
                propagated: s.get("prop")?.as_bool()?,
            });
        }
        Some(sites)
    };
    Some(FnSummary {
        name: f.get("name")?.as_str()?.to_string(),
        line: f.get("line")?.as_u64()? as u32,
        is_prod: f.get("prod")?.as_bool()?,
        calls,
        appends_audit: f.get("audit")?.as_bool()?,
        mentions_backpressure: f.get("bp")?.as_bool()?,
        release_calls: read_sites("release")?,
        filing_calls: read_sites("filing")?,
    })
}

/// Persist the cache (best-effort: an unwritable target dir is not an
/// error — the next run is simply cold again).
pub fn store(path: &Path, entries: &[(String, u128, u64, &FileFacts)]) {
    let mut files = Vec::with_capacity(entries.len());
    for (file_path, mtime_ns, size, facts) in entries {
        files.push(write_entry(file_path, *mtime_ns, *size, facts));
    }
    let doc = format!(
        "{{\"version\":{CACHE_SCHEMA},\"fingerprint\":\"{}\",\"files\":[{}]}}\n",
        rules_fingerprint(),
        files.join(",")
    );
    if let Some(dir) = path.parent() {
        let _ = fs::create_dir_all(dir);
    }
    let _ = fs::write(path, doc);
}

fn write_entry(path: &str, mtime_ns: u128, size: u64, facts: &FileFacts) -> String {
    let findings: Vec<String> = facts.findings.iter().map(write_finding).collect();
    let waivers: Vec<String> = facts
        .waivers
        .iter()
        .map(|w| {
            format!(
                "{{\"rule\":\"{}\",\"reason\":\"{}\",\"line\":{}}}",
                escape(&w.rule),
                escape(&w.reason),
                w.line
            )
        })
        .collect();
    let fns: Vec<String> = facts.fns.iter().map(write_fn).collect();
    format!(
        "{{\"path\":\"{}\",\"mtime\":{mtime_ns},\"size\":{size},\"crate\":\"{}\",\"role\":\"{}\",\
         \"findings\":[{}],\"waivers\":[{}],\"fns\":[{}]}}",
        escape(path),
        escape(&facts.crate_name),
        match facts.role {
            FileRole::Production => "prod",
            FileRole::Test => "test",
        },
        findings.join(","),
        waivers.join(","),
        fns.join(",")
    )
}

fn write_finding(f: &Finding) -> String {
    format!(
        "{{\"rule\":\"{}\",\"severity\":\"{}\",\"crate\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
        escape(f.rule),
        f.severity.as_str(),
        escape(&f.crate_name),
        escape(&f.file),
        f.line,
        escape(&f.message),
    )
}

fn write_fn(f: &FnSummary) -> String {
    let calls: Vec<String> = f
        .calls
        .iter()
        .map(|c| format!("\"{}\"", escape(c)))
        .collect();
    let sites = |sites: &[CallSite]| -> String {
        sites
            .iter()
            .map(|s| {
                format!(
                    "{{\"callee\":\"{}\",\"line\":{},\"prop\":{}}}",
                    escape(&s.callee),
                    s.line,
                    s.propagated
                )
            })
            .collect::<Vec<_>>()
            .join(",")
    };
    format!(
        "{{\"name\":\"{}\",\"line\":{},\"prod\":{},\"audit\":{},\"bp\":{},\"calls\":[{}],\
         \"release\":[{}],\"filing\":[{}]}}",
        escape(&f.name),
        f.line,
        f.is_prod,
        f.appends_audit,
        f.mentions_backpressure,
        calls.join(","),
        sites(&f.release_calls),
        sites(&f.filing_calls)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_values() {
        let doc = parse_json(
            "{\"a\": [1, 2, {\"b\": \"x\\ny\"}], \"c\": true, \"d\": null, \"n\": 184467440737095516}",
        )
        .expect("parse");
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x\ny")
        );
        assert_eq!(doc.get("c").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("d"), Some(&Json::Null));
        assert_eq!(doc.get("n").unwrap().as_u128(), Some(184467440737095516));
    }

    #[test]
    fn corrupt_json_is_none() {
        assert!(parse_json("{\"a\":").is_none());
        assert!(parse_json("{]}").is_none());
        assert!(parse_json("").is_none());
        assert!(parse_json("{} trailing").is_none());
    }

    #[test]
    fn facts_round_trip_through_the_cache_file() {
        let facts = FileFacts {
            crate_name: "css-core".into(),
            path: "crates/core/src/a.rs".into(),
            role: FileRole::Production,
            findings: vec![Finding {
                rule: "identity-taint",
                severity: Severity::Error,
                crate_name: "css-core".into(),
                file: "crates/core/src/a.rs".into(),
                line: 7,
                message: "a \"quoted\" message".into(),
                waive_reason: None,
            }],
            waivers: vec![Waiver {
                rule: "no-panic-hot-path".into(),
                reason: "why".into(),
                line: 3,
            }],
            fns: vec![FnSummary {
                name: "f".into(),
                line: 1,
                is_prod: true,
                calls: vec!["g".into()],
                appends_audit: true,
                mentions_backpressure: false,
                release_calls: vec![CallSite {
                    callee: "get_response".into(),
                    line: 4,
                    propagated: true,
                }],
                filing_calls: vec![],
            }],
        };
        let dir = std::env::temp_dir().join("css-lint-cache-test");
        let path = dir.join("cache.json");
        store(
            &path,
            &[(
                facts.path.clone(),
                1_700_000_000_123_456_789_u128,
                42,
                &facts,
            )],
        );
        let loaded = load(&path);
        let entry = loaded.get("crates/core/src/a.rs").expect("entry");
        assert_eq!(entry.size, 42);
        assert_eq!(entry.facts.crate_name, "css-core");
        assert_eq!(entry.facts.findings, facts.findings);
        assert_eq!(entry.facts.waivers, facts.waivers);
        assert_eq!(entry.facts.fns, facts.fns);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_fingerprint_reads_cold() {
        let dir = std::env::temp_dir().join("css-lint-cache-stale");
        let path = dir.join("cache.json");
        let _ = fs::create_dir_all(&dir);
        let _ = fs::write(
            &path,
            "{\"version\":1,\"fingerprint\":\"not-this-build\",\"files\":[]}",
        );
        assert!(load(&path).is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_rule_id_invalidates_the_entry() {
        assert!(intern_rule("identity-taint").is_some());
        assert!(intern_rule("rule-from-the-future").is_none());
    }
}
