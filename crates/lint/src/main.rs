//! The `css-lint` binary.
//!
//! ```text
//! css-lint [--root PATH] [--format text|json] [--list-rules]
//! ```
//!
//! Exit codes: 0 — no error-severity findings; 1 — at least one error
//! finding; 2 — usage or I/O failure.

use std::path::PathBuf;
use std::process::ExitCode;

use css_lint::manifest::find_workspace_root;
use css_lint::rules::all_rules;
use css_lint::{lint_workspace, render_json, render_text};

fn usage() -> &'static str {
    "usage: css-lint [--root PATH] [--format text|json] [--list-rules]\n"
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format_json = false;
    let mut list_rules = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprint!("--root needs a path\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("json") => format_json = true,
                Some("text") => format_json = false,
                _ => {
                    eprint!("--format must be `text` or `json`\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => list_rules = true,
            "-h" | "--help" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprint!("unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for rule in all_rules() {
            println!(
                "{:<22} {:<5} {}",
                rule.id(),
                rule.severity(),
                rule.description()
            );
        }
        return ExitCode::SUCCESS;
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("css-lint: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("css-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "css-lint: failed to read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    if format_json {
        print!("{}", render_json(&report));
    } else {
        print!("{}", render_text(&report));
    }
    ExitCode::from(report.exit_code() as u8)
}
