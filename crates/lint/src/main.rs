//! The `css-lint` binary.
//!
//! ```text
//! css-lint [--root PATH] [--format text|json|sarif] [--list-rules]
//!          [--baseline PATH] [--write-baseline PATH] [--no-cache]
//! ```
//!
//! By default the run is incremental: per-file facts are cached in
//! `<root>/target/css-lint-cache.json` keyed by (path, mtime, size) and
//! a fingerprint of the rule set, so warm runs re-parse only changed
//! files. `--no-cache` forces a cold run (and leaves any cache file
//! untouched).
//!
//! `--baseline PATH` enforces the waiver-budget ratchet: the run fails
//! (exit 1) if any current waiver is not covered by the committed
//! baseline. `--write-baseline PATH` regenerates the baseline from the
//! current waivers instead of checking.
//!
//! Exit codes: 0 — no error-severity findings and the baseline holds;
//! 1 — at least one error finding or a baseline violation; 2 — usage or
//! I/O failure.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use css_lint::manifest::find_workspace_root;
use css_lint::rules::all_rules;
use css_lint::{
    baseline, lint_workspace_with_cache, render_json, render_sarif, render_text, Timing,
};

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn usage() -> &'static str {
    "usage: css-lint [--root PATH] [--format text|json|sarif] [--list-rules]\n\
     \x20               [--baseline PATH] [--write-baseline PATH] [--no-cache]\n"
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut list_rules = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut use_cache = true;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprint!("--root needs a path\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("text") => format = Format::Text,
                Some("sarif") => format = Format::Sarif,
                _ => {
                    eprint!("--format must be `text`, `json`, or `sarif`\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprint!("--baseline needs a path\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--write-baseline" => match args.next() {
                Some(p) => write_baseline = Some(PathBuf::from(p)),
                None => {
                    eprint!("--write-baseline needs a path\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--no-cache" => use_cache = false,
            "--list-rules" => list_rules = true,
            "-h" | "--help" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprint!("unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for rule in all_rules() {
            println!(
                "{:<24} {:<5} {}",
                rule.id(),
                rule.severity(),
                rule.description()
            );
        }
        return ExitCode::SUCCESS;
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("css-lint: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("css-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let cache_path = use_cache.then(|| root.join("target").join("css-lint-cache.json"));
    let started = Instant::now();
    let (mut report, stats) = match lint_workspace_with_cache(&root, cache_path.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "css-lint: failed to read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    report.timing = Some(Timing {
        wall_ms: started.elapsed().as_millis() as u64,
        files_reused: stats.reused,
        files_parsed: stats.parsed,
    });

    if let Some(path) = write_baseline {
        if let Err(e) = std::fs::write(&path, baseline::render(&report)) {
            eprintln!("css-lint: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "css-lint: wrote {} waiver(s) to {}",
            report.waived.len(),
            path.display()
        );
    }

    let mut baseline_failed = false;
    if let Some(path) = baseline_path {
        match baseline::load(&path) {
            Ok(entries) => {
                for violation in baseline::check(&report, &entries) {
                    eprintln!("css-lint: {violation}");
                    baseline_failed = true;
                }
            }
            Err(e) => {
                eprintln!("css-lint: {e}");
                return ExitCode::from(2);
            }
        }
    }

    match format {
        Format::Json => print!("{}", render_json(&report)),
        Format::Sarif => print!("{}", render_sarif(&report)),
        Format::Text => print!("{}", render_text(&report)),
    }
    if baseline_failed {
        return ExitCode::from(1);
    }
    ExitCode::from(report.exit_code() as u8)
}
