//! Diagnostics: severities and findings.

use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; never fails the build.
    Warn,
    /// A privacy-invariant violation; fails `css-lint` (exit 1).
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One rule violation at one source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `permit-provenance`.
    pub rule: &'static str,
    pub severity: Severity,
    /// Workspace crate the finding is in (empty for workspace-level
    /// findings such as layering).
    pub crate_name: String,
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line; 0 for manifest-level findings.
    pub line: u32,
    pub message: String,
    /// `Some(reason)` when an inline waiver suppressed this finding.
    pub waive_reason: Option<String>,
}

impl Finding {
    pub fn is_waived(&self) -> bool {
        self.waive_reason.is_some()
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {}:{}: {}",
            self.severity, self.rule, self.file, self.line, self.message
        )?;
        if let Some(reason) = &self.waive_reason {
            write!(f, " (waived: {reason})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_rule_location_and_waiver() {
        let mut finding = Finding {
            rule: "no-panic-hot-path",
            severity: Severity::Error,
            crate_name: "css-bus".into(),
            file: "crates/bus/src/broker.rs".into(),
            line: 42,
            message: "`.unwrap()` in non-test code".into(),
            waive_reason: None,
        };
        let text = finding.to_string();
        assert!(text.starts_with("error: [no-panic-hot-path]"));
        assert!(text.contains("broker.rs:42"));
        finding.waive_reason = Some("checked above".into());
        assert!(finding.to_string().contains("waived: checked above"));
    }

    #[test]
    fn error_outranks_warn() {
        assert!(Severity::Error > Severity::Warn);
    }
}
