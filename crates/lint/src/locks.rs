//! Shard lock-acquisition ordering.
//!
//! PR 7's scatter-gather deadlock-freedom argument rests on a single
//! discipline: a thread holding one shard's lock never acquires another
//! shard's lock unless the indices are *strictly ascending*. Two
//! threads locking shards in opposite orders deadlock; ascending order
//! makes the wait-for graph acyclic. This pass pins the argument: it
//! tracks shard-guard bindings inside each fn body (the same
//! statement-tail idiom the lock-across-io rule uses) and reports any
//! overlapping acquisition whose order it cannot prove ascending.
//!
//! Recognized acquisition shapes:
//! - `.shard(IDX)` — the `IndexShards::shard(i)` helper (returns a guard)
//! - `.shards[IDX].lock()` / `.read()` / `.write()` — direct slot lock
//! - `<ident containing "shard">.lock()` — a loop variable over shards
//!
//! Index comparison: two numeric literals compare numerically (must be
//! strictly ascending); identical symbolic index expressions are a
//! re-acquisition (self-deadlock with `Mutex`); anything else is
//! *unprovable* and reported — restructure to one-guard-at-a-time
//! iteration (the idiom every production cross-shard path uses) or
//! ascending literals.

use crate::diag::{Finding, Severity};
use crate::source::{matching_brace, matching_bracket, matching_paren, FnBody, SourceFile};

const GUARD_CALLS: &[&str] = &["lock", "read", "write"];

/// A shard index expression, as far as the token stream can tell.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ShardIndex {
    Lit(u64),
    Sym(String),
}

impl ShardIndex {
    fn parse(file: &SourceFile, a: usize, b: usize) -> ShardIndex {
        let toks = &file.tokens;
        if a == b {
            if let Ok(n) = toks[a].text.parse::<u64>() {
                return ShardIndex::Lit(n);
            }
        }
        let mut text = String::new();
        for t in toks.iter().take(b + 1).skip(a) {
            if !text.is_empty()
                && t.text
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
                && text
                    .chars()
                    .last()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                text.push(' ');
            }
            text.push_str(&t.text);
        }
        ShardIndex::Sym(text)
    }

    fn describe(&self) -> String {
        match self {
            ShardIndex::Lit(n) => format!("shard {n}"),
            ShardIndex::Sym(s) => format!("shard `{s}`"),
        }
    }
}

/// One acquisition site: the index expression plus the token just past
/// the acquisition (for statement-tail guard detection).
struct Acquisition {
    index: ShardIndex,
    /// Token index of the acquisition's last token (`)` or `]`-chain).
    end: usize,
}

struct HeldGuard {
    name: String,
    index: ShardIndex,
    depth: usize,
    line: u32,
}

/// Walk one fn body; report overlapping shard-lock acquisitions whose
/// order is not provably ascending. Nested fns are skipped (checked
/// through their own bodies).
pub fn check_fn(file: &SourceFile, body: &FnBody, rule_id: &'static str, out: &mut Vec<Finding>) {
    if !file.is_prod(body.open) {
        return;
    }
    let toks = &file.tokens;
    let mut guards: Vec<HeldGuard> = Vec::new();
    // The binding name of the `let` statement currently being scanned,
    // plus the last acquisition seen inside it.
    let mut pending_let: Option<(String, usize)> = None;
    let mut last_acq: Option<Acquisition> = None;
    let mut depth = 0usize;
    let mut i = body.open;
    while i <= body.close {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            guards.retain(|g| g.depth <= depth);
        } else if t.is_ident("fn") && i > body.open {
            if let Some(open) = nested_fn_open(file, i, body.close) {
                i = matching_brace(toks, open);
                continue;
            }
        } else if t.is_ident("let") {
            let mut n = i + 1;
            if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
                n += 1;
            }
            pending_let = file.ident(n).map(|name| (name.to_string(), depth));
            last_acq = None;
        } else if t.is_punct(';') {
            // Statement end: a `let` whose tail was an acquisition binds
            // a guard; a temporary (anything else) died here.
            if let (Some((name, let_depth)), Some(acq)) = (&pending_let, &last_acq) {
                if acq.end + 1 == i {
                    guards.push(HeldGuard {
                        name: name.clone(),
                        index: acq.index.clone(),
                        depth: *let_depth,
                        line: toks[i].line,
                    });
                }
            }
            pending_let = None;
            last_acq = None;
        } else if t.is_ident("drop") && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            if let Some(name) = file.ident(i + 2) {
                if toks.get(i + 3).is_some_and(|t| t.is_punct(')')) {
                    guards.retain(|g| g.name != name);
                }
            }
        }

        if let Some(acq) = acquisition_at(file, i) {
            if file.is_prod(i) {
                for held in &guards {
                    if let Some(problem) = order_violation(&held.index, &acq.index) {
                        out.push(Finding {
                            rule: rule_id,
                            severity: Severity::Error,
                            crate_name: file.crate_name.clone(),
                            file: file.path.clone(),
                            line: t.line,
                            message: format!(
                                "fn `{}` acquires {} while holding {} (guard `{}`, line {}): {}",
                                body.name,
                                acq.index.describe(),
                                held.index.describe(),
                                held.name,
                                held.line,
                                problem
                            ),
                            waive_reason: None,
                        });
                    }
                }
            }
            let end = acq.end;
            last_acq = Some(acq);
            i = end + 1;
            continue;
        }
        i += 1;
    }
}

/// Why acquiring `new` while holding `held` is (or may be) a deadlock.
fn order_violation(held: &ShardIndex, new: &ShardIndex) -> Option<&'static str> {
    match (held, new) {
        (ShardIndex::Lit(a), ShardIndex::Lit(b)) => {
            if b > a {
                None // strictly ascending: safe
            } else if b == a {
                Some("re-acquiring the same shard self-deadlocks")
            } else {
                Some(
                    "shard locks must be acquired in strictly ascending index order \
                     to keep the scatter-gather wait-for graph acyclic",
                )
            }
        }
        (ShardIndex::Sym(a), ShardIndex::Sym(b)) if a == b => {
            Some("re-acquiring the same shard self-deadlocks")
        }
        _ => Some(
            "the acquisition order cannot be proven ascending — iterate shards \
             one guard at a time or use ascending literal indices",
        ),
    }
}

/// Detect a shard-lock acquisition starting at token `i`.
fn acquisition_at(file: &SourceFile, i: usize) -> Option<Acquisition> {
    let toks = &file.tokens;
    let t = toks.get(i)?;
    // `.shard(IDX)` — the guard-returning helper.
    if t.is_punct('.')
        && toks.get(i + 1).is_some_and(|t| t.is_ident("shard"))
        && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
    {
        let close = matching_paren(toks, i + 2);
        if close >= i + 3 {
            let index = ShardIndex::parse(file, i + 3, close.saturating_sub(1));
            return Some(Acquisition { index, end: close });
        }
    }
    // `.shards[IDX].lock()` / `.read()` / `.write()`.
    if t.is_punct('.')
        && toks.get(i + 1).is_some_and(|t| t.is_ident("shards"))
        && toks.get(i + 2).is_some_and(|t| t.is_punct('['))
    {
        let close_br = matching_bracket(toks, i + 2);
        if toks.get(close_br + 1).is_some_and(|t| t.is_punct('.'))
            && toks
                .get(close_br + 2)
                .is_some_and(|t| GUARD_CALLS.iter().any(|g| t.is_ident(g)))
            && toks.get(close_br + 3).is_some_and(|t| t.is_punct('('))
        {
            let close = matching_paren(toks, close_br + 3);
            let index = ShardIndex::parse(file, i + 3, close_br.saturating_sub(1));
            return Some(Acquisition { index, end: close });
        }
    }
    // `<shard-ish ident>.lock()` — e.g. a loop variable over the shard
    // vector. Only `lock` here: `.read()`/`.write()` on a shard-named
    // ident would double-count the `.shards[..]` form's chain.
    if t.kind == crate::scanner::TokenKind::Ident
        && t.text.to_ascii_lowercase().contains("shard")
        && !t.is_ident("shards")
        && toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
        && toks.get(i + 2).is_some_and(|t| t.is_ident("lock"))
        && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
    {
        let close = matching_paren(toks, i + 3);
        return Some(Acquisition {
            index: ShardIndex::Sym(t.text.clone()),
            end: close,
        });
    }
    None
}

fn nested_fn_open(file: &SourceFile, at: usize, limit: usize) -> Option<usize> {
    let toks = &file.tokens;
    let mut paren = 0isize;
    let mut k = at + 1;
    while k <= limit {
        let t = &toks[k];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if paren == 0 {
            if t.is_punct(';') {
                return None;
            }
            if t.is_punct('{') {
                return Some(k);
            }
        }
        k += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileRole;

    fn findings(src: &str) -> Vec<Finding> {
        let file = SourceFile::parse("css-controller", "src/x.rs", FileRole::Production, src);
        let mut out = Vec::new();
        for body in &file.fns {
            check_fn(&file, body, "shard-lock-order", &mut out);
        }
        out
    }

    #[test]
    fn descending_literals_fire() {
        let hits = findings(
            "fn f(&self) {\n\
                 let a = self.shard(2);\n\
                 let b = self.shard(1);\n\
             }",
        );
        assert_eq!(hits.len(), 1, "{hits:#?}");
        assert!(hits[0].message.contains("ascending"));
    }

    #[test]
    fn ascending_literals_pass() {
        let hits = findings(
            "fn f(&self) {\n\
                 let a = self.shard(0);\n\
                 let b = self.shard(1);\n\
                 let c = self.shards[2].lock();\n\
             }",
        );
        assert!(hits.is_empty(), "{hits:#?}");
    }

    #[test]
    fn same_index_is_self_deadlock() {
        let hits = findings(
            "fn f(&self, i: usize) {\n\
                 let a = self.shards[i].lock();\n\
                 let b = self.shards[i].lock();\n\
             }",
        );
        assert_eq!(hits.len(), 1, "{hits:#?}");
        assert!(hits[0].message.contains("self-deadlocks"));
    }

    #[test]
    fn symbolic_overlap_is_unprovable() {
        let hits = findings(
            "fn f(&self, i: usize, j: usize) {\n\
                 let a = self.shard(i);\n\
                 let b = self.shard(j);\n\
             }",
        );
        assert_eq!(hits.len(), 1, "{hits:#?}");
        assert!(hits[0].message.contains("cannot be proven"));
    }

    #[test]
    fn drop_releases_the_guard() {
        let hits = findings(
            "fn f(&self) {\n\
                 let a = self.shard(3);\n\
                 drop(a);\n\
                 let b = self.shard(0);\n\
             }",
        );
        assert!(hits.is_empty(), "{hits:#?}");
    }

    #[test]
    fn loop_one_guard_at_a_time_passes() {
        let hits = findings(
            "fn f(&self) {\n\
                 for i in 0..self.shards.len() {\n\
                     let shard = self.shard(i);\n\
                     shard.sync();\n\
                 }\n\
                 for shard in &self.shards {\n\
                     let shard = shard.lock();\n\
                     shard.verify();\n\
                 }\n\
             }",
        );
        assert!(hits.is_empty(), "{hits:#?}");
    }

    #[test]
    fn temporary_acquisition_while_held_fires() {
        let hits = findings(
            "fn f(&self) {\n\
                 let a = self.shard(1);\n\
                 let n = self.shard(0).len();\n\
             }",
        );
        assert_eq!(hits.len(), 1, "temporaries overlap too: {hits:#?}");
    }

    #[test]
    fn block_scoped_guard_releases_at_brace() {
        let hits = findings(
            "fn f(&self) {\n\
                 {\n\
                     let a = self.shard(5);\n\
                     a.len();\n\
                 }\n\
                 let b = self.shard(0);\n\
             }",
        );
        assert!(hits.is_empty(), "{hits:#?}");
    }
}
