//! Waiver-budget ratchet against a committed baseline.
//!
//! `lint-baseline.json` records the waivers the workspace is allowed to
//! carry, as (rule, file) pairs. A lint run checked against the
//! baseline fails when the current waiver multiset is not a subset of
//! the baseline's — i.e. any *new* waiver (or a second waiver of the
//! same rule in the same file) must be paid for by deliberately
//! regenerating the baseline in the same change, which makes waiver
//! growth visible in review instead of accreting silently. Removing
//! waivers never fails: the ratchet only turns one way.

use std::fs;
use std::path::Path;

use crate::cache::{parse_json, Json};
use crate::engine::Report;
use crate::json::escape;

/// One allowed waiver: the rule and the file it is waived in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    pub rule: String,
    pub file: String,
}

/// Load the baseline file. `Err` carries a human-readable reason.
pub fn load(path: &Path) -> Result<Vec<BaselineEntry>, String> {
    let src = fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    let doc =
        parse_json(&src).ok_or_else(|| format!("baseline {} is not valid JSON", path.display()))?;
    let waivers = doc
        .get("waivers")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("baseline {} has no \"waivers\" array", path.display()))?;
    let mut out = Vec::new();
    for w in waivers {
        let (Some(rule), Some(file)) = (
            w.get("rule").and_then(Json::as_str),
            w.get("file").and_then(Json::as_str),
        ) else {
            return Err(format!(
                "baseline {} entry missing rule/file",
                path.display()
            ));
        };
        out.push(BaselineEntry {
            rule: rule.to_string(),
            file: file.to_string(),
        });
    }
    Ok(out)
}

/// Check the report's waivers against the baseline. Returns the list
/// of violations (empty = pass): each violation is a waiver present in
/// the report but not covered by a remaining baseline entry (multiset
/// semantics — two waivers of one rule in one file need two entries).
pub fn check(report: &Report, baseline: &[BaselineEntry]) -> Vec<String> {
    let mut budget: Vec<BaselineEntry> = baseline.to_vec();
    let mut violations = Vec::new();
    for f in &report.waived {
        let entry = BaselineEntry {
            rule: f.rule.to_string(),
            file: f.file.clone(),
        };
        match budget.iter().position(|b| *b == entry) {
            Some(i) => {
                budget.swap_remove(i);
            }
            None => violations.push(format!(
                "new waiver not in baseline: {} in {} (line {})",
                f.rule, f.file, f.line
            )),
        }
    }
    violations
}

/// Render the current report's waivers as a baseline document, for
/// deliberate regeneration (`css-lint --write-baseline`).
pub fn render(report: &Report) -> String {
    let mut entries: Vec<String> = report
        .waived
        .iter()
        .map(|f| {
            format!(
                "    {{\"rule\":\"{}\",\"file\":\"{}\"}}",
                escape(f.rule),
                escape(&f.file)
            )
        })
        .collect();
    entries.sort();
    format!(
        "{{\n  \"version\": 1,\n  \"waivers\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Finding, Severity};

    fn waived(rule: &'static str, file: &str) -> Finding {
        Finding {
            rule,
            severity: Severity::Error,
            crate_name: "c".into(),
            file: file.into(),
            line: 1,
            message: "m".into(),
            waive_reason: Some("r".into()),
        }
    }

    fn report_with(waivers: Vec<Finding>) -> Report {
        Report {
            waived: waivers,
            ..Report::default()
        }
    }

    fn entry(rule: &str, file: &str) -> BaselineEntry {
        BaselineEntry {
            rule: rule.into(),
            file: file.into(),
        }
    }

    #[test]
    fn subset_passes_and_new_waiver_fails() {
        let baseline = vec![
            entry("no-panic-hot-path", "a.rs"),
            entry("layering", "b.rs"),
        ];
        let ok = report_with(vec![waived("no-panic-hot-path", "a.rs")]);
        assert!(check(&ok, &baseline).is_empty());
        let bad = report_with(vec![waived("identity-taint", "c.rs")]);
        let violations = check(&bad, &baseline);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("identity-taint"));
    }

    #[test]
    fn multiset_semantics_need_one_entry_per_waiver() {
        let baseline = vec![entry("no-panic-hot-path", "a.rs")];
        let two = report_with(vec![
            waived("no-panic-hot-path", "a.rs"),
            waived("no-panic-hot-path", "a.rs"),
        ]);
        assert_eq!(check(&two, &baseline).len(), 1);
    }

    #[test]
    fn render_round_trips_through_load() {
        let report = report_with(vec![
            waived("no-panic-hot-path", "a.rs"),
            waived("audit-before-release", "b.rs"),
        ]);
        let doc = render(&report);
        let dir = std::env::temp_dir().join("css-lint-baseline-test");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("lint-baseline.json");
        fs::write(&path, &doc).unwrap();
        let loaded = load(&path).expect("load");
        assert_eq!(loaded.len(), 2);
        assert!(loaded.contains(&entry("no-panic-hot-path", "a.rs")));
        assert!(check(&report, &loaded).is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
