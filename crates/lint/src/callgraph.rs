//! Workspace-wide function resolution and transitive-caller queries.
//!
//! The scanner stays token-level, so the "call graph" is name-based:
//! each function body is distilled into a [`FnSummary`] (who it calls,
//! whether it appends to the audit trail, whether it matches
//! `CssError::Backpressure`, where it releases identities or files into
//! the bounded pending queue), and [`Project`] indexes those summaries
//! by name across every scanned file. Name resolution is deliberately
//! conservative: a call edge `f -> g` exists when `f`'s body contains
//! `g(` or `.g(` and *some* workspace fn is named `g`. Rules that walk
//! the graph restrict resolution further (e.g. same-crate only for the
//! audit obligation) to keep false edges from absolving a violation.
//!
//! Summaries are cheap, order-stable, and serializable — they are what
//! the incremental cache persists per file, so project-scoped rules can
//! rerun from cache without re-scanning unchanged sources.

use std::collections::HashMap;

use crate::diag::Finding;
use crate::scanner::TokenKind;
use crate::source::{matching_paren, FileRole, FnBody, SourceFile};
use crate::waiver::Waiver;

/// Calls that constitute a release of protected data (shared with the
/// audit-before-release rule).
pub const RELEASE_CALLS: &[&str] = &[
    "decrypt_notification",
    "get_response",
    "get_response_traced",
];

/// Calls that file into the bounded pending-access queue.
pub const FILING_CALLS: &[&str] = &["file", "request_access"];

/// Keywords that look like calls when followed by `(` but are not.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "fn", "in", "move", "as", "let",
];

/// One interesting call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// The called method/function name.
    pub callee: String,
    /// 1-based source line of the call.
    pub line: u32,
    /// Whether the call's result is propagated outward (`?`, tail
    /// expression, or an explicit `return`), i.e. the caller forwards
    /// the error instead of swallowing it.
    pub propagated: bool,
}

/// The distilled facts about one function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSummary {
    pub name: String,
    /// 1-based line of the body's opening brace.
    pub line: u32,
    /// Whether the body is production code (role + `#[cfg(test)]`).
    pub is_prod: bool,
    /// Names this body calls (`g(` or `.g(`), deduplicated, in order.
    pub calls: Vec<String>,
    /// Body mentions an `audit`-ish identifier *and* an `.append(..)` /
    /// `.append_batch(..)` call — the textual audit-append heuristic.
    pub appends_audit: bool,
    /// Body names `Backpressure` (a match arm or construction).
    pub mentions_backpressure: bool,
    /// Release-call sites (`.decrypt_notification(` etc.).
    pub release_calls: Vec<CallSite>,
    /// Pending-queue filing sites (`.file(` / `.request_access(`).
    pub filing_calls: Vec<CallSite>,
}

/// Everything the engine keeps per file: the file-scoped findings
/// (waivers *not* yet applied), the waivers themselves, and the fn
/// summaries project rules run over. This is the unit the incremental
/// cache persists.
#[derive(Debug, Clone)]
pub struct FileFacts {
    pub crate_name: String,
    /// Path relative to the workspace root.
    pub path: String,
    pub role: FileRole,
    /// File-scoped findings, unwaived (waivers apply at assembly time).
    pub findings: Vec<Finding>,
    pub waivers: Vec<Waiver>,
    pub fns: Vec<FnSummary>,
}

/// Distill every fn body of a parsed file into summaries.
pub fn extract_fn_summaries(file: &SourceFile) -> Vec<FnSummary> {
    file.fns.iter().map(|b| summarize_fn(file, b)).collect()
}

fn summarize_fn(file: &SourceFile, body: &FnBody) -> FnSummary {
    let toks = &file.tokens;
    let mut calls: Vec<String> = Vec::new();
    let mut appends = false;
    let mut audit_ident = false;
    let mut backpressure = false;
    let mut release_calls = Vec::new();
    let mut filing_calls = Vec::new();

    for i in body.open..body.close {
        let t = &toks[i];
        if t.kind == TokenKind::Ident {
            if t.text.contains("audit") {
                audit_ident = true;
            }
            if t.text == "Backpressure" {
                backpressure = true;
            }
            // A call: ident directly followed by `(` (macro bangs like
            // `format!(` have a `!` in between and are excluded).
            if toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
            {
                if !calls.iter().any(|c| c == &t.text) {
                    calls.push(t.text.clone());
                }
                let dotted = i > 0 && toks[i - 1].is_punct('.');
                if dotted && (t.is_ident("append") || t.is_ident("append_batch")) {
                    appends = true;
                }
                if dotted && RELEASE_CALLS.contains(&t.text.as_str()) && file.is_prod(i) {
                    release_calls.push(CallSite {
                        callee: t.text.clone(),
                        line: t.line,
                        propagated: call_propagates(file, body, i),
                    });
                }
                if dotted && FILING_CALLS.contains(&t.text.as_str()) && file.is_prod(i) {
                    filing_calls.push(CallSite {
                        callee: t.text.clone(),
                        line: t.line,
                        propagated: call_propagates(file, body, i),
                    });
                }
            }
        }
    }

    FnSummary {
        name: body.name.clone(),
        line: toks.get(body.open).map(|t| t.line).unwrap_or(0),
        is_prod: file.is_prod(body.open),
        calls,
        appends_audit: audit_ident && appends,
        mentions_backpressure: backpressure,
        release_calls,
        filing_calls,
    }
}

/// Whether the call whose name token is at `name_idx` propagates its
/// result outward: followed by `?`, in tail position (`}` directly after
/// the closing paren), or in a `return` statement.
fn call_propagates(file: &SourceFile, body: &FnBody, name_idx: usize) -> bool {
    let toks = &file.tokens;
    let Some(open) = toks
        .get(name_idx + 1)
        .filter(|t| t.is_punct('('))
        .map(|_| name_idx + 1)
    else {
        return false;
    };
    let close = matching_paren(toks, open);
    match toks.get(close + 1) {
        Some(t) if t.is_punct('?') => return true,
        Some(t) if t.is_punct('}') => return true,
        _ => {}
    }
    // Walk back to the start of the statement; `return` there counts.
    let mut k = name_idx;
    while k > body.open {
        let t = &toks[k - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        if t.is_ident("return") {
            return true;
        }
        k -= 1;
    }
    false
}

/// A key into [`Project::files`] → `fns`: (file index, fn index).
pub type FnKey = (usize, usize);

/// The whole workspace, summarized: every file's facts plus name
/// indices for definition lookup and reverse (caller) edges.
pub struct Project {
    pub files: Vec<FileFacts>,
    defs: HashMap<String, Vec<FnKey>>,
    callers: HashMap<String, Vec<FnKey>>,
}

impl Project {
    pub fn new(files: Vec<FileFacts>) -> Project {
        let mut defs: HashMap<String, Vec<FnKey>> = HashMap::new();
        let mut callers: HashMap<String, Vec<FnKey>> = HashMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.fns.iter().enumerate() {
                defs.entry(f.name.clone()).or_default().push((fi, gi));
                for callee in &f.calls {
                    callers.entry(callee.clone()).or_default().push((fi, gi));
                }
            }
        }
        Project {
            files,
            defs,
            callers,
        }
    }

    pub fn fn_at(&self, key: FnKey) -> &FnSummary {
        &self.files[key.0].fns[key.1]
    }

    pub fn file_of(&self, key: FnKey) -> &FileFacts {
        &self.files[key.0]
    }

    /// Workspace fns named `name`.
    pub fn defs(&self, name: &str) -> &[FnKey] {
        self.defs.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Fns whose body contains a call to `name`.
    pub fn callers_of(&self, name: &str) -> &[FnKey] {
        self.callers.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether any *production* fn calls `name`.
    pub fn has_prod_caller(&self, name: &str) -> bool {
        self.callers_of(name).iter().any(|&k| self.fn_at(k).is_prod)
    }

    /// Breadth-first walk up the (name-resolved) caller edges from the
    /// fn named `start`, production fns only; `true` when any reached
    /// caller satisfies `pred`.
    pub fn any_transitive_caller(&self, start: &str, pred: impl Fn(&FnSummary) -> bool) -> bool {
        let mut queue: Vec<FnKey> = self
            .callers_of(start)
            .iter()
            .copied()
            .filter(|&k| self.fn_at(k).is_prod)
            .collect();
        let mut visited: Vec<FnKey> = queue.clone();
        while let Some(key) = queue.pop() {
            let f = self.fn_at(key);
            if pred(f) {
                return true;
            }
            for &up in self.callers_of(&f.name) {
                if self.fn_at(up).is_prod && !visited.contains(&up) {
                    visited.push(up);
                    queue.push(up);
                }
            }
        }
        false
    }

    /// Whether `key`'s fn appends an audit record itself or through a
    /// transitive *same-crate* callee (helper-fn refactors stay inside
    /// the crate; cross-crate resolution would let an unrelated
    /// `.append(` absolve a release).
    pub fn appends_audit_transitively(&self, key: FnKey) -> bool {
        let mut visited: Vec<FnKey> = Vec::new();
        self.audit_walk(key, &mut visited)
    }

    fn audit_walk(&self, key: FnKey, visited: &mut Vec<FnKey>) -> bool {
        if visited.contains(&key) {
            return false;
        }
        visited.push(key);
        let f = self.fn_at(key);
        if f.appends_audit {
            return true;
        }
        let crate_name = &self.file_of(key).crate_name;
        for callee in &f.calls {
            for &def in self.defs(callee) {
                if def != key
                    && &self.file_of(def).crate_name == crate_name
                    && self.audit_walk(def, visited)
                {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(crate_name: &str, path: &str, src: &str) -> FileFacts {
        let file = SourceFile::parse(crate_name, path, FileRole::Production, src);
        FileFacts {
            crate_name: crate_name.into(),
            path: path.into(),
            role: FileRole::Production,
            findings: Vec::new(),
            waivers: file.waivers.clone(),
            fns: extract_fn_summaries(&file),
        }
    }

    #[test]
    fn summaries_capture_calls_and_flags() {
        let f = facts(
            "css-controller",
            "src/a.rs",
            "fn deliver(&self) -> CssResult<()> {\n\
                 let n = self.index.decrypt_notification(id)?;\n\
                 self.log_release(&n);\n\
                 Ok(())\n\
             }\n\
             fn log_release(&self, n: &Note) {\n\
                 self.audit.append(record(n));\n\
             }\n",
        );
        let deliver = &f.fns[0];
        assert_eq!(deliver.name, "deliver");
        assert!(deliver.calls.contains(&"log_release".to_string()));
        assert_eq!(deliver.release_calls.len(), 1);
        assert!(deliver.release_calls[0].propagated, "`?` propagates");
        assert!(!deliver.appends_audit);
        let log = &f.fns[1];
        assert!(log.appends_audit);
    }

    #[test]
    fn audit_obligation_resolves_through_same_crate_helper() {
        let p = Project::new(vec![facts(
            "css-controller",
            "src/a.rs",
            "fn deliver(&self) { let n = self.index.decrypt_notification(id); self.log_release(n); }\n\
             fn log_release(&self, n: Note) { self.audit.append(record(n)); }\n\
             fn bare(&self) { let n = self.index.decrypt_notification(id); drop(n); }\n",
        )]);
        assert!(p.appends_audit_transitively((0, 0)), "via helper");
        assert!(!p.appends_audit_transitively((0, 2)), "no audit anywhere");
    }

    #[test]
    fn audit_obligation_does_not_cross_crates() {
        let a = facts(
            "css-controller",
            "src/a.rs",
            "fn deliver(&self) { let n = self.x.decrypt_notification(id); helper(n); }\n",
        );
        let b = facts(
            "css-gateway",
            "src/b.rs",
            "fn helper(n: Note) { audit_log.append(n); }\n",
        );
        let p = Project::new(vec![a, b]);
        assert!(
            !p.appends_audit_transitively((0, 0)),
            "a same-named fn in another crate must not absolve the release"
        );
    }

    #[test]
    fn transitive_callers_walk_upward() {
        let p = Project::new(vec![facts(
            "css-core",
            "src/a.rs",
            "fn request_access(&self) -> CssResult<u64> { self.pending.file(x) }\n\
             fn step(&self) { self.request_access(); }\n\
             fn run(&self) { match self.step() { Err(CssError::Backpressure(_)) => {} _ => {} } }\n",
        )]);
        assert!(p.any_transitive_caller("request_access", |f| f.mentions_backpressure));
        assert!(!p.any_transitive_caller("request_access", |f| f.name == "nope"));
        assert!(p.has_prod_caller("request_access"));
        assert!(p.has_prod_caller("file")); // called by request_access
        assert!(!p.has_prod_caller("run")); // nothing calls the top fn
    }

    #[test]
    fn cycles_terminate() {
        let p = Project::new(vec![facts(
            "css-controller",
            "src/a.rs",
            "fn a(&self) { let n = self.x.decrypt_notification(id); b(); }\n\
             fn b(&self) { a(); }\n",
        )]);
        assert!(!p.appends_audit_transitively((0, 0)));
        assert!(!p.any_transitive_caller("a", |f| f.appends_audit));
    }

    #[test]
    fn tail_and_return_calls_propagate() {
        let f = facts(
            "css-core",
            "src/a.rs",
            "fn tail(&self) -> CssResult<u64> { self.pending.file(a, b) }\n\
             fn ret(&self) -> CssResult<u64> { return self.pending.file(a, b); }\n\
             fn swallowed(&self) { let _ = self.pending.file(a, b); }\n",
        );
        assert!(f.fns[0].filing_calls[0].propagated, "tail");
        assert!(f.fns[1].filing_calls[0].propagated, "return");
        assert!(!f.fns[2].filing_calls[0].propagated, "bound and dropped");
    }
}
