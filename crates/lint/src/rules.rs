//! The paper-derived invariant rules.
//!
//! Each rule is a named check with a fixed severity. File-scoped rules
//! see one [`SourceFile`] at a time; the layering rule sees the parsed
//! manifests of the whole workspace. See `DESIGN.md` §9 for the mapping
//! from each rule to the paper mechanism it encodes.

use crate::callgraph::{Project, FILING_CALLS, RELEASE_CALLS};
use crate::diag::{Finding, Severity};
use crate::manifest::Manifest;
use crate::source::{matching_brace, FnBody, SourceFile};
use crate::{flow, locks};

/// A named invariant check.
pub trait Rule {
    fn id(&self) -> &'static str;
    fn severity(&self) -> Severity;
    /// One-line description for `--list-rules` and the JSON report.
    fn description(&self) -> &'static str;
    /// Check one source file (no-op for project/workspace rules).
    fn check_file(&self, _file: &SourceFile, _out: &mut Vec<Finding>) {}
    /// Check the summarized project (call-graph scope; no-op for file
    /// rules). Runs over [`FnSummary`](crate::callgraph::FnSummary)
    /// facts, so it reruns cheaply from the incremental cache.
    fn check_project(&self, _project: &Project, _out: &mut Vec<Finding>) {}
    /// Check the workspace dependency graph (no-op for file rules).
    fn check_workspace(&self, _manifests: &[Manifest], _out: &mut Vec<Finding>) {}
}

/// Every shipped rule, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(DetailConfinement),
        Box::new(PermitProvenance),
        Box::new(AuditBeforeRelease),
        Box::new(IdentityTaint),
        Box::new(NoPanicHotPath),
        Box::new(LockAcrossIo),
        Box::new(ShardLockOrder),
        Box::new(UncheckedBackpressure),
        Box::new(TraceHygiene),
        Box::new(Layering),
    ]
}

fn finding(
    rule: &'static str,
    severity: Severity,
    file: &SourceFile,
    tok: usize,
    message: String,
) -> Finding {
    Finding {
        rule,
        severity,
        crate_name: file.crate_name.clone(),
        file: file.path.clone(),
        line: file.tokens.get(tok).map(|t| t.line).unwrap_or(0),
        message,
        waive_reason: None,
    }
}

// ---------------------------------------------------------------------------
// Rule 1: detail-confinement
// ---------------------------------------------------------------------------

/// Detail payloads never leave the producer's gateway until an
/// authorized request arrives (the paper's core architectural claim),
/// so the types that carry them must be unnameable in the event-sharing
/// middle layers — controller, bus, registry — and in the ops plane
/// (health), whose endpoints expose state to external scrapers.
pub struct DetailConfinement;

/// Types that hold unfiltered detail payloads at rest.
const CONFINED_TYPES: &[&str] = &["DetailMessage", "DetailStore"];
/// Crates that must never name them outside tests. The ops plane
/// (`css-health`) is confined too: an exposition endpoint that could
/// name a detail payload could leak it to any scraper.
const CONFINED_CRATES: &[&str] = &[
    "css-controller",
    "css-bus",
    "css-registry",
    "css-health",
    "css-blackbox",
    "css-chronicle",
];

impl Rule for DetailConfinement {
    fn id(&self) -> &'static str {
        "detail-confinement"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "detail-payload types must not appear in controller/bus/registry/health non-test code"
    }
    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !CONFINED_CRATES.contains(&file.crate_name.as_str()) {
            return;
        }
        for (i, tok) in file.tokens.iter().enumerate() {
            if !file.is_prod(i) {
                continue;
            }
            if CONFINED_TYPES.iter().any(|t| tok.is_ident(t)) {
                out.push(finding(
                    self.id(),
                    self.severity(),
                    file,
                    i,
                    format!(
                        "detail-payload type `{}` named in `{}`: details must stay \
                         behind the producer gateway (only the filtered \
                         `getResponse` interface may cross)",
                        tok.text, file.crate_name
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 2: permit-provenance
// ---------------------------------------------------------------------------

/// Definitions 3–4 make release decisions deny-by-default: a permit
/// exists only if an installed policy produced it. Constructing
/// `Decision::Permit { .. }` anywhere but `css-policy` would mint
/// permits without policy provenance, so elsewhere the variant may only
/// be pattern-matched.
pub struct PermitProvenance;

impl Rule for PermitProvenance {
    fn id(&self) -> &'static str {
        "permit-provenance"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "`Decision::Permit { .. }` may be constructed only inside css-policy"
    }
    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.crate_name == "css-policy" {
            return;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if !file.is_prod(i) {
                continue;
            }
            let is_path = toks[i].is_ident("Decision")
                && file.puncts(i + 1, "::")
                && toks.get(i + 3).is_some_and(|t| t.is_ident("Permit"));
            if !is_path {
                continue;
            }
            let Some(open) = toks.get(i + 4).filter(|t| t.is_punct('{')).map(|_| i + 4) else {
                continue; // bare path (e.g. a `use` import): not a struct expr
            };
            let close = matching_brace(toks, open);
            if is_permit_pattern(file, open, close) {
                continue;
            }
            out.push(finding(
                self.id(),
                self.severity(),
                file,
                i,
                format!(
                    "`Decision::Permit {{ .. }}` constructed outside css-policy (in `{}`): \
                     permits must originate from the PDP so deny-by-default \
                     (Defs. 3-4) cannot be bypassed",
                    file.crate_name
                ),
            ));
        }
    }
}

/// Classify `Decision::Permit { <open>..<close> }` as a pattern (match
/// arm, `if let`/`let else` binding, or `..` rest pattern) rather than a
/// struct expression.
fn is_permit_pattern(file: &SourceFile, _open: usize, close: usize) -> bool {
    let toks = &file.tokens;
    // A `..` rest pattern directly before the closing brace. A struct
    // *expression* can also contain `..base` (functional update), but
    // there the `..` is followed by the base expression, not `}`.
    if close >= 2 && file.puncts(close - 2, "..") {
        return true;
    }
    // `=>`: a match arm. `=` (not `==`): an `if let` / `let` binding.
    if file.puncts(close + 1, "=>") {
        return true;
    }
    if toks.get(close + 1).is_some_and(|t| t.is_punct('='))
        && !toks.get(close + 2).is_some_and(|t| t.is_punct('='))
    {
        return true;
    }
    // A match guard: `Decision::Permit { x } if cond =>`.
    if toks.get(close + 1).is_some_and(|t| t.is_ident("if")) {
        return true;
    }
    false
}

// ---------------------------------------------------------------------------
// Rule 3: audit-before-release
// ---------------------------------------------------------------------------

/// The Privacy Requirements Analysis requires every release to be
/// traceable: any function that rebuilds an identity-bearing
/// notification or pulls filtered details from a gateway must also
/// append an audit record — in its own body or (v2, call-graph
/// transitive) in a same-crate helper it calls, so refactoring the
/// append into `log_release()` cannot silently lose the obligation.
pub struct AuditBeforeRelease;

/// Crates where releases happen and the audit obligation applies.
const RELEASE_CRATES: &[&str] = &["css-controller", "css-gateway"];

impl Rule for AuditBeforeRelease {
    fn id(&self) -> &'static str {
        "audit-before-release"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "functions releasing notification identities or gateway details must append an audit record (directly or via a same-crate callee)"
    }
    fn check_project(&self, project: &Project, out: &mut Vec<Finding>) {
        for (fi, file) in project.files.iter().enumerate() {
            if !RELEASE_CRATES.contains(&file.crate_name.as_str()) {
                continue;
            }
            for (gi, f) in file.fns.iter().enumerate() {
                // A forwarding impl or the defining method itself (e.g.
                // a `get_response` trait impl delegating inward) is the
                // narrow interface, not a release site.
                if !f.is_prod
                    || RELEASE_CALLS.contains(&f.name.as_str())
                    || f.release_calls.is_empty()
                {
                    continue;
                }
                if project.appends_audit_transitively((fi, gi)) {
                    continue;
                }
                let site = &f.release_calls[0];
                out.push(Finding {
                    rule: self.id(),
                    severity: self.severity(),
                    crate_name: file.crate_name.clone(),
                    file: file.path.clone(),
                    line: site.line,
                    message: format!(
                        "fn `{}` calls `.{}(..)` but neither it nor any same-crate \
                         callee appends an audit record: every release must be \
                         traceable (PRA)",
                        f.name, site.callee
                    ),
                    waive_reason: None,
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 4: identity-taint
// ---------------------------------------------------------------------------

/// Detail confinement bans the *types*; this bans the *values*: an
/// identity-derived expression (fiscal code, person name fields,
/// decrypted notification material) must never flow into the trace,
/// metrics, broker, or ops planes — the brokers-can't-read-identities
/// guarantee the confidentiality-preserving pub/sub literature demands.
/// The dataflow engine lives in [`crate::flow`].
pub struct IdentityTaint;

impl Rule for IdentityTaint {
    fn id(&self) -> &'static str {
        "identity-taint"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "identity-derived values must not reach span attrs, metric names, bus publishes, or ops responses"
    }
    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        for body in &file.fns {
            flow::check_fn(file, body, self.id(), out);
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 5: no-panic-hot-path
// ---------------------------------------------------------------------------

/// A panic in the enforcement or storage path takes down the platform
/// mid-request; at millions of users that is an availability incident.
/// Non-test code in the hot crates must use `CssResult` error paths.
pub struct NoPanicHotPath;

/// Crates forming the request hot path.
const HOT_CRATES: &[&str] = &[
    "css-policy",
    "css-controller",
    "css-storage",
    "css-bus",
    "css-gateway",
];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

impl Rule for NoPanicHotPath {
    fn id(&self) -> &'static str {
        "no-panic-hot-path"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "no unwrap()/expect()/panic! in policy/controller/storage/bus/gateway non-test code"
    }
    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !HOT_CRATES.contains(&file.crate_name.as_str()) {
            return;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if !file.is_prod(i) {
                continue;
            }
            // `.unwrap()` — exactly, so `unwrap_or(..)` stays allowed.
            if toks[i].is_punct('.')
                && toks.get(i + 1).is_some_and(|t| t.is_ident("unwrap"))
                && file.puncts(i + 2, "()")
            {
                out.push(finding(
                    self.id(),
                    self.severity(),
                    file,
                    i + 1,
                    "`.unwrap()` in hot-path non-test code: return a `CssResult` error instead"
                        .into(),
                ));
            }
            // `.expect(` — method-call form only.
            if toks[i].is_punct('.')
                && toks.get(i + 1).is_some_and(|t| t.is_ident("expect"))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            {
                out.push(finding(
                    self.id(),
                    self.severity(),
                    file,
                    i + 1,
                    "`.expect(..)` in hot-path non-test code: return a `CssResult` error instead"
                        .into(),
                ));
            }
            // panic-family macros: `panic!`, `unreachable!`, ...
            if toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
                && PANIC_MACROS.iter().any(|m| toks[i].is_ident(m))
            {
                out.push(finding(
                    self.id(),
                    self.severity(),
                    file,
                    i,
                    format!(
                        "`{}!` in hot-path non-test code: restructure to make the state unrepresentable or return an error",
                        toks[i].text
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 6: lock-across-io
// ---------------------------------------------------------------------------

/// Holding a `parking_lot` guard across a storage-backend write stalls
/// every thread contending that lock for the duration of the disk
/// round-trip. Writes to the guarded resource itself are the point of
/// the lock and stay allowed; flagged is a guard on X held while
/// writing through some *other* path Y.
pub struct LockAcrossIo;

const GUARD_CALLS: &[&str] = &["lock", "read", "write"];
const IO_CALLS: &[&str] = &[
    "append",
    "append_batch",
    "persist",
    "put",
    "put_batch",
    "save",
    "save_all",
    "sync",
    "flush",
    "write_all",
];

impl Rule for LockAcrossIo {
    fn id(&self) -> &'static str {
        "lock-across-io"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn description(&self) -> &'static str {
        "a held lock guard should not span a storage write on an unrelated path"
    }
    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        for body in &file.fns {
            if !file.is_prod(body.open) {
                continue;
            }
            check_lock_across_io(self, file, body, out);
        }
    }
}

struct ActiveGuard {
    name: String,
    depth: usize,
    line: u32,
}

fn check_lock_across_io(
    rule: &LockAcrossIo,
    file: &SourceFile,
    body: &FnBody,
    out: &mut Vec<Finding>,
) {
    let toks = &file.tokens;
    let mut guards: Vec<ActiveGuard> = Vec::new();
    let mut depth = 0usize;
    let mut i = body.open;
    while i <= body.close {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            guards.retain(|g| g.depth <= depth);
        } else if t.is_ident("let") {
            // `let [mut] NAME = ... .lock();` — a guard iff the statement
            // *ends* with a guard-taking call (a temporary like
            // `repo.lock().load_all()?` is dropped at the `;`).
            let mut n = i + 1;
            if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
                n += 1;
            }
            if let Some(name) = file.ident(n) {
                // Find the end of the statement at paren depth 0.
                let mut paren = 0isize;
                let mut j = n + 1;
                while j <= body.close {
                    let tj = &toks[j];
                    if tj.is_punct('(') {
                        paren += 1;
                    } else if tj.is_punct(')') {
                        paren -= 1;
                    } else if tj.is_punct(';') && paren <= 0 {
                        break;
                    } else if tj.is_punct('{') && paren == 0 {
                        // A block expression initializer; too clever to
                        // track — skip this statement.
                        j = matching_brace(toks, j);
                    }
                    j += 1;
                }
                // Statement tail: `.` GUARD `(` `)` `;`
                if j >= 4
                    && toks.get(j).is_some_and(|t| t.is_punct(';'))
                    && file.puncts(j - 2, "()")
                    && toks
                        .get(j - 3)
                        .is_some_and(|t| GUARD_CALLS.iter().any(|g| t.is_ident(g)))
                    && toks.get(j - 4).is_some_and(|t| t.is_punct('.'))
                {
                    guards.push(ActiveGuard {
                        name: name.to_string(),
                        depth,
                        line: t.line,
                    });
                }
                i = j;
                continue;
            }
        } else if t.is_ident("drop") && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            if let Some(name) = file.ident(i + 2) {
                if toks.get(i + 3).is_some_and(|t| t.is_punct(')')) {
                    guards.retain(|g| g.name != name);
                }
            }
        } else if !guards.is_empty()
            && t.is_punct('.')
            && toks
                .get(i + 1)
                .is_some_and(|t| IO_CALLS.iter().any(|c| t.is_ident(c)))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            && file.is_prod(i)
        {
            // Receiver chain root: walk back over `ident . ident ...`.
            let root = chain_root(file, i);
            let through_guard = root
                .as_deref()
                .is_some_and(|r| guards.iter().any(|g| g.name == r));
            if !through_guard {
                let guard = &guards[guards.len() - 1];
                out.push(finding(
                    rule.id(),
                    rule.severity(),
                    file,
                    i + 1,
                    format!(
                        "storage write `.{}(..)` while lock guard `{}` (taken line {}) is held: \
                         move the write out of the critical section or write through the guard",
                        file.ident(i + 1).unwrap_or("?"),
                        guard.name,
                        guard.line
                    ),
                ));
            }
        }
        i += 1;
    }
}

/// The root identifier of a method-call chain ending at the `.` token
/// `dot` (e.g. `self.audit.append(` → `self`; `markers.flush(` →
/// `markers`). `None` when the chain starts with a call or index result.
fn chain_root(file: &SourceFile, dot: usize) -> Option<String> {
    let toks = &file.tokens;
    let mut i = dot;
    loop {
        // Expect ident before the dot.
        let prev = i.checked_sub(1)?;
        let name = file.ident(prev)?;
        if prev == 0 {
            return Some(name.to_string());
        }
        if toks[prev - 1].is_punct('.') {
            i = prev - 1;
            continue;
        }
        return Some(name.to_string());
    }
}

// ---------------------------------------------------------------------------
// Rule 7: shard-lock-order
// ---------------------------------------------------------------------------

/// The sharded data plane (PR 7) is deadlock-free because every
/// cross-shard path acquires one guard at a time or walks indices in
/// ascending order. This rule pins that argument mechanically; the
/// acquisition tracker lives in [`crate::locks`].
pub struct ShardLockOrder;

impl Rule for ShardLockOrder {
    fn id(&self) -> &'static str {
        "shard-lock-order"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "a held shard guard must not acquire another shard's lock except in ascending index order"
    }
    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        for body in &file.fns {
            locks::check_fn(file, body, self.id(), out);
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 8: unchecked-backpressure
// ---------------------------------------------------------------------------

/// The pending-access queue is bounded (PR 7): `PendingQueue::file` and
/// its `request_access` forwarders return `CssError::Backpressure` at
/// the high-water mark. A production caller that neither matches that
/// variant nor propagates to a caller that does silently drops the
/// queue-full signal — the backlog becomes invisible exactly when it
/// matters. Boundary APIs (the filing call propagated outward, with no
/// production caller yet) are exempt: their obligation transfers to
/// whoever calls them.
pub struct UncheckedBackpressure;

impl Rule for UncheckedBackpressure {
    fn id(&self) -> &'static str {
        "unchecked-backpressure"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn description(&self) -> &'static str {
        "pending-queue filings must handle or propagate `CssError::Backpressure`"
    }
    fn check_project(&self, project: &Project, out: &mut Vec<Finding>) {
        for file in &project.files {
            for f in &file.fns {
                if !f.is_prod
                    || FILING_CALLS.contains(&f.name.as_str())
                    || f.filing_calls.is_empty()
                    || f.mentions_backpressure
                    || project.any_transitive_caller(&f.name, |c| c.mentions_backpressure)
                {
                    continue;
                }
                for site in &f.filing_calls {
                    if site.propagated && !project.has_prod_caller(&f.name) {
                        continue; // boundary API: the obligation transfers
                    }
                    out.push(Finding {
                        rule: self.id(),
                        severity: self.severity(),
                        crate_name: file.crate_name.clone(),
                        file: file.path.clone(),
                        line: site.line,
                        message: format!(
                            "fn `{}` files into the bounded pending queue via `.{}(..)` \
                             but neither it nor any production caller matches \
                             `CssError::Backpressure`: handle queue-full or propagate \
                             it to a caller that does",
                            f.name, site.callee
                        ),
                        waive_reason: None,
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 9: trace-hygiene
// ---------------------------------------------------------------------------

/// Spans travel to exporters and dashboards, so their attributes must
/// stay privacy-safe by construction: outside `css-trace` itself, span
/// attributes may only be minted through the closed `SpanAttr`
/// constructor set (opaque ids, enum codes, flags — never free-form
/// strings that could smuggle a name, fiscal code, or decrypted field
/// into a trace), and the raw `AttrValue` payload type must not be
/// named at all.
pub struct TraceHygiene;

/// The closed constructor set of `SpanAttr`.
const SPAN_ATTR_CONSTRUCTORS: &[&str] = &[
    "event",
    "event_type",
    "actor",
    "purpose",
    "decision",
    "stage",
    "cache_hit",
];

impl Rule for TraceHygiene {
    fn id(&self) -> &'static str {
        "trace-hygiene"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "span attributes only via the closed `SpanAttr` constructors; `AttrValue` stays inside css-trace"
    }
    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.crate_name == "css-trace" {
            return;
        }
        let toks = &file.tokens;
        for (i, tok) in toks.iter().enumerate() {
            if !file.is_prod(i) {
                continue;
            }
            if tok.is_ident("AttrValue") {
                out.push(finding(
                    self.id(),
                    self.severity(),
                    file,
                    i,
                    format!(
                        "raw span payload type `AttrValue` named in `{}`: span \
                         attributes must go through the closed `SpanAttr` \
                         constructors so identifying values stay \
                         unrepresentable in traces",
                        file.crate_name
                    ),
                ));
                continue;
            }
            if tok.is_ident("SpanAttr") && file.puncts(i + 1, "::") {
                if let Some(name) = file.ident(i + 3) {
                    if !SPAN_ATTR_CONSTRUCTORS.contains(&name) {
                        out.push(finding(
                            self.id(),
                            self.severity(),
                            file,
                            i,
                            format!(
                                "`SpanAttr::{name}` is outside the closed constructor \
                                 set ({}): traces may carry only opaque ids, enum \
                                 codes and flags",
                                SPAN_ATTR_CONSTRUCTORS.join(", ")
                            ),
                        ));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 10: layering
// ---------------------------------------------------------------------------

/// The crate DAG is the privacy architecture: types at the bottom,
/// enforcement in the middle, assembly on top. An upward dependency
/// (say, css-bus pulling in css-gateway) would let detail payloads leak
/// into the shared event plane by construction.
pub struct Layering;

/// Crate → layer. A dependency must live on a *strictly lower* layer.
const LAYERS: &[(&str, u8)] = &[
    ("css-types", 0),
    ("css-xml", 1),
    ("css-crypto", 1),
    ("css-telemetry", 1),
    ("css-trace", 2),
    ("css-storage", 2),
    ("css-event", 2),
    ("css-policy", 3),
    ("css-bus", 3),
    ("css-registry", 3),
    ("css-audit", 3),
    ("css-gateway", 3),
    ("css-monitor", 3),
    ("css-health", 3),
    ("css-blackbox", 3),
    ("css-chronicle", 3),
    ("css-controller", 4),
    ("css-core", 5),
    ("css-sim", 6),
    ("css-lint", 6),
    ("css-bench", 7),
    ("css", 7),
];

/// Offline stand-ins for external crates: allowed everywhere, must
/// themselves depend on nothing.
const COMPAT_SHIMS: &[&str] = &["rand", "proptest", "criterion", "parking_lot"];

fn layer_of(name: &str) -> Option<u8> {
    LAYERS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, l)| *l)
        .or_else(|| COMPAT_SHIMS.contains(&name).then_some(0))
}

impl Rule for Layering {
    fn id(&self) -> &'static str {
        "layering"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "crate dependencies must point strictly down the layer stack; compat shims depend on nothing"
    }
    fn check_workspace(&self, manifests: &[Manifest], out: &mut Vec<Finding>) {
        let mut report = |m: &Manifest, message: String| {
            out.push(Finding {
                rule: self.id(),
                severity: self.severity(),
                crate_name: m.name.clone(),
                file: format!("{}/Cargo.toml", m.dir),
                line: 0,
                message,
                waive_reason: None,
            });
        };
        let member_names: Vec<&str> = manifests.iter().map(|m| m.name.as_str()).collect();
        for m in manifests {
            if m.name.is_empty() {
                continue; // virtual manifest
            }
            if COMPAT_SHIMS.contains(&m.name.as_str()) {
                // Shims stand in for external crates: they may lean on
                // each other (proptest uses the rand shim) but must
                // never reach into the platform.
                for dep in m.deps.iter().chain(m.dev_deps.iter()) {
                    if !COMPAT_SHIMS.contains(&dep.as_str()) {
                        report(
                            m,
                            format!(
                                "compat shim `{}` must not depend on platform crates, found `{dep}`",
                                m.name
                            ),
                        );
                    }
                }
                continue;
            }
            let Some(own_layer) = layer_of(&m.name) else {
                report(
                    m,
                    format!(
                        "crate `{}` is not in the layer map: assign it a layer in \
                         css-lint's layering rule before depending on it",
                        m.name
                    ),
                );
                continue;
            };
            // Only `[dependencies]` constrain the layering; dev-deps may
            // reach across for tests (they cannot create runtime cycles).
            for dep in &m.deps {
                if !member_names.contains(&dep.as_str()) {
                    continue; // external (none exist offline, but be safe)
                }
                let Some(dep_layer) = layer_of(dep) else {
                    continue; // reported on the dep's own manifest
                };
                if COMPAT_SHIMS.contains(&dep.as_str()) {
                    continue; // shims are allowed everywhere
                }
                if dep_layer >= own_layer {
                    report(
                        m,
                        format!(
                            "`{}` (layer {}) depends on `{}` (layer {}): dependencies \
                             must point strictly down the stack",
                            m.name, own_layer, dep, dep_layer
                        ),
                    );
                }
            }
            // The named paper constraint, spelled out even though the
            // layer map implies it: the controller (PEP/PDP plane) must
            // not depend on assembly or simulation.
            if m.name == "css-controller" {
                for dep in m.deps.iter().chain(m.dev_deps.iter()) {
                    if dep == "css-core" || dep == "css-sim" {
                        report(m, format!("css-controller must never depend on `{dep}`"));
                    }
                }
            }
        }
    }
}
