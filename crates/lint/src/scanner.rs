//! A hand-rolled Rust token scanner.
//!
//! The lint rules reason about identifier and punctuation sequences, so
//! the scanner's job is to produce those *correctly*: everything inside
//! line comments, nested block comments, string literals, raw strings,
//! byte strings and char literals must never surface as a token —
//! otherwise a forbidden name quoted in a doc comment would trip a rule.
//! Line comments are kept separately because inline waivers
//! (`// css-lint: allow(<rule>): <reason>`) live in them.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `Decision`, `unwrap`, ...).
    Ident,
    /// A single punctuation character (`{`, `:`, `.`, ...). Composite
    /// operators (`::`, `=>`, `..`) appear as consecutive tokens.
    Punct,
    /// A numeric literal (kept so adjacency checks stay honest).
    Number,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// A `//` comment with its source line (1-based). Block comments are
/// discarded — waivers must be line comments, adjacent to the code they
/// waive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineComment {
    pub text: String,
    pub line: u32,
}

/// The scan result: significant tokens plus the line comments.
#[derive(Debug, Default)]
pub struct Scan {
    pub tokens: Vec<Token>,
    pub comments: Vec<LineComment>,
}

/// Tokenize `src`, skipping comment and literal interiors.
pub fn scan(src: &str) -> Scan {
    let bytes = src.as_bytes();
    let mut out = Scan::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Advance over `n` bytes, counting newlines.
    macro_rules! advance {
        ($n:expr) => {{
            let n = $n;
            for k in 0..n {
                if bytes.get(i + k) == Some(&b'\n') {
                    line += 1;
                }
            }
            i += n;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;

        // Whitespace.
        if c.is_ascii_whitespace() {
            advance!(1);
            continue;
        }

        // Line comment (also catches doc comments `///` and `//!`).
        if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            let start = i;
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            out.comments.push(LineComment {
                text: src[start..i].to_string(),
                line,
            });
            continue; // the newline itself is consumed next iteration
        }

        // Block comment, possibly nested.
        if c == '/' && bytes.get(i + 1) == Some(&b'*') {
            advance!(2);
            let mut depth = 1usize;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    advance!(2);
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    advance!(2);
                } else {
                    advance!(1);
                }
            }
            continue;
        }

        // Identifier or keyword — with special-casing for the string
        // prefixes `r"`, `r#"`, `b"`, `br"`, `br#"` which are *not*
        // identifiers.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = &src[start..i];
            let next = bytes.get(i).copied();
            let raw = matches!(word, "r" | "br") && matches!(next, Some(b'"') | Some(b'#'));
            let plain_byte = word == "b" && next == Some(b'"');
            if raw {
                // Raw (byte) string: r##"..."## — count the hashes.
                let mut hashes = 0usize;
                while bytes.get(i + hashes) == Some(&b'#') {
                    hashes += 1;
                }
                if bytes.get(i + hashes) == Some(&b'"') {
                    advance!(hashes + 1);
                    // Scan for `"` followed by `hashes` hashes.
                    'raw: while i < bytes.len() {
                        if bytes[i] == b'"' {
                            let mut ok = true;
                            for h in 0..hashes {
                                if bytes.get(i + 1 + h) != Some(&b'#') {
                                    ok = false;
                                    break;
                                }
                            }
                            if ok {
                                advance!(1 + hashes);
                                break 'raw;
                            }
                        }
                        advance!(1);
                    }
                    continue;
                }
                // `r#ident` raw identifier: fall through, emit as ident.
                let id_start = i + hashes;
                if hashes == 1
                    && bytes
                        .get(id_start)
                        .is_some_and(|b| b.is_ascii_alphabetic() || *b == b'_')
                {
                    let mut j = id_start;
                    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_')
                    {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Ident,
                        text: src[id_start..j].to_string(),
                        line,
                    });
                    advance!(j - i);
                    continue;
                }
            }
            if plain_byte {
                // b"..." — scan as a normal string below by not emitting
                // the prefix; the `"` branch handles the body.
                continue;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: word.to_string(),
                line,
            });
            continue;
        }

        // Numeric literal (digits, hex/bin/oct, suffixes, exponents).
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < bytes.len() {
                let b = bytes[i];
                if b.is_ascii_alphanumeric() || b == b'_' {
                    i += 1;
                } else if b == b'.'
                    && bytes.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                    && bytes.get(i.wrapping_sub(1)) != Some(&b'.')
                {
                    // A decimal point, not a `..` range.
                    i += 1;
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Number,
                text: src[start..i].to_string(),
                line,
            });
            continue;
        }

        // String literal with escapes.
        if c == '"' {
            advance!(1);
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => advance!(2),
                    b'"' => {
                        advance!(1);
                        break;
                    }
                    _ => advance!(1),
                }
            }
            continue;
        }

        // `'` — lifetime, loop label, or char literal.
        if c == '\'' {
            let one = bytes.get(i + 1).copied();
            let two = bytes.get(i + 2).copied();
            let is_lifetime =
                one.is_some_and(|b| b.is_ascii_alphabetic() || b == b'_') && two != Some(b'\'');
            if is_lifetime {
                advance!(1);
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    advance!(1);
                }
            } else {
                // Char literal: 'x', '\n', '\u{1F600}'.
                advance!(1);
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => advance!(2),
                        b'\'' => {
                            advance!(1);
                            break;
                        }
                        _ => advance!(1),
                    }
                }
            }
            continue;
        }

        // Everything else: one punctuation character.
        let ch_len = c.len_utf8();
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: src[i..i + ch_len].to_string(),
            line,
        });
        advance!(ch_len);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn skips_line_and_block_comments() {
        let src = "let a = 1; // DetailMessage here\n/* DetailMessage /* nested */ too */ let b;";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "a", "let", "b"]);
    }

    #[test]
    fn keeps_line_comments_for_waivers() {
        let s = scan("x(); // css-lint: allow(r): why\ny();");
        assert_eq!(s.comments.len(), 1);
        assert_eq!(s.comments[0].line, 1);
        assert!(s.comments[0].text.contains("css-lint"));
    }

    #[test]
    fn skips_string_interiors() {
        let ids = idents(r#"let s = "DetailMessage \" still inside"; done"#);
        assert_eq!(ids, vec!["let", "s", "done"]);
    }

    #[test]
    fn skips_raw_and_byte_strings() {
        let src =
            "let a = r#\"DetailMessage \" quote\"#; let b = br\"unwrap\"; let c = b\"panic\"; end";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "a", "let", "b", "let", "c", "end"]);
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        let ids = idents("fn r#match() {}");
        assert_eq!(ids, vec!["fn", "match"]);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let ids = idents("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        assert!(ids.contains(&"str".to_string()));
        // Nothing from inside the char literals leaked, and the
        // lifetime name is not an ident token.
        assert!(!ids.contains(&"x'".to_string()));
    }

    #[test]
    fn tracks_line_numbers() {
        let s = scan("a\nb\n\nc");
        let lines: Vec<u32> = s.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn composite_punct_appears_as_consecutive_tokens() {
        let s = scan("A::B { .. } =>");
        let texts: Vec<&str> = s.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["A", ":", ":", "B", "{", ".", ".", "}", "=", ">"]
        );
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let s = scan("for i in 1..5 {}");
        let texts: Vec<&str> = s.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["for", "i", "in", "1", ".", ".", "5", "{", "}"]);
    }
}
