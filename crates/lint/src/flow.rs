//! Intraprocedural identity-taint dataflow.
//!
//! The paper's detail-confinement claim is type-shaped: the broker and
//! ops planes cannot *name* detail payload types. This pass closes the
//! value-shaped gap: a plaintext fiscal code read out of a
//! `PersonIdentity` can flow through locals, `format!`, and helper
//! chains into a span attribute, metric name, bus publish, or ops
//! response without ever naming a confined type. The engine walks one
//! fn body's token stream in source order, tracking which local
//! bindings are derived from identity **sources**, erasing taint at
//! **sanitizers** (sealing/HMAC/aggregation), and reporting when a
//! tainted expression reaches a **sink**.
//!
//! Sources: `.fiscal_code` field reads; `.name`/`.surname` reads whose
//! receiver chain mentions a person/identity; returns of
//! `.decrypt_notification(..)`, `.unseal(..)` and
//! `PersonIdentity::from_bytes(..)`.
//!
//! Sanitizers: `seal`, `hmac_sha256`, `sha256`, `derive_tag_key`,
//! `person_tag`, `len`, `is_empty`, `count` — calls whose result is a
//! ciphertext, keyed tag, or cardinality, none of which identify.
//!
//! Sinks: `SpanAttr::<ctor>(..)` arguments (traces), `.counter(` /
//! `.gauge(` / `.histogram(` metric names (telemetry), `.publish(` /
//! `.publish_opts(` / `.dedup_key(` (broker plane), `respond(..)` (the
//! ops HTTP server).
//!
//! The analysis is flow-sensitive (a rebind clears taint), scope-aware
//! (bindings die with their block; shadowing is honored), and
//! deliberately intraprocedural — cross-fn flows are the call-graph
//! rules' job, and keeping this pass local keeps it fast enough to run
//! per-file under the incremental cache.

use crate::diag::{Finding, Severity};
use crate::source::{matching_brace, matching_paren, FnBody, SourceFile};

/// Field reads that are identifying wherever they appear.
const SOURCE_FIELDS_ALWAYS: &[&str] = &["fiscal_code"];
/// Field reads that are identifying when the receiver chain mentions a
/// person/identity (bare `.name` is too common — XML nodes, docs).
const SOURCE_FIELDS_PERSONAL: &[&str] = &["name", "surname"];
/// Method calls whose return value is decrypted identity material.
const SOURCE_CALLS: &[&str] = &["decrypt_notification", "unseal"];
/// Calls that erase taint: ciphertexts, keyed tags, cardinalities.
const SANITIZERS: &[&str] = &[
    "seal",
    "hmac_sha256",
    "sha256",
    "derive_tag_key",
    "person_tag",
    "len",
    "is_empty",
    "count",
];
/// Method-call sinks: `.<name>(` args must be taint-free.
const SINK_METHODS: &[(&str, &str)] = &[
    ("counter", "metric name"),
    ("gauge", "metric name"),
    ("histogram", "metric name"),
    ("publish", "bus publish"),
    ("publish_opts", "bus publish"),
    ("dedup_key", "publish dedup key"),
    ("capture", "incident bundle capture"),
];
/// Pattern-binding keywords that are not binding names themselves.
const PATTERN_KEYWORDS: &[&str] = &["mut", "ref", "box"];

/// One tracked binding: name, block depth it was bound at, and the
/// taint origin (`None` = clean; a clean rebind shadows an earlier
/// tainted one).
struct Binding {
    name: String,
    depth: usize,
    origin: Option<String>,
}

/// A binding parsed out of a `let`/assignment/`for`, to be applied once
/// the walk passes the end of its initializer (so `let x = x.len();`
/// reads the *old* `x`).
struct PendingBind {
    apply_after: usize,
    names: Vec<String>,
    depth: usize,
    origin: Option<String>,
}

/// Run the taint walk over one fn body, pushing findings for every
/// tainted expression that reaches a sink. Nested fns are skipped (they
/// are checked through their own [`FnBody`]).
pub fn check_fn(file: &SourceFile, body: &FnBody, rule_id: &'static str, out: &mut Vec<Finding>) {
    if !file.is_prod(body.open) {
        return;
    }
    let toks = &file.tokens;
    let mut env: Vec<Binding> = Vec::new();
    let mut pending: Vec<PendingBind> = Vec::new();
    let mut depth = 0usize;
    let mut i = body.open;
    while i <= body.close {
        // Apply bindings whose initializer the walk has passed.
        let mut k = 0;
        while k < pending.len() {
            if i > pending[k].apply_after {
                let b = pending.remove(k);
                for name in b.names {
                    env.push(Binding {
                        name,
                        depth: b.depth,
                        origin: b.origin.clone(),
                    });
                }
            } else {
                k += 1;
            }
        }

        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            env.retain(|b| b.depth <= depth);
        } else if t.is_ident("fn") && i > body.open {
            // A nested fn: skip its body entirely (it has its own walk).
            if let Some(open) = find_fn_open(file, i, body.close) {
                i = matching_brace(toks, open);
                continue;
            }
        } else if t.is_ident("let") {
            if let Some(b) = parse_let(file, body, i, depth, &env) {
                pending.push(b);
            }
        } else if t.is_ident("for") {
            if let Some(b) = parse_for(file, body, i, depth, &env) {
                pending.push(b);
            }
        } else if is_assignment(file, body, i) {
            let end = stmt_end(file, body, i + 2);
            let origin = expr_taint(file, i + 2, end, &env);
            pending.push(PendingBind {
                apply_after: end,
                names: vec![t.text.clone()],
                depth,
                origin,
            });
        }

        // Sink detection runs at every position, including inside
        // initializers (a tainted sink call can be an initializer).
        if let Some((args_open, sink_desc)) = sink_at(file, i) {
            let close = matching_paren(toks, args_open);
            if close > args_open + 1 {
                if let Some(origin) = expr_taint(file, args_open + 1, close - 1, &env) {
                    out.push(Finding {
                        rule: rule_id,
                        severity: Severity::Error,
                        crate_name: file.crate_name.clone(),
                        file: file.path.clone(),
                        line: t.line,
                        message: format!(
                            "fn `{}`: {} flows into {} — identifying data must stay out of \
                             the trace/metrics/broker/ops planes (detail confinement bans \
                             the types; identity-taint bans the values)",
                            body.name, origin, sink_desc
                        ),
                        waive_reason: None,
                    });
                }
            }
        }
        i += 1;
    }
}

/// `fn` at `at`: find its body's `{` (None for a bodiless declaration).
fn find_fn_open(file: &SourceFile, at: usize, limit: usize) -> Option<usize> {
    let toks = &file.tokens;
    let mut paren = 0isize;
    let mut k = at + 1;
    while k <= limit {
        let t = &toks[k];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if paren == 0 {
            if t.is_punct(';') {
                return None;
            }
            if t.is_punct('{') {
                return Some(k);
            }
        }
        k += 1;
    }
    None
}

/// Statement end: index of the `;` at paren/bracket depth zero (blocks
/// are skipped), or of the `else` keyword (let-else), or `limit`.
fn stmt_end(file: &SourceFile, body: &FnBody, from: usize) -> usize {
    let toks = &file.tokens;
    let mut paren = 0isize;
    let mut k = from;
    while k <= body.close {
        let t = &toks[k];
        if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if paren == 0 {
            if t.is_punct(';') {
                return k;
            }
            if t.is_ident("else") {
                return k;
            }
            if t.is_punct('{') {
                k = matching_brace(toks, k);
            }
        }
        k += 1;
    }
    body.close
}

/// Parse `let PAT[: TYPE] = INIT ...` starting at the `let` token.
fn parse_let(
    file: &SourceFile,
    body: &FnBody,
    at: usize,
    depth: usize,
    env: &[Binding],
) -> Option<PendingBind> {
    let toks = &file.tokens;
    // Collect bound names until `=` (skipping a `: TYPE` annotation).
    let mut names: Vec<String> = Vec::new();
    let mut k = at + 1;
    let mut in_type = false;
    let mut eq_at: Option<usize> = None;
    let mut angle = 0isize;
    while k <= body.close {
        let t = &toks[k];
        if t.is_punct(';') {
            return None; // `let x;` — no initializer, nothing to taint
        }
        if t.is_punct('=') && !toks.get(k + 1).is_some_and(|n| n.is_punct('=')) && angle <= 0 {
            eq_at = Some(k);
            break;
        }
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.is_punct(':') {
            if file.puncts(k, "::") {
                k += 2;
                continue; // a path separator inside the pattern/type
            }
            in_type = true;
        } else if !in_type && t.kind == crate::scanner::TokenKind::Ident {
            let text = t.text.as_str();
            let is_keyword = PATTERN_KEYWORDS.contains(&text);
            // Uppercase-initial idents are constructors/types, not binds.
            let is_ctor = text.chars().next().is_some_and(|c| c.is_ascii_uppercase());
            if !is_keyword && !is_ctor {
                names.push(t.text.clone());
            }
        }
        k += 1;
    }
    let eq = eq_at?;
    // Is this an `if let` / `while let` (condition, ends at `{`)?
    let cond = at > 0 && (toks[at - 1].is_ident("if") || toks[at - 1].is_ident("while"));
    let end = if cond {
        // Initializer ends at the `{` opening the conditional's block.
        let mut paren = 0isize;
        let mut j = eq + 1;
        loop {
            if j >= body.close {
                break j;
            }
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                paren += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                paren -= 1;
            } else if t.is_punct('{') && paren == 0 {
                break j - 1;
            }
            j += 1;
        }
    } else {
        stmt_end(file, body, eq + 1)
    };
    if names.is_empty() {
        return None;
    }
    let origin = expr_taint(file, eq + 1, end, env);
    Some(PendingBind {
        apply_after: end,
        names,
        depth,
        origin,
    })
}

/// Parse `for PAT in EXPR {`: the pattern is tainted iff EXPR is.
fn parse_for(
    file: &SourceFile,
    body: &FnBody,
    at: usize,
    depth: usize,
    env: &[Binding],
) -> Option<PendingBind> {
    let toks = &file.tokens;
    let mut names: Vec<String> = Vec::new();
    let mut k = at + 1;
    while k <= body.close && !toks[k].is_ident("in") {
        let t = &toks[k];
        if t.kind == crate::scanner::TokenKind::Ident {
            let is_ctor = t
                .text
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_uppercase());
            if !is_ctor && !PATTERN_KEYWORDS.contains(&t.text.as_str()) {
                names.push(t.text.clone());
            }
        }
        if t.is_punct('{') {
            return None; // malformed / not a for loop we understand
        }
        k += 1;
    }
    let in_at = k;
    // EXPR runs to the loop body's `{` at paren depth zero.
    let mut paren = 0isize;
    let mut j = in_at + 1;
    let end = loop {
        if j >= body.close {
            break j;
        }
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if t.is_punct('{') && paren == 0 {
            break j - 1;
        }
        j += 1;
    };
    if names.is_empty() {
        return None;
    }
    let origin = expr_taint(file, in_at + 1, end, env);
    Some(PendingBind {
        apply_after: end,
        names,
        depth,
        origin,
    })
}

/// `x = expr;` at statement level (not `==`, not `let`, not a field).
fn is_assignment(file: &SourceFile, body: &FnBody, i: usize) -> bool {
    let toks = &file.tokens;
    if file.ident(i).is_none() {
        return false;
    }
    if !toks.get(i + 1).is_some_and(|t| t.is_punct('=')) {
        return false;
    }
    if toks.get(i + 2).is_some_and(|t| t.is_punct('=')) {
        return false; // `==`
    }
    if i == body.open {
        return false;
    }
    let prev = &toks[i - 1];
    prev.is_punct(';') || prev.is_punct('{') || prev.is_punct('}')
}

/// Whether the receiver chain before the `.` at `dot` mentions a
/// person/identity component (`person.name`, `self.identity.surname`).
fn chain_mentions_identity(file: &SourceFile, dot: usize) -> bool {
    let toks = &file.tokens;
    let mut k = dot;
    loop {
        let Some(prev) = k.checked_sub(1) else {
            return false;
        };
        let Some(name) = file.ident(prev) else {
            return false; // chain starts at a call/index result: unknown
        };
        let lower = name.to_ascii_lowercase();
        if lower.contains("person") || lower.contains("identit") {
            return true;
        }
        if prev == 0 || !toks[prev - 1].is_punct('.') {
            return false;
        }
        k = prev - 1;
    }
}

/// Scan `[a, b]` for a taint source, honoring sanitizer calls (their
/// argument spans are skipped) and the current environment. Returns a
/// human-readable origin description.
fn expr_taint(file: &SourceFile, a: usize, b: usize, env: &[Binding]) -> Option<String> {
    let toks = &file.tokens;
    let is_tainted = |name: &str| -> Option<&str> {
        env.iter()
            .rev()
            .find(|bind| bind.name == name)
            .and_then(|bind| bind.origin.as_deref())
    };
    let mut j = a;
    while j <= b && j < toks.len() {
        let t = &toks[j];
        // Sanitizer call: skip its argument span.
        if t.kind == crate::scanner::TokenKind::Ident
            && SANITIZERS.contains(&t.text.as_str())
            && toks.get(j + 1).is_some_and(|n| n.is_punct('('))
        {
            j = matching_paren(toks, j + 1) + 1;
            continue;
        }
        if t.is_punct('.') {
            if let Some(fld) = file.ident(j + 1) {
                let is_call = toks.get(j + 2).is_some_and(|n| n.is_punct('('));
                let source = if SOURCE_FIELDS_ALWAYS.contains(&fld) && !is_call {
                    Some("a plaintext fiscal code (`.fiscal_code`)".to_string())
                } else if SOURCE_FIELDS_PERSONAL.contains(&fld)
                    && !is_call
                    && chain_mentions_identity(file, j)
                {
                    Some(format!("a person `.{fld}` field"))
                } else if SOURCE_CALLS.contains(&fld) && is_call {
                    Some(format!("the decrypted return of `.{fld}(..)`"))
                } else {
                    None
                };
                if let Some(origin) = source {
                    // `.fiscal_code.len()` — a chained sanitizer makes
                    // the expression a cardinality/tag, not an identity.
                    let after = if is_call {
                        matching_paren(toks, j + 2) + 1
                    } else {
                        j + 2
                    };
                    if let Some(next) = sanitizer_chain_end(file, after) {
                        j = next;
                        continue;
                    }
                    return Some(origin);
                }
            }
        }
        if t.kind == crate::scanner::TokenKind::Ident {
            if t.is_ident("PersonIdentity")
                && file.puncts(j + 1, "::")
                && file.ident(j + 3) == Some("from_bytes")
            {
                return Some("the decoded return of `PersonIdentity::from_bytes(..)`".into());
            }
            // A tainted local — but `.name` field positions don't count.
            let is_field_pos = j > 0 && toks[j - 1].is_punct('.');
            if !is_field_pos {
                if let Some(origin) = is_tainted(&t.text) {
                    if let Some(next) = sanitizer_chain_end(file, j + 1) {
                        j = next; // `x.len()` — sanitized use of a tainted local
                        continue;
                    }
                    return Some(format!("local `{}` (tainted by {origin})", t.text));
                }
            }
        }
        j += 1;
    }
    None
}

/// If the tokens at `at` are `.sanitizer(..)`, return the index just
/// past the call's closing paren (the chained result is sanitized).
fn sanitizer_chain_end(file: &SourceFile, at: usize) -> Option<usize> {
    let toks = &file.tokens;
    if !toks.get(at).is_some_and(|t| t.is_punct('.')) {
        return None;
    }
    let name = file.ident(at + 1)?;
    if !SANITIZERS.contains(&name) {
        return None;
    }
    if !toks.get(at + 2).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    Some(matching_paren(toks, at + 2) + 1)
}

/// A sink whose argument list opens at the returned index.
fn sink_at(file: &SourceFile, i: usize) -> Option<(usize, String)> {
    let toks = &file.tokens;
    let t = toks.get(i)?;
    if !file.is_prod(i) {
        return None;
    }
    // `SpanAttr::<ctor>(` — trace-plane attribute payloads.
    if t.is_ident("SpanAttr") && file.puncts(i + 1, "::") {
        if let Some(ctor) = file.ident(i + 3) {
            if toks.get(i + 4).is_some_and(|n| n.is_punct('(')) {
                return Some((i + 4, format!("span attribute `SpanAttr::{ctor}`")));
            }
        }
    }
    // `.counter(` / `.publish(` / ... method sinks.
    if t.is_punct('.') {
        if let Some(name) = file.ident(i + 1) {
            if toks.get(i + 2).is_some_and(|n| n.is_punct('(')) {
                if let Some((_, desc)) = SINK_METHODS.iter().find(|(m, _)| *m == name) {
                    return Some((i + 2, format!("{desc} `.{name}(..)`")));
                }
            }
        }
    }
    // `respond(` — the ops-plane HTTP response writer.
    if t.is_ident("respond")
        && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        && !(i > 0 && toks[i - 1].is_ident("fn"))
    {
        return Some((i + 1, "an ops-plane response (`respond(..)`)".to_string()));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileRole;

    fn taint_findings(src: &str) -> Vec<Finding> {
        let file = SourceFile::parse("css-controller", "src/x.rs", FileRole::Production, src);
        let mut out = Vec::new();
        for body in &file.fns {
            check_fn(&file, body, "identity-taint", &mut out);
        }
        out
    }

    #[test]
    fn fiscal_code_into_span_attr_fires() {
        let hits = taint_findings(
            "fn f(&self, p: &PersonIdentity) {\n\
                 let code = p.fiscal_code.clone();\n\
                 span.attr(SpanAttr::actor(code));\n\
             }",
        );
        assert_eq!(hits.len(), 1, "{hits:#?}");
        assert!(hits[0].message.contains("fiscal code"));
        assert!(hits[0].message.contains("SpanAttr::actor"));
    }

    #[test]
    fn sanitized_value_is_clean() {
        let hits = taint_findings(
            "fn f(&self, p: &PersonIdentity) {\n\
                 let tag = hmac_sha256(&self.key, p.fiscal_code.as_bytes());\n\
                 span.attr(SpanAttr::actor(tag));\n\
                 registry.counter(&format!(\"n{}\", p.fiscal_code.len()));\n\
             }",
        );
        assert!(hits.is_empty(), "{hits:#?}");
    }

    #[test]
    fn rebind_clears_taint_and_shadowing_is_scoped() {
        let hits = taint_findings(
            "fn f(&self, p: &PersonIdentity) {\n\
                 let mut x = p.fiscal_code.clone();\n\
                 x = String::new();\n\
                 registry.counter(&x);\n\
                 {\n\
                     let y = p.fiscal_code.clone();\n\
                 }\n\
                 registry.gauge(&y);\n\
             }",
        );
        assert!(hits.is_empty(), "rebind + block scoping: {hits:#?}");
    }

    #[test]
    fn shadowed_let_reads_the_old_binding() {
        // `let x = x.len()` reads the tainted old x but binds clean.
        let hits = taint_findings(
            "fn f(&self, p: &PersonIdentity) {\n\
                 let x = p.fiscal_code.clone();\n\
                 let x = x.len();\n\
                 registry.counter(&format!(\"len{x}\"));\n\
             }",
        );
        assert!(hits.is_empty(), "{hits:#?}");
    }

    #[test]
    fn person_name_needs_identity_chain() {
        let fire = taint_findings(
            "fn f(&self, n: &Notification) {\n\
                 let who = n.person.name.clone();\n\
                 bus.dedup_key(&who);\n\
             }",
        );
        assert_eq!(fire.len(), 1, "{fire:#?}");
        let clean = taint_findings(
            "fn g(&self, doc: &Document) {\n\
                 let tag = doc.name.clone();\n\
                 registry.counter(&tag);\n\
             }",
        );
        assert!(clean.is_empty(), "XML node names are not identities");
    }

    #[test]
    fn decrypt_return_taints_through_let_else_and_for() {
        let hits = taint_findings(
            "fn f(&self) {\n\
                 let Ok(note) = self.index.decrypt_notification(id) else {\n\
                     return;\n\
                 };\n\
                 for part in note.parts() {\n\
                     registry.histogram(&part);\n\
                 }\n\
             }",
        );
        assert_eq!(hits.len(), 1, "let-else bind then for-loop: {hits:#?}");
    }

    #[test]
    fn closure_capturing_tainted_local_fires() {
        let hits = taint_findings(
            "fn f(&self, p: &PersonIdentity) {\n\
                 let code = p.fiscal_code.clone();\n\
                 let emit = move || bus.publish(topic, code.clone(), ctx);\n\
                 emit();\n\
             }",
        );
        assert_eq!(hits.len(), 1, "{hits:#?}");
    }

    #[test]
    fn method_chain_across_lines_fires() {
        let hits = taint_findings(
            "fn f(&self, p: &PersonIdentity) {\n\
                 let label = p\n\
                     .fiscal_code\n\
                     .chars()\n\
                     .take(4)\n\
                     .collect::<String>();\n\
                 registry.counter(&label);\n\
             }",
        );
        assert_eq!(hits.len(), 1, "{hits:#?}");
    }

    #[test]
    fn direct_source_in_sink_args_fires_without_a_binding() {
        let hits = taint_findings(
            "fn f(&self, p: &PersonIdentity) {\n\
                 respond(stream, 200, \"text/plain\", p.fiscal_code.as_bytes());\n\
             }",
        );
        assert_eq!(hits.len(), 1, "{hits:#?}");
        assert!(hits[0].message.contains("ops-plane"));
    }

    #[test]
    fn nested_fn_not_double_reported() {
        let hits = taint_findings(
            "fn outer(&self, p: &PersonIdentity) {\n\
                 fn inner(p: &PersonIdentity) {\n\
                     registry.counter(&p.fiscal_code);\n\
                 }\n\
                 inner(p);\n\
             }",
        );
        assert_eq!(hits.len(), 1, "inner checked once: {hits:#?}");
    }

    #[test]
    fn test_role_is_exempt() {
        let file = SourceFile::parse(
            "css-controller",
            "tests/x.rs",
            FileRole::Test,
            "fn f(p: &PersonIdentity) { registry.counter(&p.fiscal_code); }",
        );
        let mut out = Vec::new();
        for body in &file.fns {
            check_fn(&file, body, "identity-taint", &mut out);
        }
        assert!(out.is_empty());
    }
}
