//! A minimal Cargo manifest reader: workspace member discovery and
//! dependency extraction, enough to check the crate layering invariant
//! without pulling in a TOML parser.
//!
//! Understands the subset of TOML the workspace actually uses:
//! `[workspace] members = [..]` (with trailing `/*` globs),
//! `[package] name = "..."`, and dependency tables in both inline
//! (`css-types.workspace = true`, `rand = { path = ".." }`) and header
//! (`[dependencies.css-types]`) form.

use std::fs;
use std::path::{Path, PathBuf};

/// One parsed `Cargo.toml`.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// `[package] name`, empty for a virtual manifest.
    pub name: String,
    /// Directory containing the manifest, relative to the workspace root.
    pub dir: String,
    /// Dependency names from `[dependencies]` (and target-specific
    /// dependency tables, which this workspace does not use).
    pub deps: Vec<String>,
    /// Dependency names from `[dev-dependencies]` and `[build-dependencies]`.
    pub dev_deps: Vec<String>,
    /// `[workspace] members` entries (globs unexpanded).
    pub members: Vec<String>,
}

/// Strip a trailing line comment that is outside any string.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_string = !in_string,
            b'\\' if in_string => i += 1,
            b'#' if !in_string => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

/// The dependency name on a `key = value` line inside a deps table:
/// everything before the first `.`, `=`, or whitespace.
fn dep_key(line: &str) -> Option<String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('[') {
        return None;
    }
    let end = line
        .find(|c: char| c == '.' || c == '=' || c.is_whitespace())
        .unwrap_or(line.len());
    let key = line[..end].trim_matches('"');
    (!key.is_empty()).then(|| key.to_string())
}

/// Parse manifest text. `dir` is recorded verbatim.
pub fn parse_manifest(text: &str, dir: &str) -> Manifest {
    #[derive(PartialEq, Clone, Copy)]
    enum Section {
        Package,
        Workspace,
        Deps,
        DevDeps,
        Other,
    }
    let mut m = Manifest {
        dir: dir.to_string(),
        ..Manifest::default()
    };
    let mut section = Section::Other;
    let mut in_members_list = false;

    for raw in text.lines() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if in_members_list {
            for piece in line.split(',') {
                let piece = piece.trim().trim_matches(|c| c == ']' || c == ',').trim();
                let piece = piece.trim_matches('"');
                if !piece.is_empty() {
                    m.members.push(piece.to_string());
                }
            }
            if line.contains(']') {
                in_members_list = false;
            }
            continue;
        }
        if line.starts_with('[') {
            let header = line.trim_matches(|c| c == '[' || c == ']');
            section = match header {
                "package" => Section::Package,
                "workspace" => Section::Workspace,
                "dependencies" => Section::Deps,
                "dev-dependencies" | "build-dependencies" => Section::DevDeps,
                other => {
                    // Header-form dependency: `[dependencies.css-types]`.
                    if let Some(rest) = other.strip_prefix("dependencies.") {
                        m.deps.push(rest.trim_matches('"').to_string());
                    } else if let Some(rest) = other.strip_prefix("dev-dependencies.") {
                        m.dev_deps.push(rest.trim_matches('"').to_string());
                    } else if other == "workspace.dependencies"
                        || other.starts_with("workspace.")
                        || other.starts_with("profile")
                        || other.starts_with("lints")
                    {
                        // Not a member dependency table.
                    }
                    Section::Other
                }
            };
            continue;
        }
        match section {
            Section::Package => {
                if let Some(rest) = line.strip_prefix("name") {
                    let rest = rest.trim_start();
                    if let Some(rest) = rest.strip_prefix('=') {
                        m.name = rest.trim().trim_matches('"').to_string();
                    }
                }
            }
            Section::Workspace => {
                if let Some(rest) = line.strip_prefix("members") {
                    let rest = rest.trim_start();
                    if let Some(rest) = rest.strip_prefix('=') {
                        let rest = rest.trim();
                        if let Some(list) = rest.strip_prefix('[') {
                            for piece in list.split(',') {
                                let piece =
                                    piece.trim().trim_matches(|c| c == ']' || c == ',').trim();
                                let piece = piece.trim_matches('"');
                                if !piece.is_empty() {
                                    m.members.push(piece.to_string());
                                }
                            }
                            in_members_list = !rest.contains(']');
                        }
                    }
                }
            }
            Section::Deps => {
                if let Some(key) = dep_key(line) {
                    m.deps.push(key);
                }
            }
            Section::DevDeps => {
                if let Some(key) = dep_key(line) {
                    m.dev_deps.push(key);
                }
            }
            Section::Other => {}
        }
    }
    m
}

/// Read and parse `dir/Cargo.toml`; `rel_dir` is stored for diagnostics.
pub fn read_manifest(dir: &Path, rel_dir: &str) -> std::io::Result<Manifest> {
    let text = fs::read_to_string(dir.join("Cargo.toml"))?;
    Ok(parse_manifest(&text, rel_dir))
}

/// Expand the root manifest's `members` globs against the filesystem.
/// Only trailing `/*` globs are supported (all this workspace uses);
/// exact paths pass through. Returns member directories relative to
/// `root`, sorted.
pub fn expand_members(root: &Path, members: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for member in members {
        if let Some(prefix) = member.strip_suffix("/*") {
            let Ok(entries) = fs::read_dir(root.join(prefix)) else {
                continue;
            };
            for entry in entries.flatten() {
                let path = entry.path();
                if path.join("Cargo.toml").is_file() {
                    if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                        out.push(format!("{prefix}/{name}"));
                    }
                }
            }
        } else if root.join(member).join("Cargo.toml").is_file() {
            out.push(member.clone());
        }
    }
    out.sort();
    out
}

/// Find the workspace root: walk up from `start` until a `Cargo.toml`
/// containing a `[workspace]` table is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.lines().any(|l| l.trim() == "[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
[package]
name = "css-example" # the name
version.workspace = true

[dependencies]
css-types.workspace = true
rand = { path = "compat/rand" }

[dependencies.css-xml]
workspace = true

[dev-dependencies]
proptest.workspace = true

[lints]
workspace = true
"#;

    #[test]
    fn parses_name_and_deps() {
        let m = parse_manifest(SAMPLE, "crates/example");
        assert_eq!(m.name, "css-example");
        assert_eq!(m.deps, vec!["css-types", "rand", "css-xml"]);
        assert_eq!(m.dev_deps, vec!["proptest"]);
        assert_eq!(m.dir, "crates/example");
    }

    #[test]
    fn parses_workspace_members_inline_and_multiline() {
        let m = parse_manifest("[workspace]\nmembers = [\"crates/*\", \"compat/*\"]\n", ".");
        assert_eq!(m.members, vec!["crates/*", "compat/*"]);
        let m2 = parse_manifest("[workspace]\nmembers = [\n  \"a\",\n  \"b/*\",\n]\n", ".");
        assert_eq!(m2.members, vec!["a", "b/*"]);
    }

    #[test]
    fn comments_and_lints_tables_do_not_confuse_deps() {
        let m = parse_manifest(
            "[dependencies]\n# css-bogus.workspace = true\ncss-real.workspace = true\n[lints]\nworkspace = true\n",
            ".",
        );
        assert_eq!(m.deps, vec!["css-real"]);
    }

    #[test]
    fn finds_live_workspace_root() {
        let here = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates").is_dir());
    }
}
