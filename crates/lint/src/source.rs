//! A scanned source file plus the structural facts rules need:
//! which tokens are test-only, where function bodies are, and the
//! file's waivers.

use crate::diag::Finding;
use crate::scanner::{scan, Token, TokenKind};
use crate::waiver::{parse_waivers, Waiver};

/// Why a file is (or is not) production code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// Under `src/` — production code (minus `#[cfg(test)]` regions).
    Production,
    /// Under `tests/`, `benches/` or `examples/` — exempt from the
    /// non-test rules.
    Test,
}

/// One function body: name and token span (body tokens, braces included).
#[derive(Debug, Clone)]
pub struct FnBody {
    pub name: String,
    /// Index of the opening `{` token.
    pub open: usize,
    /// Index of the matching `}` token.
    pub close: usize,
}

/// A scanned file ready for rule checks.
pub struct SourceFile {
    pub crate_name: String,
    /// Path relative to the workspace root (diagnostics only).
    pub path: String,
    pub role: FileRole,
    pub tokens: Vec<Token>,
    /// `test_mask[i]` — token `i` is inside a `#[cfg(test)]` item.
    pub test_mask: Vec<bool>,
    pub waivers: Vec<Waiver>,
    /// Findings produced while loading (malformed waivers).
    pub load_findings: Vec<Finding>,
    pub fns: Vec<FnBody>,
}

impl SourceFile {
    pub fn parse(crate_name: &str, path: &str, role: FileRole, src: &str) -> SourceFile {
        let scanned = scan(src);
        let (waivers, load_findings) = parse_waivers(&scanned.comments, path);
        let tokens = scanned.tokens;
        let test_mask = compute_test_mask(&tokens);
        let fns = find_fn_bodies(&tokens);
        SourceFile {
            crate_name: crate_name.to_string(),
            path: path.to_string(),
            role,
            tokens,
            test_mask,
            waivers,
            load_findings,
            fns,
        }
    }

    /// Whether token `i` is production code in this file.
    pub fn is_prod(&self, i: usize) -> bool {
        self.role == FileRole::Production && !self.test_mask.get(i).copied().unwrap_or(false)
    }

    /// The identifier text of token `i`, if it is an identifier.
    pub fn ident(&self, i: usize) -> Option<&str> {
        let t = self.tokens.get(i)?;
        (t.kind == TokenKind::Ident).then_some(t.text.as_str())
    }

    /// Whether tokens at `i..` spell the given punctuation characters.
    pub fn puncts(&self, i: usize, chars: &str) -> bool {
        chars
            .chars()
            .enumerate()
            .all(|(k, c)| self.tokens.get(i + k).is_some_and(|t| t.is_punct(c)))
    }
}

/// Find the token index of the `}` matching the `{` at `open`.
/// Returns `tokens.len() - 1` on unbalanced input (tolerant: the lint
/// must never panic on odd source).
pub fn matching_brace(tokens: &[Token], open: usize) -> usize {
    matching_delim(tokens, open, '{', '}')
}

/// Find the token index of the `)` matching the `(` at `open`.
pub fn matching_paren(tokens: &[Token], open: usize) -> usize {
    matching_delim(tokens, open, '(', ')')
}

/// Find the token index of the `]` matching the `[` at `open`.
pub fn matching_bracket(tokens: &[Token], open: usize) -> usize {
    matching_delim(tokens, open, '[', ']')
}

fn matching_delim(tokens: &[Token], open: usize, oc: char, cc: char) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(oc) {
            depth += 1;
        } else if t.is_punct(cc) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Mark every token inside an item annotated `#[cfg(test)]` (or any
/// `cfg(...)` whose argument mentions `test`, covering `all(test, ..)`).
fn compute_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        // `#` `[` cfg `(` ... test ... `)` `]`
        let is_cfg_test = tokens[i].is_punct('#')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
            && tokens.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct('('));
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Scan the cfg(...) argument for the ident `test`.
        let mut j = i + 4;
        let mut depth = 1usize;
        let mut mentions_test = false;
        while j < tokens.len() && depth > 0 {
            if tokens[j].is_punct('(') {
                depth += 1;
            } else if tokens[j].is_punct(')') {
                depth -= 1;
            } else if tokens[j].is_ident("test") {
                mentions_test = true;
            }
            j += 1;
        }
        // Expect the closing `]`.
        if tokens.get(j).is_some_and(|t| t.is_punct(']')) {
            j += 1;
        }
        if !mentions_test {
            i = j;
            continue;
        }
        // The annotated item: skip any further attributes, then mask to
        // the end of the item — the matching `}` of its first block, or
        // the first `;` at bracket depth zero (e.g. `#[cfg(test)] use x;`).
        let item_start = i;
        let mut k = j;
        while tokens.get(k).is_some_and(|t| t.is_punct('#'))
            && tokens.get(k + 1).is_some_and(|t| t.is_punct('['))
        {
            // Skip the whole `#[...]`.
            let mut d = 0usize;
            k += 1;
            while k < tokens.len() {
                if tokens[k].is_punct('[') {
                    d += 1;
                } else if tokens[k].is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        k += 1;
                        break;
                    }
                }
                k += 1;
            }
        }
        let mut paren = 0isize;
        let mut bracket = 0isize;
        let mut end = tokens.len().saturating_sub(1);
        while k < tokens.len() {
            let t = &tokens[k];
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if t.is_punct('[') {
                bracket += 1;
            } else if t.is_punct(']') {
                bracket -= 1;
            } else if t.is_punct(';') && paren == 0 && bracket == 0 {
                end = k;
                break;
            } else if t.is_punct('{') && paren == 0 && bracket == 0 {
                end = matching_brace(tokens, k);
                break;
            }
            k += 1;
        }
        for slot in mask.iter_mut().take(end + 1).skip(item_start) {
            *slot = true;
        }
        i = end + 1;
    }
    mask
}

/// Extract every `fn` body (including nested ones — each is reported
/// independently).
fn find_fn_bodies(tokens: &[Token]) -> Vec<FnBody> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name) = tokens
            .get(i + 1)
            .and_then(|t| (t.kind == TokenKind::Ident).then(|| t.text.clone()))
        else {
            i += 1;
            continue;
        };
        // Scan the signature for the body `{` — or a `;` (trait method
        // declaration, no body) — at bracket depth zero.
        let mut k = i + 2;
        let mut paren = 0isize;
        let mut bracket = 0isize;
        let mut found: Option<usize> = None;
        while k < tokens.len() {
            let t = &tokens[k];
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if t.is_punct('[') {
                bracket += 1;
            } else if t.is_punct(']') {
                bracket -= 1;
            } else if paren == 0 && bracket == 0 {
                if t.is_punct(';') {
                    break; // no body
                }
                if t.is_punct('{') {
                    found = Some(k);
                    break;
                }
            }
            k += 1;
        }
        if let Some(open) = found {
            let close = matching_brace(tokens, open);
            out.push(FnBody { name, open, close });
            i += 2; // continue inside: nested fns found on their own
        } else {
            i = k + 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("css-test", "x.rs", FileRole::Production, src)
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let f = file("fn prod() {}\n#[cfg(test)]\nmod tests { fn t() { bad() } }\nfn tail() {}");
        let bad_idx = f
            .tokens
            .iter()
            .position(|t| t.is_ident("bad"))
            .expect("bad token");
        assert!(!f.is_prod(bad_idx));
        let prod_idx = f
            .tokens
            .iter()
            .position(|t| t.is_ident("prod"))
            .expect("prod");
        assert!(f.is_prod(prod_idx));
        let tail_idx = f
            .tokens
            .iter()
            .position(|t| t.is_ident("tail"))
            .expect("tail");
        assert!(f.is_prod(tail_idx), "masking must end with the test item");
    }

    #[test]
    fn cfg_all_test_is_masked() {
        let f = file("#[cfg(all(test, feature = \"x\"))]\nmod t { fn a() {} }");
        let a = f.tokens.iter().position(|t| t.is_ident("a")).expect("a");
        assert!(!f.is_prod(a));
    }

    #[test]
    fn cfg_test_use_statement_masked_to_semicolon() {
        let f = file("#[cfg(test)] use helpers::x;\nfn real() {}");
        let real = f
            .tokens
            .iter()
            .position(|t| t.is_ident("real"))
            .expect("real");
        assert!(f.is_prod(real));
    }

    #[test]
    fn test_role_file_is_never_prod() {
        let f = SourceFile::parse("c", "tests/a.rs", FileRole::Test, "fn x() {}");
        assert!(!f.is_prod(0));
    }

    #[test]
    fn fn_bodies_found_with_names() {
        let f = file("fn outer(a: [u8; 4]) -> u8 { inner();\n fn inner() {} 0 }");
        let names: Vec<&str> = f.fns.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
        let outer = &f.fns[0];
        assert!(outer.close > outer.open);
    }

    #[test]
    fn trait_method_without_body_skipped() {
        let f = file("trait T { fn decl(&self) -> u8; }\nfn real() {}");
        let names: Vec<&str> = f.fns.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }
}
