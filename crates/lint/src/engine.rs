//! Workspace loading and rule execution.

use std::fs;
use std::path::{Path, PathBuf};

use crate::diag::{Finding, Severity};
use crate::manifest::{expand_members, read_manifest, Manifest};
use crate::rules::{all_rules, Rule};
use crate::source::{FileRole, SourceFile};
use crate::waiver::apply_waivers;

/// The lint result for a whole workspace (or a single file).
#[derive(Debug, Default)]
pub struct Report {
    /// Workspace root the lint ran against.
    pub root: String,
    /// Active findings (not waived), reporting order.
    pub findings: Vec<Finding>,
    /// Findings suppressed by an inline waiver, with the reason.
    pub waived: Vec<Finding>,
    pub files_scanned: usize,
}

impl Report {
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warn)
            .count()
    }

    /// Exit status the CLI should use.
    pub fn exit_code(&self) -> i32 {
        if self.errors() > 0 {
            1
        } else {
            0
        }
    }
}

/// Source subdirectories of a crate and the role their files get.
const SOURCE_DIRS: &[(&str, FileRole)] = &[
    ("src", FileRole::Production),
    ("tests", FileRole::Test),
    ("benches", FileRole::Test),
    ("examples", FileRole::Test),
];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Run one file through every file-scoped rule, honoring waivers.
/// This is also the fixture-testing entry point.
pub fn lint_file_source(
    crate_name: &str,
    rel_path: &str,
    role: FileRole,
    src: &str,
) -> Vec<Finding> {
    let rules = all_rules();
    lint_file_with(&rules, crate_name, rel_path, role, src)
}

fn lint_file_with(
    rules: &[Box<dyn Rule>],
    crate_name: &str,
    rel_path: &str,
    role: FileRole,
    src: &str,
) -> Vec<Finding> {
    let file = SourceFile::parse(crate_name, rel_path, role, src);
    let mut findings = file.load_findings.clone();
    for rule in rules {
        rule.check_file(&file, &mut findings);
    }
    for f in &mut findings {
        if f.crate_name.is_empty() {
            f.crate_name = crate_name.to_string();
        }
    }
    apply_waivers(findings, &file.waivers)
}

/// Lint the workspace rooted at `root`: every member crate's sources
/// plus the manifest dependency graph.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let rules = all_rules();
    let root_manifest = read_manifest(root, ".")?;
    let mut manifests: Vec<Manifest> = Vec::new();
    // The root package, if the root manifest is not purely virtual.
    if !root_manifest.name.is_empty() {
        manifests.push(root_manifest.clone());
    }
    for member_dir in expand_members(root, &root_manifest.members) {
        if let Ok(m) = read_manifest(&root.join(&member_dir), &member_dir) {
            manifests.push(m);
        }
    }

    let mut report = Report {
        root: root.display().to_string(),
        ..Report::default()
    };
    let mut all_findings: Vec<Finding> = Vec::new();

    for manifest in &manifests {
        if manifest.name.is_empty() {
            continue;
        }
        let crate_dir = if manifest.dir == "." {
            root.to_path_buf()
        } else {
            root.join(&manifest.dir)
        };
        for (sub, role) in SOURCE_DIRS {
            let mut files = Vec::new();
            collect_rs_files(&crate_dir.join(sub), &mut files);
            for path in files {
                let Ok(src) = fs::read_to_string(&path) else {
                    continue;
                };
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .display()
                    .to_string();
                report.files_scanned += 1;
                all_findings.extend(lint_file_with(&rules, &manifest.name, &rel, *role, &src));
            }
        }
    }

    for rule in &rules {
        rule.check_workspace(&manifests, &mut all_findings);
    }

    for f in all_findings {
        if f.is_waived() {
            report.waived.push(f);
        } else {
            report.findings.push(f);
        }
    }
    Ok(report)
}

/// Render the human-readable report.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    out.push_str(&format!(
        "css-lint: {} file(s) scanned, {} error(s), {} warning(s), {} waived\n",
        report.files_scanned,
        report.errors(),
        report.warnings(),
        report.waived.len()
    ));
    out
}
