//! Workspace loading and rule execution.
//!
//! The engine runs in three phases:
//!
//! 1. **File phase** — each source file is parsed once and distilled
//!    into [`FileFacts`]: file-scoped rule findings (waivers not yet
//!    applied), the file's waivers, and per-fn summaries. This phase is
//!    the expensive one and is what the incremental cache skips.
//! 2. **Project phase** — the facts are assembled into a
//!    [`Project`] (cross-file call graph) and every rule's
//!    `check_project` runs over the summaries.
//! 3. **Workspace phase** — manifest-level rules (`check_workspace`).
//!
//! Waivers are applied at assembly time so they cover project-scoped
//! findings (e.g. a waived `audit-before-release`) exactly like
//! file-scoped ones.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::UNIX_EPOCH;

use crate::cache;
use crate::callgraph::{extract_fn_summaries, FileFacts, Project};
use crate::diag::{Finding, Severity};
use crate::manifest::{expand_members, read_manifest, Manifest};
use crate::rules::{all_rules, Rule};
use crate::source::{FileRole, SourceFile};
use crate::waiver::apply_waivers;

/// Wall-clock and cache statistics for one lint run. Populated by the
/// CLI, never by the engine, so that two engine runs over identical
/// sources produce byte-identical reports regardless of timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timing {
    /// End-to-end wall time of the run, in milliseconds.
    pub wall_ms: u64,
    /// Files whose facts were served from the incremental cache.
    pub files_reused: usize,
    /// Files that were read and parsed from disk.
    pub files_parsed: usize,
}

/// The lint result for a whole workspace (or a single file).
#[derive(Debug, Default)]
pub struct Report {
    /// Workspace root the lint ran against.
    pub root: String,
    /// Active findings (not waived), reporting order.
    pub findings: Vec<Finding>,
    /// Findings suppressed by an inline waiver, with the reason.
    pub waived: Vec<Finding>,
    pub files_scanned: usize,
    /// Run statistics; `None` for engine-produced reports (the CLI
    /// fills it in, and renderers omit it when absent).
    pub timing: Option<Timing>,
}

impl Report {
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warn)
            .count()
    }

    /// Exit status the CLI should use.
    pub fn exit_code(&self) -> i32 {
        if self.errors() > 0 {
            1
        } else {
            0
        }
    }
}

/// How many file-phase results came from the cache vs. a fresh parse.
#[derive(Debug, Default, Clone, Copy)]
pub struct CacheStats {
    pub reused: usize,
    pub parsed: usize,
}

/// Source subdirectories of a crate and the role their files get.
const SOURCE_DIRS: &[(&str, FileRole)] = &[
    ("src", FileRole::Production),
    ("tests", FileRole::Test),
    ("benches", FileRole::Test),
    ("examples", FileRole::Test),
];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Phase 1 for one file: parse and distill into cacheable facts.
fn build_file_facts(
    rules: &[Box<dyn Rule>],
    crate_name: &str,
    rel_path: &str,
    role: FileRole,
    src: &str,
) -> FileFacts {
    let file = SourceFile::parse(crate_name, rel_path, role, src);
    let mut findings = file.load_findings.clone();
    for rule in rules {
        rule.check_file(&file, &mut findings);
    }
    for f in &mut findings {
        if f.crate_name.is_empty() {
            f.crate_name = crate_name.to_string();
        }
    }
    let fns = extract_fn_summaries(&file);
    FileFacts {
        crate_name: crate_name.to_string(),
        path: rel_path.to_string(),
        role,
        findings,
        waivers: file.waivers,
        fns,
    }
}

/// Phases 2–3: build the project, run project + workspace rules, apply
/// each file's waivers to every finding that lands in it. Returns the
/// facts back out so callers can persist them to the cache.
fn assemble(
    root: String,
    facts: Vec<FileFacts>,
    manifests: &[Manifest],
    rules: &[Box<dyn Rule>],
) -> (Report, Vec<FileFacts>) {
    let files_scanned = facts.len();
    let project = Project::new(facts);

    let mut all: Vec<Finding> = Vec::new();
    for file in &project.files {
        all.extend(file.findings.iter().cloned());
    }
    for rule in rules {
        rule.check_project(&project, &mut all);
    }
    for rule in rules {
        rule.check_workspace(manifests, &mut all);
    }

    let mut by_file: HashMap<&str, &FileFacts> = HashMap::new();
    for file in &project.files {
        by_file.insert(file.path.as_str(), file);
    }

    let mut report = Report {
        root,
        files_scanned,
        ..Report::default()
    };
    for finding in all {
        let resolved = match by_file.get(finding.file.as_str()) {
            Some(file) if !file.waivers.is_empty() => {
                apply_waivers(vec![finding], &file.waivers).remove(0)
            }
            _ => finding,
        };
        if resolved.is_waived() {
            report.waived.push(resolved);
        } else {
            report.findings.push(resolved);
        }
    }
    (report, project.files)
}

/// Run one file through every file-scoped *and* project-scoped rule
/// (over a single-file project), honoring waivers. This is the
/// fixture-testing entry point: returned findings include waived ones
/// (with `waive_reason` set) so fixtures can assert all three states.
pub fn lint_file_source(
    crate_name: &str,
    rel_path: &str,
    role: FileRole,
    src: &str,
) -> Vec<Finding> {
    let rules = all_rules();
    let facts = build_file_facts(&rules, crate_name, rel_path, role, src);
    let (report, _) = assemble(String::new(), vec![facts], &[], &rules);
    let mut out = report.findings;
    out.extend(report.waived);
    out
}

/// Lint the workspace rooted at `root`: every member crate's sources
/// plus the manifest dependency graph. No incremental cache.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    lint_workspace_with_cache(root, None).map(|(report, _)| report)
}

/// Lint the workspace, optionally reusing and refreshing the
/// incremental facts cache at `cache_path`. A cached entry is reused
/// when its (mtime, size) stat, crate name, and role all match; the
/// cache file itself is versioned by a fingerprint of the rule set.
pub fn lint_workspace_with_cache(
    root: &Path,
    cache_path: Option<&Path>,
) -> std::io::Result<(Report, CacheStats)> {
    let rules = all_rules();
    let root_manifest = read_manifest(root, ".")?;
    let mut manifests: Vec<Manifest> = Vec::new();
    // The root package, if the root manifest is not purely virtual.
    if !root_manifest.name.is_empty() {
        manifests.push(root_manifest.clone());
    }
    for member_dir in expand_members(root, &root_manifest.members) {
        if let Ok(m) = read_manifest(&root.join(&member_dir), &member_dir) {
            manifests.push(m);
        }
    }

    let cached = cache_path.map(cache::load).unwrap_or_default();
    let mut stats = CacheStats::default();
    let mut facts: Vec<FileFacts> = Vec::new();
    // (path, mtime_ns, size) per linted file, for the refreshed cache.
    let mut stat_keys: Vec<(String, u128, u64)> = Vec::new();

    for manifest in &manifests {
        if manifest.name.is_empty() {
            continue;
        }
        let crate_dir = if manifest.dir == "." {
            root.to_path_buf()
        } else {
            root.join(&manifest.dir)
        };
        for (sub, role) in SOURCE_DIRS {
            let mut files = Vec::new();
            collect_rs_files(&crate_dir.join(sub), &mut files);
            for path in files {
                let Ok(meta) = fs::metadata(&path) else {
                    continue;
                };
                let mtime_ns = meta
                    .modified()
                    .ok()
                    .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
                    .map(|d| d.as_nanos())
                    .unwrap_or(0);
                let size = meta.len();
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .display()
                    .to_string();

                let hit = cached.get(&rel).filter(|c| {
                    c.mtime_ns == mtime_ns
                        && c.size == size
                        && c.facts.crate_name == manifest.name
                        && c.facts.role == *role
                });
                let file_facts = match hit {
                    Some(c) => {
                        stats.reused += 1;
                        c.facts.clone()
                    }
                    None => {
                        let Ok(src) = fs::read_to_string(&path) else {
                            continue;
                        };
                        stats.parsed += 1;
                        build_file_facts(&rules, &manifest.name, &rel, *role, &src)
                    }
                };
                stat_keys.push((rel, mtime_ns, size));
                facts.push(file_facts);
            }
        }
    }

    let (report, facts) = assemble(root.display().to_string(), facts, &manifests, &rules);

    if let Some(path) = cache_path {
        let entries: Vec<(String, u128, u64, &FileFacts)> = stat_keys
            .iter()
            .zip(facts.iter())
            .map(|((p, m, s), f)| (p.clone(), *m, *s, f))
            .collect();
        cache::store(path, &entries);
    }

    Ok((report, stats))
}

/// Render the human-readable report.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    out.push_str(&format!(
        "css-lint: {} file(s) scanned, {} error(s), {} warning(s), {} waived\n",
        report.files_scanned,
        report.errors(),
        report.warnings(),
        report.waived.len()
    ));
    if let Some(t) = &report.timing {
        out.push_str(&format!(
            "css-lint: {} ms wall, {} file(s) from cache, {} parsed\n",
            t.wall_ms, t.files_reused, t.files_parsed
        ));
    }
    out
}
