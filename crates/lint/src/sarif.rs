//! SARIF 2.1.0 rendering (minimal profile).
//!
//! Emits a single-run log: `runs[0].tool.driver` lists every rule with
//! its id and short description; `runs[0].results` carries one result
//! per finding with `ruleId`, `level`, `message.text`, and a physical
//! location (region omitted when the finding has no line, e.g.
//! workspace-level layering findings). Waived findings are emitted too,
//! with an `inSource` suppression carrying the waiver's justification —
//! SARIF viewers show them greyed out instead of hiding them, matching
//! how the text renderer treats waivers as reviewable artifacts.

use crate::diag::{Finding, Severity};
use crate::engine::Report;
use crate::json::escape;
use crate::rules::all_rules;

const SARIF_VERSION: &str = "2.1.0";
const SARIF_SCHEMA: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

fn level(severity: Severity) -> &'static str {
    match severity {
        Severity::Warn => "warning",
        Severity::Error => "error",
    }
}

fn result_json(f: &Finding, suppressed: bool) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"ruleId\":\"{}\",\"level\":\"{}\",\"message\":{{\"text\":\"{}\"}}",
        escape(f.rule),
        level(f.severity),
        escape(&f.message)
    ));
    out.push_str(&format!(
        ",\"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}}",
        escape(&f.file)
    ));
    if f.line > 0 {
        out.push_str(&format!(",\"region\":{{\"startLine\":{}}}", f.line));
    }
    out.push_str("}}]");
    if suppressed {
        let justification = f.waive_reason.as_deref().unwrap_or("");
        out.push_str(&format!(
            ",\"suppressions\":[{{\"kind\":\"inSource\",\"justification\":\"{}\"}}]",
            escape(justification)
        ));
    }
    out.push('}');
    out
}

/// Render the report as a SARIF 2.1.0 document.
pub fn render_sarif(report: &Report) -> String {
    let rules: Vec<String> = all_rules()
        .iter()
        .map(|r| {
            format!(
                "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}},\
                 \"defaultConfiguration\":{{\"level\":\"{}\"}}}}",
                escape(r.id()),
                escape(r.description()),
                level(r.severity())
            )
        })
        .collect();

    let mut results: Vec<String> = Vec::new();
    for f in &report.findings {
        results.push(result_json(f, false));
    }
    for f in &report.waived {
        results.push(result_json(f, true));
    }

    format!(
        "{{\"$schema\":\"{SARIF_SCHEMA}\",\"version\":\"{SARIF_VERSION}\",\"runs\":[{{\
         \"tool\":{{\"driver\":{{\"name\":\"css-lint\",\"rules\":[{}]}}}},\
         \"results\":[{}]}}]}}\n",
        rules.join(","),
        results.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::parse_json;
    use crate::diag::Finding;

    fn sample_report() -> Report {
        Report {
            root: ".".into(),
            findings: vec![Finding {
                rule: "identity-taint",
                severity: Severity::Error,
                crate_name: "css-bus".into(),
                file: "crates/bus/src/a.rs".into(),
                line: 9,
                message: "tainted".into(),
                waive_reason: None,
            }],
            waived: vec![Finding {
                rule: "no-panic-hot-path",
                severity: Severity::Error,
                crate_name: "css-bus".into(),
                file: "crates/bus/src/b.rs".into(),
                line: 3,
                message: "unwrap".into(),
                waive_reason: Some("bounded test harness".into()),
            }],
            files_scanned: 2,
            timing: None,
        }
    }

    #[test]
    fn sarif_is_valid_json_with_rules_and_results() {
        let doc = parse_json(&render_sarif(&sample_report())).expect("valid json");
        assert_eq!(doc.get("version").unwrap().as_str(), Some("2.1.0"));
        let runs = doc.get("runs").unwrap().as_arr().unwrap();
        let driver = runs[0].get("tool").unwrap().get("driver").unwrap();
        assert_eq!(driver.get("name").unwrap().as_str(), Some("css-lint"));
        let rules = driver.get("rules").unwrap().as_arr().unwrap();
        assert_eq!(rules.len(), all_rules().len());
        let results = runs[0].get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("ruleId").unwrap().as_str(),
            Some("identity-taint")
        );
        assert_eq!(results[0].get("level").unwrap().as_str(), Some("error"));
        let region = results[0].get("locations").unwrap().as_arr().unwrap()[0]
            .get("physicalLocation")
            .unwrap()
            .get("region")
            .unwrap();
        assert_eq!(region.get("startLine").unwrap().as_u64(), Some(9));
    }

    #[test]
    fn waived_findings_carry_in_source_suppressions() {
        let doc = parse_json(&render_sarif(&sample_report())).expect("valid json");
        let results = doc.get("runs").unwrap().as_arr().unwrap()[0]
            .get("results")
            .unwrap()
            .as_arr()
            .unwrap();
        assert!(results[0].get("suppressions").is_none());
        let sup = results[1].get("suppressions").unwrap().as_arr().unwrap();
        assert_eq!(sup[0].get("kind").unwrap().as_str(), Some("inSource"));
        assert_eq!(
            sup[0].get("justification").unwrap().as_str(),
            Some("bounded test harness")
        );
    }

    #[test]
    fn findings_without_a_line_omit_the_region() {
        let mut report = sample_report();
        report.findings[0].line = 0;
        let doc = parse_json(&render_sarif(&report)).expect("valid json");
        let loc = &doc.get("runs").unwrap().as_arr().unwrap()[0]
            .get("results")
            .unwrap()
            .as_arr()
            .unwrap()[0]
            .get("locations")
            .unwrap()
            .as_arr()
            .unwrap()[0];
        assert!(loc.get("physicalLocation").unwrap().get("region").is_none());
    }
}
