//! Hand-rolled JSON rendering for `--format json` (schema version 2).
//!
//! Shape:
//! ```json
//! {
//!   "version": 2,
//!   "root": "...",
//!   "rules": [{"id": "...", "severity": "...", "description": "..."}],
//!   "findings": [{"rule","severity","crate","file","line","message"}],
//!   "waived":   [... same fields plus "reason"],
//!   "summary": {"errors","warnings","waived","files_scanned"},
//!   "timing": {"wall_ms","files_reused","files_parsed"}   // CLI runs only
//! }
//! ```
//!
//! v2 adds the three project-phase rules to `rules`, and the optional
//! `timing` object — present only when the CLI measured a run (engine-
//! produced reports omit it, keeping cold/warm reports byte-identical).

use crate::diag::Finding;
use crate::engine::Report;
use crate::rules::all_rules;

/// Escape a string for a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &Finding) -> String {
    let mut s = format!(
        "{{\"rule\":\"{}\",\"severity\":\"{}\",\"crate\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"",
        escape(f.rule),
        f.severity.as_str(),
        escape(&f.crate_name),
        escape(&f.file),
        f.line,
        escape(&f.message),
    );
    if let Some(reason) = &f.waive_reason {
        s.push_str(&format!(",\"reason\":\"{}\"", escape(reason)));
    }
    s.push('}');
    s
}

/// Render the full report as JSON.
pub fn render_json(report: &Report) -> String {
    let rules: Vec<String> = all_rules()
        .iter()
        .map(|r| {
            format!(
                "{{\"id\":\"{}\",\"severity\":\"{}\",\"description\":\"{}\"}}",
                escape(r.id()),
                r.severity().as_str(),
                escape(r.description())
            )
        })
        .collect();
    let findings: Vec<String> = report.findings.iter().map(finding_json).collect();
    let waived: Vec<String> = report.waived.iter().map(finding_json).collect();
    let timing = match &report.timing {
        Some(t) => format!(
            ",\"timing\":{{\"wall_ms\":{},\"files_reused\":{},\"files_parsed\":{}}}",
            t.wall_ms, t.files_reused, t.files_parsed
        ),
        None => String::new(),
    };
    format!(
        "{{\"version\":2,\"root\":\"{}\",\"rules\":[{}],\"findings\":[{}],\"waived\":[{}],\
         \"summary\":{{\"errors\":{},\"warnings\":{},\"waived\":{},\"files_scanned\":{}}}{}}}\n",
        escape(&report.root),
        rules.join(","),
        findings.join(","),
        waived.join(","),
        report.errors(),
        report.warnings(),
        report.waived.len(),
        report.files_scanned,
        timing,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
