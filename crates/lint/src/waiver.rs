//! Inline waivers: `// css-lint: allow(<rule>): <reason>`.
//!
//! A waiver suppresses findings of the named rule on the waiver's own
//! line (trailing comment) or on the line directly below it (a comment
//! on its own line above the offending statement). The reason is
//! mandatory: an allow without a stated justification is itself
//! reported, so every suppression stays reviewable — the same
//! traceability discipline the audit log applies to data releases.

use crate::diag::{Finding, Severity};
use crate::scanner::LineComment;

/// A parsed waiver comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    pub rule: String,
    pub reason: String,
    /// Line the waiver comment is on (1-based).
    pub line: u32,
}

impl Waiver {
    /// Whether this waiver covers a finding of `rule` on `line`.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        self.rule == rule && (self.line == line || self.line + 1 == line)
    }
}

/// Parse the waivers out of a file's line comments. Malformed waivers
/// (no rule, or no reason) come back as findings so they cannot silently
/// suppress anything.
pub fn parse_waivers(comments: &[LineComment], file: &str) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for comment in comments {
        // Strip leading slashes (handles `//`, `///`, `//!`) and space.
        let body = comment
            .text
            .trim_start_matches('/')
            .trim_start_matches('!')
            .trim();
        let Some(rest) = body.strip_prefix("css-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let malformed = |msg: &str| Finding {
            rule: "waiver-syntax",
            severity: Severity::Error,
            crate_name: String::new(),
            file: file.to_string(),
            line: comment.line,
            message: format!("{msg}: `{}`", comment.text.trim()),
            waive_reason: None,
        };
        let Some(rest) = rest.strip_prefix("allow(") else {
            findings.push(malformed("waiver must be `allow(<rule>): <reason>`"));
            continue;
        };
        let Some(close) = rest.find(')') else {
            findings.push(malformed("unclosed rule name in waiver"));
            continue;
        };
        let rule = rest[..close].trim();
        let after = rest[close + 1..].trim();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if rule.is_empty() {
            findings.push(malformed("waiver names no rule"));
            continue;
        }
        if reason.is_empty() {
            findings.push(malformed("waiver gives no reason"));
            continue;
        }
        waivers.push(Waiver {
            rule: rule.to_string(),
            reason: reason.to_string(),
            line: comment.line,
        });
    }
    (waivers, findings)
}

/// Mark findings covered by a waiver, moving the waiver's reason into
/// the finding. Returns the findings with `waive_reason` filled in where
/// applicable.
pub fn apply_waivers(mut findings: Vec<Finding>, waivers: &[Waiver]) -> Vec<Finding> {
    for finding in &mut findings {
        if finding.waive_reason.is_some() {
            continue;
        }
        if let Some(w) = waivers
            .iter()
            .find(|w| w.covers(finding.rule, finding.line))
        {
            finding.waive_reason = Some(w.reason.clone());
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn waivers_of(src: &str) -> (Vec<Waiver>, Vec<Finding>) {
        let s = scan(src);
        parse_waivers(&s.comments, "f.rs")
    }

    #[test]
    fn parses_well_formed_waiver() {
        let (ws, bad) =
            waivers_of("// css-lint: allow(no-panic-hot-path): length checked above\nx.unwrap();");
        assert!(bad.is_empty());
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].rule, "no-panic-hot-path");
        assert_eq!(ws[0].reason, "length checked above");
        assert!(ws[0].covers("no-panic-hot-path", 2));
        assert!(ws[0].covers("no-panic-hot-path", 1));
        assert!(!ws[0].covers("no-panic-hot-path", 3));
        assert!(!ws[0].covers("layering", 2));
    }

    #[test]
    fn reason_is_mandatory() {
        let (ws, bad) = waivers_of("// css-lint: allow(layering)\n");
        assert!(ws.is_empty());
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "waiver-syntax");
        assert!(bad[0].message.contains("no reason"));
    }

    #[test]
    fn malformed_waiver_is_reported() {
        let (ws, bad) = waivers_of("// css-lint: suppress everything please\n");
        assert!(ws.is_empty());
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn unrelated_comments_ignored() {
        let (ws, bad) = waivers_of("// just a comment about css-lint the tool\n");
        assert!(ws.is_empty());
        assert!(bad.is_empty());
    }

    #[test]
    fn waiver_moves_reason_into_finding() {
        let finding = Finding {
            rule: "no-panic-hot-path",
            severity: Severity::Error,
            crate_name: "c".into(),
            file: "f.rs".into(),
            line: 2,
            message: "m".into(),
            waive_reason: None,
        };
        let (ws, _) = waivers_of("// css-lint: allow(no-panic-hot-path): fine here\nx.unwrap();");
        let out = apply_waivers(vec![finding], &ws);
        assert_eq!(out[0].waive_reason.as_deref(), Some("fine here"));
    }
}
