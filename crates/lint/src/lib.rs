//! `css-lint` — a workspace-aware static analysis pass enforcing the
//! paper's privacy architecture as machine-checked invariants.
//!
//! The guarantees of *Privacy Preserving Event Driven Integration for
//! Interoperating Social and Health Systems* are architectural: detail
//! messages stay behind the producer's gateway until an authorized
//! request arrives, release decisions are deny-by-default (Definitions
//! 3–4), and every release is traceable for the Privacy Requirements
//! Analysis. This crate turns those review-time conventions into named,
//! gating rules over the whole workspace:
//!
//! | rule                  | invariant                                            |
//! |-----------------------|------------------------------------------------------|
//! | `detail-confinement`  | detail-payload types unnameable in controller/bus/registry |
//! | `permit-provenance`   | `Decision::Permit` constructed only inside css-policy |
//! | `audit-before-release`| releases always append an audit record               |
//! | `no-panic-hot-path`   | no unwrap/expect/panic in the enforcement path       |
//! | `lock-across-io`      | no lock guard held across unrelated storage writes   |
//! | `trace-hygiene`       | span attributes only via the closed `SpanAttr` constructors |
//! | `layering`            | crate dependencies point strictly down the stack     |
//!
//! No external dependencies: a hand-rolled token scanner (comment-,
//! string- and raw-string-aware) plus a minimal Cargo manifest reader.
//! Findings can be suppressed inline with
//! `// css-lint: allow(<rule>): <reason>` — the reason is mandatory and
//! carried into the report, so waivers stay as reviewable as the audit
//! trail the platform itself keeps.

pub mod diag;
pub mod engine;
pub mod json;
pub mod manifest;
pub mod rules;
pub mod scanner;
pub mod source;
pub mod waiver;

pub use diag::{Finding, Severity};
pub use engine::{lint_file_source, lint_workspace, render_text, Report};
pub use json::render_json;
pub use source::FileRole;
