//! `css-lint` — a workspace-aware static analysis pass enforcing the
//! paper's privacy architecture as machine-checked invariants.
//!
//! The guarantees of *Privacy Preserving Event Driven Integration for
//! Interoperating Social and Health Systems* are architectural: detail
//! messages stay behind the producer's gateway until an authorized
//! request arrives, release decisions are deny-by-default (Definitions
//! 3–4), and every release is traceable for the Privacy Requirements
//! Analysis. This crate turns those review-time conventions into named,
//! gating rules over the whole workspace:
//!
//! | rule                   | invariant                                            |
//! |------------------------|------------------------------------------------------|
//! | `detail-confinement`   | detail-payload types unnameable in controller/bus/registry |
//! | `permit-provenance`    | `Decision::Permit` constructed only inside css-policy |
//! | `audit-before-release` | releases append an audit record, directly or via a same-crate callee |
//! | `identity-taint`       | identity-derived values never flow into bus/health/telemetry sinks |
//! | `no-panic-hot-path`    | no unwrap/expect/panic in the enforcement path       |
//! | `lock-across-io`       | no lock guard held across unrelated storage writes   |
//! | `shard-lock-order`     | shard locks nest only in ascending index order       |
//! | `unchecked-backpressure` | pending-queue filings handle `CssError::Backpressure` |
//! | `trace-hygiene`        | span attributes only via the closed `SpanAttr` constructors |
//! | `layering`             | crate dependencies point strictly down the stack     |
//!
//! Rules run in three phases: per-file (token walk over one parsed
//! source), per-project (over cached [`callgraph::FnSummary`] facts and
//! the cross-file call graph), and per-workspace (manifests). The file
//! phase is incremental: facts persist in `target/css-lint-cache.json`
//! keyed by (path, mtime, size) and a fingerprint of the rule set, so a
//! warm run re-parses only files that changed.
//!
//! No external dependencies: a hand-rolled token scanner (comment-,
//! string- and raw-string-aware) plus a minimal Cargo manifest reader
//! and JSON value parser. Findings can be suppressed inline with
//! `// css-lint: allow(<rule>): <reason>` — the reason is mandatory and
//! carried into the report, so waivers stay as reviewable as the audit
//! trail the platform itself keeps. The committed `lint-baseline.json`
//! ratchets the waiver budget: new waivers fail CI until the baseline
//! is deliberately regenerated.

pub mod baseline;
pub mod cache;
pub mod callgraph;
pub mod diag;
pub mod engine;
pub mod flow;
pub mod json;
pub mod locks;
pub mod manifest;
pub mod rules;
pub mod sarif;
pub mod scanner;
pub mod source;
pub mod waiver;

pub use diag::{Finding, Severity};
pub use engine::{
    lint_file_source, lint_workspace, lint_workspace_with_cache, render_text, CacheStats, Report,
    Timing,
};
pub use json::render_json;
pub use sarif::render_sarif;
pub use source::FileRole;
