//! FIXTURE (linted as crate `css-chronicle`, role Production): the
//! history store deliberately naming a confined detail-payload type,
//! waived inline. The finding must land in `waived`, not `findings`.

pub fn history_cannot_carry_details(point: &Aggregate) -> bool {
    // css-lint: allow(detail-confinement): compile-time negative assertion — proves Aggregate has no detail-payload field
    let witness: Option<DetailMessage> = None;
    witness.is_none() && point.count > 0
}
