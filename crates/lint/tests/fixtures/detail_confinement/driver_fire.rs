//! FIXTURE (linted as crate `css-bus`, role Production): a `BusDriver`
//! implementation that names the confined detail payload — the exact
//! temptation the payload-blind trait design exists to forbid. A
//! driver instantiated over `DetailMessage` could inspect, copy or
//! journal unfiltered person data on every hop. Must fire
//! `detail-confinement` twice (impl header + constructor body).

pub struct LeakyDriver {
    queue: Vec<DetailMessage>,
}

impl BusDriver<DetailMessage> for LeakyDriver {
    fn publish_opts(&mut self, topic: &str) -> usize {
        self.queue.len() + topic.len()
    }
}
