//! FIXTURE (linted as crate `css-blackbox`, role Production): the
//! recorder deliberately naming a confined detail-payload type, waived
//! inline. The finding must land in `waived`, not `findings`.

pub fn frame_cannot_carry_details(frame: &Frame) -> bool {
    // css-lint: allow(detail-confinement): compile-time negative assertion — proves Frame has no detail-payload variant
    let witness: Option<DetailMessage> = None;
    witness.is_none() && frame.kind() != "detail"
}
