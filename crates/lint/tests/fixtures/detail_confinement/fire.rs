//! FIXTURE (linted as crate `css-bus`, role Production): names a
//! confined detail-payload type in a middle-layer crate. Must fire
//! `detail-confinement` twice (signature + body).

pub fn forward(msg: DetailMessage) {
    let store = DetailStore::default();
    store.put(msg);
}
