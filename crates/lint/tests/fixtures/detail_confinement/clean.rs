//! FIXTURE (linted as crate `css-bus`, role Production): the same shape
//! of code carrying only the anonymized notification, plus a
//! `#[cfg(test)]` region that may name the confined type. Must not fire.

pub fn forward(notice: EventNotification) {
    route(notice);
}

#[cfg(test)]
mod tests {
    // Test code may build a DetailMessage to drive a producer-side mock.
    fn build() -> DetailMessage {
        DetailMessage::default()
    }
}
