//! FIXTURE (linted as crate `css-controller`, role Production): the
//! exemplar-stamping shape of the enforcement path — a stage timer fed
//! the trace id, spans tagged strictly through the closed `SpanAttr`
//! constructor set. Exemplars carry only `(trace_id, timestamp)`, so
//! nothing here needs (or may use) a raw attribute. Must not fire.

pub fn enforce(timer: &mut StageTimer, span: &mut SpanGuard, ctx: &TraceContext, now: Timestamp) {
    if let Some(t) = ctx.trace_id() {
        timer.exemplar(t.value(), now.0);
    }
    span.attr(SpanAttr::stage("pdp_evaluate"));
    span.attr(SpanAttr::decision(true));
    span.attr(SpanAttr::cache_hit(false));
}
