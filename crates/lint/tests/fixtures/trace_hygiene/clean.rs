//! FIXTURE (linted as crate `css-controller`, role Production): the
//! same shape of code tagging a span strictly through the closed
//! `SpanAttr` constructor set, plus a `#[cfg(test)]` region that may
//! poke at internals. Must not fire.

pub fn tag(span: &mut SpanGuard, event: GlobalEventId, consumer: ActorId) {
    span.attr(SpanAttr::event(event));
    span.attr(SpanAttr::actor(consumer));
    span.attr(SpanAttr::decision(true));
    span.attr(SpanAttr::cache_hit(false));
}

#[cfg(test)]
mod tests {
    // Test code may exercise whatever shim it needs.
    fn probe() {
        let _ = SpanAttr::raw("k", AttrValue::Flag(true));
    }
}
