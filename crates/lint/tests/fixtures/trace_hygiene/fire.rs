//! FIXTURE (linted as crate `css-controller`, role Production): builds
//! span attributes outside the closed constructor set and names the raw
//! payload type. Must fire `trace-hygiene` twice (the `AttrValue`
//! mention + the unknown constructor).

pub fn tag(span: &mut SpanGuard, person: &PersonIdentity) {
    let raw = AttrValue::Code(person.fiscal_code.clone());
    span.attr(SpanAttr::raw("person", raw));
}
