//! FIXTURE (linted as crate `css-core`, role Production): the allowed
//! shapes — matching the variant locally, handling it one call up the
//! graph, and the boundary-API forwarder whose obligation transfers to
//! its (absent) callers. Must not fire.

impl Intake {
    pub fn enqueue(&self, req: PendingRequest) -> CssResult<()> {
        match self.queue.file(req) {
            Ok(_) => Ok(()),
            Err(CssError::Backpressure { depth }) => {
                self.metrics.counter("core.backpressure_drops", 1);
                Err(CssError::Backpressure { depth })
            }
            Err(e) => Err(e),
        }
    }

    fn stage(&self, req: PendingRequest) -> CssResult<u64> {
        self.queue.file(req)
    }

    pub fn admit(&self, req: PendingRequest) -> CssResult<u64> {
        match self.stage(req) {
            Err(CssError::Backpressure { depth }) => Err(CssError::Backpressure { depth }),
            other => other,
        }
    }

    pub fn request_access(&self, req: PendingRequest) -> CssResult<u64> {
        self.queue.file(req)
    }
}
