//! FIXTURE (linted as crate `css-core`, role Production): pending-queue
//! filings whose `CssError::Backpressure` signal is dropped. Must fire
//! `unchecked-backpressure` twice: a swallowed result, and a propagating
//! filer whose only production caller also ignores the error.

impl Intake {
    pub fn enqueue(&self, req: PendingRequest) {
        let _ = self.queue.file(req);
    }

    pub fn forward(&self, req: PendingRequest) -> CssResult<u64> {
        self.queue.file(req)
    }

    pub fn drive(&self, req: PendingRequest) {
        let _ = self.forward(req);
    }
}
