//! FIXTURE (linted as crate `css-core`, role Production): a deliberate
//! fire-and-forget filing, waived inline.

impl Intake {
    pub fn ping(&self, req: PendingRequest) {
        // css-lint: allow(unchecked-backpressure): shedding telemetry pings is the correct overload response
        let _ = self.queue.file(req);
    }
}
