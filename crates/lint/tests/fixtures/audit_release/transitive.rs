//! FIXTURE (linted as crate `css-controller`, role Production): the v2
//! call-graph-transitive audit obligation. `deliver` audits through a
//! same-crate callee and must not fire; `hand_off` delegates to a
//! callee that never reaches an audit append and must fire once.

impl Controller {
    pub fn deliver(&self, envelope: &Envelope) -> CssResult<Notification> {
        let notice = self.crypto.decrypt_notification(envelope)?;
        self.log_release(&notice)?;
        Ok(notice)
    }

    fn log_release(&self, notice: &Notification) -> CssResult<()> {
        self.audit.append(AuditRecord::release(notice))
    }

    pub fn hand_off(&self, envelope: &Envelope) -> CssResult<Notification> {
        let notice = self.crypto.decrypt_notification(envelope)?;
        self.log_delivery(&notice)?;
        Ok(notice)
    }

    fn log_delivery(&self, _notice: &Notification) -> CssResult<()> {
        self.metrics.counter("controller.deliveries", 1);
        Ok(())
    }
}
