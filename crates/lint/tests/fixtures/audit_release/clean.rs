//! FIXTURE (linted as crate `css-controller`, role Production): the
//! same release with the audit obligation met in the same body, plus a
//! forwarding impl named after the release call (the narrow interface
//! itself, exempt). Must not fire.

impl Controller {
    pub fn deliver(&self, envelope: &Envelope) -> CssResult<Notification> {
        let notice = self.crypto.decrypt_notification(envelope)?;
        self.audit.append(AuditRecord::release(&notice))?;
        Ok(notice)
    }
}

impl Gateway for Remote {
    fn get_response(&self, inquiry: &Inquiry) -> CssResult<Response> {
        self.inner.get_response(inquiry)
    }
}
