//! FIXTURE (linted as crate `css-controller`, role Production): a
//! function that rebuilds an identity-bearing notification without
//! appending an audit record. Must fire `audit-before-release`.

impl Controller {
    pub fn deliver(&self, envelope: &Envelope) -> CssResult<Notification> {
        let notice = self.crypto.decrypt_notification(envelope)?;
        Ok(notice)
    }
}
