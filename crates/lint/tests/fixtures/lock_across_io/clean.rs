//! FIXTURE (role Production): three allowed shapes — write through the
//! guard itself, guard dropped before the write, and a lock taken as a
//! temporary (released at the `;`). Must not fire.

pub fn through_guard(&self, event: &Event) -> CssResult<()> {
    let mut repo = self.repo.lock();
    repo.append(event.encode())?;
    Ok(())
}

pub fn drop_first(&self, event: &Event) -> CssResult<()> {
    let mut index = self.index.lock();
    index.insert(event.id);
    drop(index);
    self.log.append(event.encode())?;
    Ok(())
}

pub fn temporary(&self) -> CssResult<()> {
    let snapshot = self.repo.lock().load_all()?;
    self.log.append(snapshot.encode())?;
    Ok(())
}
