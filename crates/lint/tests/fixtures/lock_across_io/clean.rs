//! FIXTURE (role Production): three allowed shapes — write through the
//! guard itself, guard dropped before the write, and a lock taken as a
//! temporary (released at the `;`). Must not fire.

pub fn through_guard(&self, event: &Event) -> CssResult<()> {
    let mut repo = self.repo.lock();
    repo.append(event.encode())?;
    Ok(())
}

pub fn drop_first(&self, event: &Event) -> CssResult<()> {
    let mut index = self.index.lock();
    index.insert(event.id);
    drop(index);
    self.log.append(event.encode())?;
    Ok(())
}

pub fn temporary(&self) -> CssResult<()> {
    let snapshot = self.repo.lock().load_all()?;
    self.log.append(snapshot.encode())?;
    Ok(())
}

pub fn shard_group_commit(&self, event: &Event) -> CssResult<()> {
    // Per-shard guard writing through itself: the point of the lock.
    let mut shard = self.index.shard(event.person.0 as usize).write();
    shard.append(event.encode())?;
    Ok(())
}

pub fn scatter_gather(&self, person: PersonId) -> CssResult<()> {
    // Each shard guard dies with its loop iteration; the write below
    // runs with no lock held.
    let mut hits = Vec::new();
    for i in 0..self.shards {
        let shard = self.index.shard(i).read();
        hits.extend(shard.for_person(person));
    }
    self.log.append(hits.encode())?;
    Ok(())
}

pub fn rebalance(&self, from: usize, event: &Event) -> CssResult<()> {
    let mut source = self.index.shard(from).write();
    let moved = source.remove(event.id);
    drop(source);
    self.wal.append(moved.encode())?;
    Ok(())
}
