//! FIXTURE (role Production): a parking_lot guard on the index held
//! across a storage write on an unrelated path. Must fire
//! `lock-across-io` (warn).

pub fn record(&self, event: &Event) -> CssResult<()> {
    let mut index = self.index.lock();
    index.insert(event.id);
    self.log.append(event.encode())?;
    Ok(())
}
