//! FIXTURE (role Production): a parking_lot guard on the index held
//! across a storage write on an unrelated path. Must fire
//! `lock-across-io` (warn).

pub fn record(&self, event: &Event) -> CssResult<()> {
    let mut index = self.index.lock();
    index.insert(event.id);
    self.log.append(event.encode())?;
    Ok(())
}

pub fn record_sharded(&self, event: &Event) -> CssResult<()> {
    // A *per-shard* guard is still a guard: holding one shard's lock
    // across an unrelated backend write stalls that whole shard.
    let mut shard = self.index.shard(event.person.0 as usize).lock();
    shard.insert(event.id);
    self.audit.append(event.encode())?;
    Ok(())
}
