//! FIXTURE (linted as crate `css-core`, role Production): the same
//! capture call fed only an operator-authored constant and a
//! cardinality derived from identity material. Must not fire.

impl OpsPlane {
    pub fn freeze(&self, p: &PersonIdentity, snapshot: &TelemetrySnapshot) {
        let pending = p.fiscal_code.len();
        self.recorder.capture("manual operator capture", snapshot);
        self.metrics.gauge("ops.pending_captures", pending as u64);
    }
}
