//! FIXTURE (linted as crate `css-controller`, role Production): the
//! same observability calls fed only sanitized values — a keyed person
//! tag, a cardinality, and a non-person `.name` field. Must not fire.

impl Monitor {
    pub fn record(&self, p: &PersonIdentity, span: &mut Span) {
        let tag = person_tag(&self.key, &p.fiscal_code);
        span.attr(SpanAttr::actor(tag));
        self.metrics
            .counter("controller.persons_seen", p.fiscal_code.len() as u64);
    }

    pub fn label(&self, doc: &Document) {
        // `.name` on a non-person receiver is not identity material.
        self.metrics.gauge(doc.name.as_str(), 1);
    }

    pub fn rebind(&self, p: &PersonIdentity, span: &mut Span) {
        // A clean rebind shadows the tainted binding.
        let code = p.fiscal_code.clone();
        let code = code.len();
        span.attr(SpanAttr::actor(code));
    }
}
