//! FIXTURE (linted as crate `css-core`, role Production): a plaintext
//! fiscal code flowing into the flight recorder's capture reason —
//! whatever reaches `capture` is serialized into an incident bundle on
//! disk. Must fire `identity-taint` once on the capture sink.

impl OpsPlane {
    pub fn freeze(&self, p: &PersonIdentity, snapshot: &TelemetrySnapshot) {
        let reason = p.fiscal_code.clone();
        self.recorder.capture(reason, snapshot);
    }
}
