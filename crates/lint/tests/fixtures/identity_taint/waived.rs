//! FIXTURE (linted as crate `css-controller`, role Production): a
//! deliberate identity flow into a span attribute, waived inline. The
//! finding must land in `waived`, not `findings`.

impl Monitor {
    pub fn forensic_span(&self, p: &PersonIdentity, span: &mut Span) {
        // css-lint: allow(identity-taint): E14 forensic replay runs inside the sealed enclave only
        span.attr(SpanAttr::actor(p.fiscal_code.clone()));
    }
}
