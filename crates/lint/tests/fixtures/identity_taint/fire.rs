//! FIXTURE (linted as crate `css-controller`, role Production): three
//! plaintext identity flows into observability sinks. Must fire
//! `identity-taint` once per sink: a span attribute, a metric label,
//! and a bus publish of a decrypted notification.

impl Monitor {
    pub fn record(&self, p: &PersonIdentity, span: &mut Span) {
        let code = p.fiscal_code.clone();
        span.attr(SpanAttr::actor(code));
        self.metrics.counter(p.fiscal_code.as_str(), 1);
    }

    pub fn announce(&self, envelope: &Envelope) -> CssResult<()> {
        let notice = self.crypto.decrypt_notification(envelope)?;
        self.bus.publish(notice)?;
        Ok(())
    }
}
