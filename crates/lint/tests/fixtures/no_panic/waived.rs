//! FIXTURE (linted as crate `css-storage`, role Production): a panic
//! site carrying a justified inline waiver. The finding must land in
//! the *waived* set, not the active one.

pub fn init_once(&self) {
    // css-lint: allow(no-panic-hot-path): startup-only path; a poisoned init is unrecoverable by design
    self.cell.set(State::Ready).expect("init_once called twice");
}
