//! FIXTURE (linted as crate `css-storage`, role Production): the three
//! panic shapes on the hot path. Must fire `no-panic-hot-path` 3 times.

pub fn load(&self, key: &str) -> Record {
    let bytes = self.kv.get(key).unwrap();
    let record = Record::decode(&bytes).expect("decode");
    if record.version > MAX_VERSION {
        panic!("future record version");
    }
    record
}
