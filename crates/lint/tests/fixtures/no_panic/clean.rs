//! FIXTURE (linted as crate `css-storage`, role Production): the same
//! logic on `CssResult` error paths — `?`, `unwrap_or`, and a
//! `#[cfg(test)]` module where unwrap stays fine. Must not fire.

pub fn load(&self, key: &str) -> CssResult<Record> {
    let bytes = self.kv.get(key)?;
    let record = Record::decode(&bytes).unwrap_or_default();
    if record.version > MAX_VERSION {
        return Err(CssError::Corrupt("future record version".into()));
    }
    Ok(record)
}

#[cfg(test)]
mod tests {
    #[test]
    fn roundtrip() {
        let r = store.load("k").unwrap();
        assert_eq!(r.version, 1);
    }
}
