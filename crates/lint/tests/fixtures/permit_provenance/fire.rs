//! FIXTURE (linted as crate `css-controller`, role Production): mints a
//! `Decision::Permit` outside css-policy. Must fire `permit-provenance`.

pub fn shortcut() -> Decision {
    Decision::Permit {
        policy_id: PolicyId(7),
        purpose: Purpose::HealthcareTreatment,
    }
}
