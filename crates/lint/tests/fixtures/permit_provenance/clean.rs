//! FIXTURE (linted as crate `css-controller`, role Production): only
//! *pattern-matches* the Permit variant — match arm, rest pattern,
//! `if let`, and a match guard. Must not fire.

pub fn consume(decision: Decision) -> bool {
    match decision {
        Decision::Permit { policy_id } if policy_id.0 > 0 => true,
        Decision::Permit { .. } => true,
        _ => false,
    }
}

pub fn peek(decision: &Decision) -> Option<PolicyId> {
    if let Decision::Permit { policy_id } = decision {
        return Some(*policy_id);
    }
    None
}
