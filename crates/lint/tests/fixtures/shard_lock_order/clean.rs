//! FIXTURE (linted as crate `css-controller`, role Production): the
//! allowed shapes — ascending pairs, one-at-a-time loops (both live
//! idioms), and release-before-reacquire. Must not fire.

impl IndexShards {
    pub fn merge_up(&self) -> usize {
        let low = self.shards[1].lock();
        let high = self.shards[3].lock();
        low.len() + high.len()
    }

    pub fn scatter_gather(&self) -> usize {
        let mut total = 0;
        for i in 0..self.shards.len() {
            let guard = self.shards[i].lock();
            total += guard.len();
        }
        total
    }

    pub fn reacquire(&self) -> usize {
        let first = self.shards[4].lock();
        let n = first.len();
        drop(first);
        let second = self.shards[0].lock();
        n + second.len()
    }
}
