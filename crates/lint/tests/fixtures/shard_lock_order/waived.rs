//! FIXTURE (linted as crate `css-controller`, role Production): a
//! descending acquisition under an external quiesce, waived inline.

impl AuditShards {
    pub fn rebalance(&self) -> usize {
        let donor = self.shards[5].lock();
        // css-lint: allow(shard-lock-order): rebalance runs under the global quiesce; no concurrent acquirers
        let target = self.shards[2].lock();
        donor.len() + target.len()
    }
}
