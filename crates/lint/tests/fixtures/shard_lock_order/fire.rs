//! FIXTURE (linted as crate `css-controller`, role Production): shard
//! guards acquired out of order. Must fire `shard-lock-order` twice:
//! a descending pair (3 then 1) and a same-index self-deadlock.

impl IndexShards {
    pub fn merge_down(&self) -> usize {
        let high = self.shards[3].lock();
        let low = self.shards[1].lock();
        high.len() + low.len()
    }

    pub fn double_acquire(&self) -> usize {
        let first = self.shards[2].lock();
        let again = self.shards[2].lock();
        first.len() + again.len()
    }
}
