//! Structural checks on the `--format json` output (schema version 1).
//! No JSON parser exists offline, so these assert on the exact
//! serialized shape — which is itself the compatibility contract for
//! downstream consumers of `LINT_REPORT.json`.

use css_lint::{render_json, Finding, Report, Severity};

fn sample_report() -> Report {
    Report {
        root: "/tmp/ws".into(),
        findings: vec![Finding {
            rule: "no-panic-hot-path",
            severity: Severity::Error,
            crate_name: "css-storage".into(),
            file: "crates/storage/src/kv.rs".into(),
            line: 42,
            message: "`.unwrap()` with \"quotes\"\nand a newline".into(),
            waive_reason: None,
        }],
        waived: vec![Finding {
            rule: "audit-before-release",
            severity: Severity::Error,
            crate_name: "css-gateway".into(),
            file: "crates/gateway/src/gateway.rs".into(),
            line: 7,
            message: "release without audit".into(),
            waive_reason: Some("E12 demo path".into()),
        }],
        files_scanned: 2,
    }
}

#[test]
fn json_has_versioned_envelope_and_summary() {
    let json = render_json(&sample_report());
    assert!(json.starts_with("{\"version\":1,\"root\":\"/tmp/ws\""));
    assert!(json.contains("\"rules\":["));
    assert!(
        json.contains("\"summary\":{\"errors\":1,\"warnings\":0,\"waived\":1,\"files_scanned\":2}")
    );
    assert!(json.ends_with("}\n"));
}

#[test]
fn json_lists_all_seven_rules_with_severities() {
    let json = render_json(&Report::default());
    for rule in [
        "detail-confinement",
        "permit-provenance",
        "audit-before-release",
        "no-panic-hot-path",
        "lock-across-io",
        "trace-hygiene",
        "layering",
    ] {
        assert!(
            json.contains(&format!("\"id\":\"{rule}\"")),
            "missing {rule}"
        );
    }
    assert!(json.contains("\"id\":\"lock-across-io\",\"severity\":\"warn\""));
    assert!(json.contains("\"id\":\"layering\",\"severity\":\"error\""));
}

#[test]
fn json_escapes_messages_and_carries_waive_reasons() {
    let json = render_json(&sample_report());
    // The quotes and newline in the message must be escaped, never raw.
    assert!(json.contains("\\\"quotes\\\"\\nand a newline"));
    assert!(!json.contains("and a newline\","));
    // Waived entries carry their reason; active ones have none.
    assert!(json.contains("\"reason\":\"E12 demo path\""));
    let findings_section =
        &json[json.find("\"findings\":").unwrap()..json.find("\"waived\":").unwrap()];
    assert!(!findings_section.contains("\"reason\""));
}

#[test]
fn finding_fields_appear_in_contract_order() {
    let json = render_json(&sample_report());
    let f = &json[json.find("\"findings\":").unwrap()..];
    let order = [
        "\"rule\":",
        "\"severity\":",
        "\"crate\":",
        "\"file\":",
        "\"line\":",
        "\"message\":",
    ];
    let mut last = 0usize;
    for key in order {
        let at = f.find(key).unwrap_or_else(|| panic!("missing {key}"));
        assert!(at > last, "{key} out of order");
        last = at;
    }
}
