//! Structural checks on the `--format json` output (schema version 2).
//! These assert on the exact serialized shape — which is itself the
//! compatibility contract for downstream consumers of
//! `LINT_REPORT.json` — and then re-parse the document with the crate's
//! own JSON value parser as a well-formedness check.

use css_lint::cache::parse_json;
use css_lint::{render_json, Finding, Report, Severity, Timing};

fn sample_report() -> Report {
    Report {
        root: "/tmp/ws".into(),
        findings: vec![Finding {
            rule: "no-panic-hot-path",
            severity: Severity::Error,
            crate_name: "css-storage".into(),
            file: "crates/storage/src/kv.rs".into(),
            line: 42,
            message: "`.unwrap()` with \"quotes\"\nand a newline".into(),
            waive_reason: None,
        }],
        waived: vec![Finding {
            rule: "audit-before-release",
            severity: Severity::Error,
            crate_name: "css-gateway".into(),
            file: "crates/gateway/src/gateway.rs".into(),
            line: 7,
            message: "release without audit".into(),
            waive_reason: Some("E12 demo path".into()),
        }],
        files_scanned: 2,
        timing: None,
    }
}

#[test]
fn json_has_versioned_envelope_and_summary() {
    let json = render_json(&sample_report());
    assert!(json.starts_with("{\"version\":2,\"root\":\"/tmp/ws\""));
    assert!(json.contains("\"rules\":["));
    assert!(
        json.contains("\"summary\":{\"errors\":1,\"warnings\":0,\"waived\":1,\"files_scanned\":2}")
    );
    assert!(json.ends_with("}\n"));
    assert!(parse_json(&json).is_some(), "report must be well-formed");
}

#[test]
fn json_lists_all_ten_rules_with_severities() {
    let json = render_json(&Report::default());
    for rule in [
        "detail-confinement",
        "permit-provenance",
        "audit-before-release",
        "identity-taint",
        "no-panic-hot-path",
        "lock-across-io",
        "shard-lock-order",
        "unchecked-backpressure",
        "trace-hygiene",
        "layering",
    ] {
        assert!(
            json.contains(&format!("\"id\":\"{rule}\"")),
            "missing {rule}"
        );
    }
    assert!(json.contains("\"id\":\"lock-across-io\",\"severity\":\"warn\""));
    assert!(json.contains("\"id\":\"unchecked-backpressure\",\"severity\":\"warn\""));
    assert!(json.contains("\"id\":\"identity-taint\",\"severity\":\"error\""));
    assert!(json.contains("\"id\":\"shard-lock-order\",\"severity\":\"error\""));
    assert!(json.contains("\"id\":\"layering\",\"severity\":\"error\""));
}

#[test]
fn json_escapes_messages_and_carries_waive_reasons() {
    let json = render_json(&sample_report());
    // The quotes and newline in the message must be escaped, never raw.
    assert!(json.contains("\\\"quotes\\\"\\nand a newline"));
    assert!(!json.contains("and a newline\","));
    // Waived entries carry their reason; active ones have none.
    assert!(json.contains("\"reason\":\"E12 demo path\""));
    let findings_section =
        &json[json.find("\"findings\":").unwrap()..json.find("\"waived\":").unwrap()];
    assert!(!findings_section.contains("\"reason\""));
}

#[test]
fn finding_fields_appear_in_contract_order() {
    let json = render_json(&sample_report());
    let f = &json[json.find("\"findings\":").unwrap()..];
    let order = [
        "\"rule\":",
        "\"severity\":",
        "\"crate\":",
        "\"file\":",
        "\"line\":",
        "\"message\":",
    ];
    let mut last = 0usize;
    for key in order {
        let at = f.find(key).unwrap_or_else(|| panic!("missing {key}"));
        assert!(at > last, "{key} out of order");
        last = at;
    }
}

#[test]
fn timing_is_absent_by_default_and_rendered_when_set() {
    let mut report = sample_report();
    assert!(!render_json(&report).contains("\"timing\""));
    report.timing = Some(Timing {
        wall_ms: 123,
        files_reused: 40,
        files_parsed: 2,
    });
    let json = render_json(&report);
    assert!(json.contains("\"timing\":{\"wall_ms\":123,\"files_reused\":40,\"files_parsed\":2}"));
    assert!(parse_json(&json).is_some());
}
