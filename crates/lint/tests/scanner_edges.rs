//! Scanner edge cases the flow rules lean on: raw strings with hash
//! guards, strings containing comment openers, shifted-line method
//! chains, and `let`-adjacent syntax that must not confuse the token
//! stream the dataflow walkers consume.

use css_lint::scanner::{scan, TokenKind};
use css_lint::{lint_file_source, FileRole};

fn idents(src: &str) -> Vec<String> {
    scan(src)
        .tokens
        .into_iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text)
        .collect()
}

#[test]
fn raw_strings_with_hash_guards_hide_their_interior() {
    // The interior `"#` must not end the r## string early; `unwrap`
    // inside it must never become an identifier token.
    let src = r####"fn f() { let x = r##"inner "# quote and .unwrap() text"##; }"####;
    let names = idents(src);
    assert!(names.contains(&"f".to_string()));
    assert!(!names.contains(&"unwrap".to_string()), "{names:?}");
}

#[test]
fn comment_openers_inside_strings_do_not_start_comments() {
    let src = "fn f() { let url = \"https://host/path\"; let y = 1; }";
    let names = idents(src);
    assert!(names.contains(&"y".to_string()), "{names:?}");
}

#[test]
fn line_numbers_survive_multiline_raw_strings() {
    let src = "fn f() {\n    let x = r#\"line\nline\nline\"#;\n    g()\n}";
    let scan = scan(src);
    let g = scan
        .tokens
        .iter()
        .find(|t| t.is_ident("g"))
        .expect("g token");
    assert_eq!(g.line, 5, "line count must include raw-string newlines");
}

#[test]
fn method_chains_split_across_lines_still_taint() {
    // The field read and the sink are three lines apart; the walker
    // must connect them through the token stream, not line text.
    let src = "impl M {\n\
               \x20   pub fn f(&self, p: &PersonIdentity) {\n\
               \x20       let label = p\n\
               \x20           .fiscal_code\n\
               \x20           .clone();\n\
               \x20       self.metrics.counter(label, 1);\n\
               \x20   }\n\
               }\n";
    let hits = lint_file_source("css-controller", "src/x.rs", FileRole::Production, src);
    assert!(hits.iter().any(|f| f.rule == "identity-taint"), "{hits:#?}");
}

#[test]
fn let_else_divergence_does_not_leak_bindings() {
    // `let .. else { return }` introduces the binding for the rest of
    // the block; the else block itself must not bind it.
    let src = "impl M {\n\
               \x20   pub fn f(&self, p: &PersonIdentity) {\n\
               \x20       let Some(code) = p.fiscal_code.get(0..4) else {\n\
               \x20           return;\n\
               \x20       };\n\
               \x20       self.metrics.counter(code, 1);\n\
               \x20   }\n\
               }\n";
    let hits = lint_file_source("css-controller", "src/x.rs", FileRole::Production, src);
    assert!(
        hits.iter().any(|f| f.rule == "identity-taint"),
        "let-else bound taint lost: {hits:#?}"
    );
}

#[test]
fn shadowing_in_an_inner_block_is_scoped() {
    // The inner clean `code` shadows the tainted outer one only inside
    // the block; the outer use afterwards is still tainted.
    let src = "impl M {\n\
               \x20   pub fn f(&self, p: &PersonIdentity) {\n\
               \x20       let code = p.fiscal_code.clone();\n\
               \x20       {\n\
               \x20           let code = 0usize;\n\
               \x20           self.metrics.gauge(code, 1);\n\
               \x20       }\n\
               \x20       self.metrics.counter(code, 1);\n\
               \x20   }\n\
               }\n";
    let hits: Vec<_> = lint_file_source("css-controller", "src/x.rs", FileRole::Production, src)
        .into_iter()
        .filter(|f| f.rule == "identity-taint")
        .collect();
    assert_eq!(hits.len(), 1, "only the outer use fires: {hits:#?}");
    assert_eq!(hits[0].line, 8, "{hits:#?}");
}

#[test]
fn closures_capture_tainted_locals() {
    let src = "impl M {\n\
               \x20   pub fn f(&self, p: &PersonIdentity) {\n\
               \x20       let code = p.fiscal_code.clone();\n\
               \x20       let emit = || self.metrics.counter(code, 1);\n\
               \x20       emit();\n\
               \x20   }\n\
               }\n";
    let hits = lint_file_source("css-controller", "src/x.rs", FileRole::Production, src);
    assert!(
        hits.iter().any(|f| f.rule == "identity-taint"),
        "closure capture lost taint: {hits:#?}"
    );
}
