//! Self-check for the incremental facts cache: a warm run over an
//! unchanged workspace must reuse every file's facts and render a
//! byte-identical report; editing a file invalidates exactly that file.

use std::fs;
use std::path::{Path, PathBuf};

use css_lint::{lint_workspace_with_cache, render_json};

/// Build a throwaway two-crate workspace under a unique temp dir.
fn scratch_workspace(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("css-lint-incr-{tag}"));
    let _ = fs::remove_dir_all(&root);
    let write = |rel: &str, body: &str| {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, body).unwrap();
    };
    write(
        "Cargo.toml",
        "[workspace]\nmembers = [\"crates/core\", \"crates/controller\"]\n",
    );
    write(
        "crates/core/Cargo.toml",
        "[package]\nname = \"css-core\"\nversion = \"0.0.0\"\n\n[dependencies]\n",
    );
    write(
        "crates/controller/Cargo.toml",
        "[package]\nname = \"css-controller\"\nversion = \"0.0.0\"\n\n\
         [dependencies]\ncss-core = { path = \"../core\" }\n",
    );
    write(
        "crates/core/src/lib.rs",
        "pub fn admit(q: &Queue, req: Request) -> CssResult<u64> {\n    q.file(req)\n}\n",
    );
    write(
        "crates/controller/src/lib.rs",
        "impl Controller {\n\
         \x20   pub fn tick(&self, p: &PersonIdentity, span: &mut Span) {\n\
         \x20       // css-lint: allow(identity-taint): scratch fixture exercising the waiver path\n\
         \x20       span.attr(SpanAttr::actor(p.fiscal_code.clone()));\n\
         \x20   }\n\
         }\n",
    );
    root
}

fn run(root: &Path, cache: &Path) -> (String, usize, usize) {
    let (report, stats) = lint_workspace_with_cache(root, Some(cache)).expect("lint");
    (render_json(&report), stats.reused, stats.parsed)
}

#[test]
fn warm_run_reuses_every_file_and_is_byte_identical() {
    let root = scratch_workspace("warm");
    let cache = root.join("target/css-lint-cache.json");

    let (cold_json, cold_reused, cold_parsed) = run(&root, &cache);
    assert_eq!(cold_reused, 0, "first run must be fully cold");
    assert_eq!(cold_parsed, 2);

    let (warm_json, warm_reused, warm_parsed) = run(&root, &cache);
    assert_eq!(warm_reused, 2, "unchanged files must come from the cache");
    assert_eq!(warm_parsed, 0);
    assert_eq!(
        cold_json, warm_json,
        "cold and warm reports must be byte-identical"
    );
    // The waived identity-taint finding survives the cache round-trip.
    assert!(warm_json.contains("\"reason\":\"scratch fixture exercising the waiver path\""));

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn editing_a_file_invalidates_only_that_file() {
    let root = scratch_workspace("edit");
    let cache = root.join("target/css-lint-cache.json");
    run(&root, &cache);

    // Rewrite one file with different content (and different size, so
    // the stat key changes even on coarse-mtime filesystems).
    let edited = root.join("crates/core/src/lib.rs");
    fs::write(
        &edited,
        "pub fn admit(q: &Queue, req: Request) -> CssResult<u64> {\n    q.file(req)\n}\n\
         pub fn noop() {}\n",
    )
    .unwrap();

    let (_, reused, parsed) = run(&root, &cache);
    assert_eq!(reused, 1, "the untouched file stays cached");
    assert_eq!(parsed, 1, "the edited file re-parses");

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn corrupt_cache_degrades_to_a_cold_run() {
    let root = scratch_workspace("corrupt");
    let cache = root.join("target/css-lint-cache.json");
    let (cold_json, ..) = run(&root, &cache);

    fs::write(&cache, "{not json at all").unwrap();
    let (json, reused, parsed) = run(&root, &cache);
    assert_eq!(reused, 0);
    assert_eq!(parsed, 2);
    assert_eq!(cold_json, json);

    let _ = fs::remove_dir_all(&root);
}
