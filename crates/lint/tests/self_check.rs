//! The live workspace must be lint-clean: zero error findings (warns
//! and justified waivers are allowed). This is the same gate
//! `scripts/lint.sh` enforces in CI, run as a cargo test so a plain
//! `cargo test` catches regressions too.

use std::path::Path;

use css_lint::{lint_workspace, render_text};

#[test]
fn live_workspace_has_no_lint_errors() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let report = lint_workspace(&root).expect("lint the workspace");

    assert!(
        report.files_scanned > 100,
        "scanned only {} files — wrong root?",
        report.files_scanned
    );
    assert_eq!(
        report.errors(),
        0,
        "workspace has lint errors:\n{}",
        render_text(&report)
    );
    // Every waiver must carry its justification through to the report.
    for f in &report.waived {
        assert!(
            f.waive_reason.as_deref().is_some_and(|r| !r.is_empty()),
            "waived finding without reason: {f:?}"
        );
    }
}
