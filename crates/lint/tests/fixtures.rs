//! Every rule must demonstrably fire on its checked-in `fire` fixture
//! and stay silent on its `clean` twin. The fixtures live under
//! `tests/fixtures/` (cargo does not compile them; the lint reads them
//! as text), each linted as if it were production code of the crate
//! the rule targets.

use std::path::Path;

use css_lint::{lint_file_source, lint_workspace, FileRole, Finding, Severity};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lint a fixture as production code of `crate_name`; return active
/// (non-waived) findings for `rule` only.
fn fire(crate_name: &str, name: &str, rule: &str) -> Vec<Finding> {
    let src = fixture(name);
    lint_file_source(crate_name, name, FileRole::Production, &src)
        .into_iter()
        .filter(|f| f.rule == rule && !f.is_waived())
        .collect()
}

#[test]
fn detail_confinement_fires_and_clean_passes() {
    let hits = fire(
        "css-bus",
        "detail_confinement/fire.rs",
        "detail-confinement",
    );
    assert_eq!(hits.len(), 2, "DetailMessage + DetailStore: {hits:#?}");
    assert!(hits.iter().all(|f| f.severity == Severity::Error));
    assert!(hits[0].message.contains("DetailMessage"));

    let clean = fire(
        "css-bus",
        "detail_confinement/clean.rs",
        "detail-confinement",
    );
    assert!(clean.is_empty(), "clean fixture fired: {clean:#?}");
}

/// The broker stays payload-blind: a `BusDriver` impl instantiated
/// over a detail payload would let any transport inspect or journal
/// unfiltered person data, so naming one inside css-bus is an error.
#[test]
fn detail_confinement_covers_bus_driver_impls() {
    let hits = fire(
        "css-bus",
        "detail_confinement/driver_fire.rs",
        "detail-confinement",
    );
    assert_eq!(hits.len(), 2, "impl header + field: {hits:#?}");
    assert!(hits.iter().all(|f| f.severity == Severity::Error));
    assert!(hits.iter().all(|f| f.message.contains("DetailMessage")));

    // The same driver shape is fine in a crate outside the confinement
    // boundary (e.g. a producer-side adapter that legitimately holds
    // details before gateway persistence).
    let outside = fire(
        "css-gateway",
        "detail_confinement/driver_fire.rs",
        "detail-confinement",
    );
    assert!(outside.is_empty(), "fired outside boundary: {outside:#?}");
}

/// The ops plane is confined: were css-health able to name a detail
/// payload, any of its HTTP endpoints could leak it to a scraper.
#[test]
fn detail_confinement_covers_the_ops_plane() {
    let hits = fire(
        "css-health",
        "detail_confinement/fire.rs",
        "detail-confinement",
    );
    assert_eq!(hits.len(), 2, "DetailMessage + DetailStore: {hits:#?}");
    assert!(hits.iter().all(|f| f.severity == Severity::Error));
}

/// The flight recorder is confined too: its bundles are written to
/// disk and served over HTTP, so css-blackbox must be structurally
/// unable to name a detail payload.
#[test]
fn detail_confinement_covers_the_flight_recorder() {
    let hits = fire(
        "css-blackbox",
        "detail_confinement/fire.rs",
        "detail-confinement",
    );
    assert_eq!(hits.len(), 2, "DetailMessage + DetailStore: {hits:#?}");
    assert!(hits.iter().all(|f| f.severity == Severity::Error));

    let clean = fire(
        "css-blackbox",
        "detail_confinement/clean.rs",
        "detail-confinement",
    );
    assert!(clean.is_empty(), "clean fixture fired: {clean:#?}");
}

/// The history store is confined as well: its ring buffers outlive any
/// single request and are served over `/query`, so css-chronicle must
/// be structurally unable to name a detail payload.
#[test]
fn detail_confinement_covers_the_chronicle() {
    let hits = fire(
        "css-chronicle",
        "detail_confinement/fire.rs",
        "detail-confinement",
    );
    assert_eq!(hits.len(), 2, "DetailMessage + DetailStore: {hits:#?}");
    assert!(hits.iter().all(|f| f.severity == Severity::Error));

    let clean = fire(
        "css-chronicle",
        "detail_confinement/clean.rs",
        "detail-confinement",
    );
    assert!(clean.is_empty(), "clean fixture fired: {clean:#?}");
}

#[test]
fn detail_confinement_chronicle_waiver_moves_finding_to_waived() {
    let src = fixture("detail_confinement/chronicle_waived.rs");
    let all = lint_file_source(
        "css-chronicle",
        "detail_confinement/chronicle_waived.rs",
        FileRole::Production,
        &src,
    );
    let (waived, active): (Vec<_>, Vec<_>) = all.into_iter().partition(|f| f.is_waived());
    assert!(
        active.iter().all(|f| f.rule != "detail-confinement"),
        "{active:#?}"
    );
    assert_eq!(waived.len(), 1, "{waived:#?}");
    assert!(waived[0]
        .waive_reason
        .as_deref()
        .unwrap_or("")
        .contains("negative assertion"));
}

#[test]
fn detail_confinement_blackbox_waiver_moves_finding_to_waived() {
    let src = fixture("detail_confinement/blackbox_waived.rs");
    let all = lint_file_source(
        "css-blackbox",
        "detail_confinement/blackbox_waived.rs",
        FileRole::Production,
        &src,
    );
    let (waived, active): (Vec<_>, Vec<_>) = all.into_iter().partition(|f| f.is_waived());
    assert!(
        active.iter().all(|f| f.rule != "detail-confinement"),
        "{active:#?}"
    );
    assert_eq!(waived.len(), 1, "{waived:#?}");
    assert!(waived[0]
        .waive_reason
        .as_deref()
        .unwrap_or("")
        .contains("negative assertion"));
}

#[test]
fn detail_confinement_ignores_unconfined_crates() {
    // The same source in the gateway crate (where details legitimately
    // live) is fine.
    let hits = fire(
        "css-gateway",
        "detail_confinement/fire.rs",
        "detail-confinement",
    );
    assert!(hits.is_empty());
}

#[test]
fn permit_provenance_fires_and_clean_passes() {
    let hits = fire(
        "css-controller",
        "permit_provenance/fire.rs",
        "permit-provenance",
    );
    assert_eq!(hits.len(), 1, "{hits:#?}");
    assert!(hits[0].message.contains("deny-by-default"));

    let clean = fire(
        "css-controller",
        "permit_provenance/clean.rs",
        "permit-provenance",
    );
    assert!(
        clean.is_empty(),
        "patterns misread as construction: {clean:#?}"
    );
}

#[test]
fn permit_provenance_allows_css_policy() {
    let hits = fire(
        "css-policy",
        "permit_provenance/fire.rs",
        "permit-provenance",
    );
    assert!(hits.is_empty(), "the PDP itself may mint permits");
}

#[test]
fn audit_before_release_fires_and_clean_passes() {
    let hits = fire(
        "css-controller",
        "audit_release/fire.rs",
        "audit-before-release",
    );
    assert_eq!(hits.len(), 1, "{hits:#?}");
    assert!(hits[0].message.contains("deliver"));

    let clean = fire(
        "css-controller",
        "audit_release/clean.rs",
        "audit-before-release",
    );
    assert!(
        clean.is_empty(),
        "audited/forwarding fns flagged: {clean:#?}"
    );
}

#[test]
fn no_panic_hot_path_fires_and_clean_passes() {
    let hits = fire("css-storage", "no_panic/fire.rs", "no-panic-hot-path");
    assert_eq!(hits.len(), 3, "unwrap + expect + panic!: {hits:#?}");

    let clean = fire("css-storage", "no_panic/clean.rs", "no-panic-hot-path");
    assert!(clean.is_empty(), "clean fixture fired: {clean:#?}");
}

#[test]
fn no_panic_waiver_moves_finding_to_waived() {
    let src = fixture("no_panic/waived.rs");
    let all = lint_file_source(
        "css-storage",
        "no_panic/waived.rs",
        FileRole::Production,
        &src,
    );
    let (waived, active): (Vec<_>, Vec<_>) = all.into_iter().partition(|f| f.is_waived());
    assert!(
        active.iter().all(|f| f.rule != "no-panic-hot-path"),
        "{active:#?}"
    );
    assert_eq!(waived.len(), 1);
    assert!(waived[0]
        .waive_reason
        .as_deref()
        .unwrap_or("")
        .contains("startup-only"));
}

#[test]
fn test_role_files_are_exempt_from_file_rules() {
    // The fire fixtures themselves, read with their real role (Test),
    // must produce nothing — this is what keeps the self-check clean.
    for (krate, name) in [
        ("css-bus", "detail_confinement/fire.rs"),
        ("css-controller", "permit_provenance/fire.rs"),
        ("css-controller", "audit_release/fire.rs"),
        ("css-storage", "no_panic/fire.rs"),
        ("css-storage", "lock_across_io/fire.rs"),
        ("css-controller", "trace_hygiene/fire.rs"),
    ] {
        let src = fixture(name);
        let hits = lint_file_source(krate, name, FileRole::Test, &src);
        assert!(hits.is_empty(), "{name} fired with Test role: {hits:#?}");
    }
}

#[test]
fn lock_across_io_fires_and_clean_passes() {
    let hits = fire("css-storage", "lock_across_io/fire.rs", "lock-across-io");
    assert_eq!(hits.len(), 2, "global + per-shard guard: {hits:#?}");
    assert_eq!(hits[0].severity, Severity::Warn);
    assert!(
        hits[0].message.contains("index"),
        "names the guard: {hits:#?}"
    );
    assert!(
        hits[1].message.contains("`shard`"),
        "names the per-shard guard: {hits:#?}"
    );

    let clean = fire("css-storage", "lock_across_io/clean.rs", "lock-across-io");
    assert!(clean.is_empty(), "allowed shapes flagged: {clean:#?}");
}

#[test]
fn trace_hygiene_fires_and_clean_passes() {
    let hits = fire("css-controller", "trace_hygiene/fire.rs", "trace-hygiene");
    assert_eq!(hits.len(), 2, "AttrValue + SpanAttr::raw: {hits:#?}");
    assert!(hits.iter().all(|f| f.severity == Severity::Error));
    assert!(hits[0].message.contains("AttrValue"));
    assert!(hits[1].message.contains("SpanAttr::raw"));

    let clean = fire("css-controller", "trace_hygiene/clean.rs", "trace-hygiene");
    assert!(clean.is_empty(), "closed constructors flagged: {clean:#?}");
}

/// Exemplars carry only `(trace_id, timestamp)` and the enforcement
/// path tags spans through the closed constructor set — the shape the
/// recorder depends on stays inside the hygiene rule.
#[test]
fn trace_hygiene_passes_the_exemplar_stamping_shape() {
    let clean = fire(
        "css-controller",
        "trace_hygiene/exemplar_clean.rs",
        "trace-hygiene",
    );
    assert!(clean.is_empty(), "exemplar path flagged: {clean:#?}");
}

#[test]
fn trace_hygiene_exempts_the_trace_crate_itself() {
    let hits = fire("css-trace", "trace_hygiene/fire.rs", "trace-hygiene");
    assert!(hits.is_empty(), "css-trace may name its own internals");
}

#[test]
fn layering_fires_on_upward_dep_and_clean_passes() {
    let base = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/layering");

    let report = lint_workspace(&base.join("fire")).expect("lint fire workspace");
    let hits: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "layering")
        .collect();
    assert_eq!(hits.len(), 1, "{:#?}", report.findings);
    assert!(hits[0].message.contains("css-controller"));
    assert!(hits[0].file.ends_with("Cargo.toml"));

    let report = lint_workspace(&base.join("clean")).expect("lint clean workspace");
    assert!(
        report.findings.iter().all(|f| f.rule != "layering"),
        "{:#?}",
        report.findings
    );
}

/// css-blackbox sits on layer 3 beside css-health: a production dep on
/// health must fire, while the lower-layer-only manifest (with health
/// as a dev-dependency) must pass.
#[test]
fn layering_constrains_the_blackbox_crate() {
    let base = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/layering");

    let report = lint_workspace(&base.join("blackbox_fire")).expect("lint blackbox_fire");
    let hits: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "layering")
        .collect();
    assert_eq!(hits.len(), 1, "{:#?}", report.findings);
    assert!(hits[0].message.contains("css-health"), "{hits:#?}");
    assert!(hits[0].file.contains("blackbox"), "{hits:#?}");

    let report = lint_workspace(&base.join("blackbox_clean")).expect("lint blackbox_clean");
    assert!(
        report.findings.iter().all(|f| f.rule != "layering"),
        "dev-dep on css-health must not fire: {:#?}",
        report.findings
    );
}

/// css-chronicle joins layer 3 beside css-health and css-blackbox: a
/// production dep on health must fire, while the lower-layer-only
/// manifest (with health as a dev-dependency) must pass.
#[test]
fn layering_constrains_the_chronicle_crate() {
    let base = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/layering");

    let report = lint_workspace(&base.join("chronicle_fire")).expect("lint chronicle_fire");
    let hits: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "layering")
        .collect();
    assert_eq!(hits.len(), 1, "{:#?}", report.findings);
    assert!(hits[0].message.contains("css-health"), "{hits:#?}");
    assert!(hits[0].file.contains("chronicle"), "{hits:#?}");

    let report = lint_workspace(&base.join("chronicle_clean")).expect("lint chronicle_clean");
    assert!(
        report.findings.iter().all(|f| f.rule != "layering"),
        "dev-dep on css-health must not fire: {:#?}",
        report.findings
    );
}

#[test]
fn malformed_waiver_is_itself_a_finding() {
    let src = "fn f() {\n    // css-lint: allow(no-panic-hot-path)\n    x.unwrap();\n}\n";
    let all = lint_file_source("css-storage", "src/x.rs", FileRole::Production, src);
    assert!(
        all.iter().any(|f| f.rule == "waiver-syntax"),
        "reason-less waiver must be rejected: {all:#?}"
    );
    // And the waiver does NOT suppress the panic finding.
    assert!(all
        .iter()
        .any(|f| f.rule == "no-panic-hot-path" && !f.is_waived()));
}

#[test]
fn identity_taint_fires_on_span_metric_and_publish() {
    let hits = fire("css-controller", "identity_taint/fire.rs", "identity-taint");
    assert_eq!(hits.len(), 3, "span + metric + publish: {hits:#?}");
    assert!(hits.iter().all(|f| f.severity == Severity::Error));
    assert!(
        hits[0].message.contains("SpanAttr::actor"),
        "first hit names the span sink: {hits:#?}"
    );
    assert!(
        hits[1].message.contains("metric name"),
        "second hit names the metric sink: {hits:#?}"
    );
    assert!(
        hits[2].message.contains("bus publish"),
        "third hit names the publish sink: {hits:#?}"
    );

    let clean = fire(
        "css-controller",
        "identity_taint/clean.rs",
        "identity-taint",
    );
    assert!(clean.is_empty(), "sanitized flows flagged: {clean:#?}");
}

/// Whatever reaches `.capture(..)` is frozen into an on-disk incident
/// bundle, so the capture reason is a taint sink like a metric name.
#[test]
fn identity_taint_fires_on_bundle_capture() {
    let hits = fire(
        "css-core",
        "identity_taint/capture_fire.rs",
        "identity-taint",
    );
    assert_eq!(hits.len(), 1, "{hits:#?}");
    assert!(
        hits[0].message.contains("incident bundle capture"),
        "names the capture sink: {hits:#?}"
    );

    let clean = fire(
        "css-core",
        "identity_taint/capture_clean.rs",
        "identity-taint",
    );
    assert!(clean.is_empty(), "sanitized capture flagged: {clean:#?}");
}

#[test]
fn identity_taint_waiver_moves_finding_to_waived() {
    let src = fixture("identity_taint/waived.rs");
    let all = lint_file_source(
        "css-controller",
        "identity_taint/waived.rs",
        FileRole::Production,
        &src,
    );
    let (waived, active): (Vec<_>, Vec<_>) = all.into_iter().partition(|f| f.is_waived());
    assert!(
        active.iter().all(|f| f.rule != "identity-taint"),
        "{active:#?}"
    );
    assert_eq!(waived.len(), 1, "{waived:#?}");
    assert!(waived[0]
        .waive_reason
        .as_deref()
        .unwrap_or("")
        .contains("sealed enclave"));
}

#[test]
fn shard_lock_order_fires_and_clean_passes() {
    let hits = fire(
        "css-controller",
        "shard_lock_order/fire.rs",
        "shard-lock-order",
    );
    assert_eq!(hits.len(), 2, "descending + same-index: {hits:#?}");
    assert!(hits.iter().all(|f| f.severity == Severity::Error));
    assert!(
        hits[0].message.contains("descending") || hits[0].message.contains("order"),
        "{hits:#?}"
    );

    let clean = fire(
        "css-controller",
        "shard_lock_order/clean.rs",
        "shard-lock-order",
    );
    assert!(clean.is_empty(), "allowed shapes flagged: {clean:#?}");
}

#[test]
fn shard_lock_order_waiver_moves_finding_to_waived() {
    let src = fixture("shard_lock_order/waived.rs");
    let all = lint_file_source(
        "css-controller",
        "shard_lock_order/waived.rs",
        FileRole::Production,
        &src,
    );
    let (waived, active): (Vec<_>, Vec<_>) = all.into_iter().partition(|f| f.is_waived());
    assert!(
        active.iter().all(|f| f.rule != "shard-lock-order"),
        "{active:#?}"
    );
    assert_eq!(waived.len(), 1, "{waived:#?}");
    assert!(waived[0]
        .waive_reason
        .as_deref()
        .unwrap_or("")
        .contains("quiesce"));
}

#[test]
fn unchecked_backpressure_fires_and_clean_passes() {
    let hits = fire("css-core", "backpressure/fire.rs", "unchecked-backpressure");
    assert_eq!(hits.len(), 2, "swallowed + unhandled-caller: {hits:#?}");
    assert!(hits.iter().all(|f| f.severity == Severity::Warn));
    assert!(hits.iter().all(|f| f.message.contains("Backpressure")));

    let clean = fire(
        "css-core",
        "backpressure/clean.rs",
        "unchecked-backpressure",
    );
    assert!(
        clean.is_empty(),
        "handled/boundary filings flagged: {clean:#?}"
    );
}

#[test]
fn unchecked_backpressure_waiver_moves_finding_to_waived() {
    let src = fixture("backpressure/waived.rs");
    let all = lint_file_source(
        "css-core",
        "backpressure/waived.rs",
        FileRole::Production,
        &src,
    );
    let (waived, active): (Vec<_>, Vec<_>) = all.into_iter().partition(|f| f.is_waived());
    assert!(
        active.iter().all(|f| f.rule != "unchecked-backpressure"),
        "{active:#?}"
    );
    assert_eq!(waived.len(), 1, "{waived:#?}");
    assert!(waived[0]
        .waive_reason
        .as_deref()
        .unwrap_or("")
        .contains("telemetry"));
}

#[test]
fn audit_before_release_is_call_graph_transitive() {
    let hits = fire(
        "css-controller",
        "audit_release/transitive.rs",
        "audit-before-release",
    );
    assert_eq!(hits.len(), 1, "only the unaudited chain fires: {hits:#?}");
    assert!(
        hits[0].message.contains("hand_off"),
        "fires on the unaudited fn, not the audited one: {hits:#?}"
    );
}

#[test]
fn new_rule_fire_fixtures_are_exempt_in_test_role() {
    for (krate, name) in [
        ("css-controller", "identity_taint/fire.rs"),
        ("css-controller", "shard_lock_order/fire.rs"),
        ("css-core", "backpressure/fire.rs"),
        ("css-controller", "audit_release/transitive.rs"),
    ] {
        let src = fixture(name);
        let hits = lint_file_source(krate, name, FileRole::Test, &src);
        assert!(hits.is_empty(), "{name} fired with Test role: {hits:#?}");
    }
}
