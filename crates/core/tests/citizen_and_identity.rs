//! Tests for the Section 7 extensions: citizen-facing access (PHR view,
//! consent control, subject audit trail) and credential-based identity
//! management.

use std::sync::Arc;

use css_audit::AuditAction;
use css_core::prelude::*;
use css_core::{CssPlatform, MemoryProvider};
use css_types::Clock;

struct World {
    platform: CssPlatform<MemoryProvider>,
    clock: SimClock,
    hospital: ActorId,
    doctor: ActorId,
}

fn schema(hospital: ActorId) -> EventSchema {
    EventSchema::new(EventTypeId::v1("visit"), "Visit", hospital)
        .field(FieldDef::required("PatientId", FieldKind::Integer))
        .field(FieldDef::optional("Notes", FieldKind::Text).sensitive())
}

fn anna() -> PersonIdentity {
    PersonIdentity {
        id: PersonId(9),
        fiscal_code: "NNA123".into(),
        name: "Anna".into(),
        surname: "Bianchi".into(),
    }
}

fn setup() -> World {
    let clock = SimClock::starting_at(Timestamp(10_000));
    let mut platform = CssPlatform::in_memory_with_clock(Arc::new(clock.clone()));
    let hospital = platform.register_organization("Hospital").unwrap();
    let doctor = platform.register_organization("Doctor").unwrap();
    platform.join(hospital, Role::Producer).unwrap();
    platform.join(doctor, Role::Consumer).unwrap();
    let producer = platform.producer(hospital).unwrap();
    producer.declare(&schema(hospital), None).unwrap();
    producer
        .policy_wizard(&EventTypeId::v1("visit"))
        .unwrap()
        .select_all_fields()
        .grant_to([doctor])
        .unwrap()
        .for_purposes([Purpose::HealthcareTreatment])
        .labeled("doctor-visits", "")
        .save()
        .unwrap();
    World {
        platform,
        clock,
        hospital,
        doctor,
    }
}

fn publish(w: &World, n: u64) {
    let producer = w.platform.producer(w.hospital).unwrap();
    for i in 0..n {
        producer
            .publish(
                anna(),
                format!("visit {i}"),
                EventDetails::new(EventTypeId::v1("visit"))
                    .with("PatientId", FieldValue::Integer(9))
                    .with("Notes", FieldValue::Text("checkup".into())),
                w.clock.now().plus(Duration::minutes(i)),
            )
            .unwrap();
    }
}

#[test]
fn citizen_sees_full_profile_regardless_of_policies() {
    let w = setup();
    publish(&w, 5);
    let citizen = w.platform.citizen(PersonId(9));
    let profile = citizen.my_profile().unwrap();
    assert_eq!(profile.len(), 5);
    // Timeline order.
    let times: Vec<_> = profile.iter().map(|n| n.occurred_at).collect();
    let mut sorted = times.clone();
    sorted.sort();
    assert_eq!(times, sorted);
    // Another citizen sees nothing of Anna's.
    assert!(w
        .platform
        .citizen(PersonId(777))
        .my_profile()
        .unwrap()
        .is_empty());
}

#[test]
fn citizen_audit_trail_lists_consumers_and_purposes() {
    let w = setup();
    publish(&w, 1);
    let consumer = w.platform.consumer(w.doctor).unwrap();
    let seen = consumer.inquire_by_person(PersonId(9)).unwrap();
    consumer
        .request_details(&seen[0], Purpose::HealthcareTreatment)
        .unwrap();

    let citizen = w.platform.citizen(PersonId(9));
    let trail = citizen.who_accessed_my_data().unwrap();
    let detail_requests: Vec<_> = trail
        .iter()
        .filter(|r| r.action == AuditAction::DetailRequest)
        .collect();
    assert_eq!(detail_requests.len(), 1);
    assert_eq!(detail_requests[0].actor, w.doctor);
    assert_eq!(
        detail_requests[0].purpose,
        Some(Purpose::HealthcareTreatment)
    );
    // The subject-access lookups themselves are audited.
    let subject_views = w
        .platform
        .audit_query(&css_audit::AuditQuery::new().action(AuditAction::SubjectAccess));
    assert!(!subject_views.is_empty());
}

#[test]
fn citizen_opt_out_and_back_in() {
    let w = setup();
    let citizen = w.platform.citizen(PersonId(9));
    citizen.opt_out(ConsentScope::All).unwrap();
    let producer = w.platform.producer(w.hospital).unwrap();
    let publish_result = producer.publish(
        anna(),
        "visit",
        EventDetails::new(EventTypeId::v1("visit")).with("PatientId", FieldValue::Integer(9)),
        w.clock.now(),
    );
    assert!(matches!(publish_result, Err(CssError::ConsentWithheld(_))));
    // Opting back in restores the flow.
    w.clock.advance(Duration::minutes(1));
    citizen.opt_in(ConsentScope::All).unwrap();
    publish(&w, 1);
    assert_eq!(citizen.my_profile().unwrap().len(), 1);
}

#[test]
fn identity_enforcement_gates_handles() {
    let mut w = setup();
    let cred = w.platform.issue_credential(w.doctor).unwrap();
    let producer_cred = w.platform.issue_credential(w.hospital).unwrap();
    w.platform.enable_identity_enforcement();

    // Plain handles are refused.
    assert!(matches!(
        w.platform.consumer(w.doctor),
        Err(CssError::CredentialRequired(_))
    ));
    assert!(matches!(
        w.platform.producer(w.hospital),
        Err(CssError::CredentialRequired(_))
    ));

    // Credentialed handles work.
    let consumer = w.platform.consumer_with_credential(&cred).unwrap();
    assert_eq!(consumer.actor(), w.doctor);
    let producer = w.platform.producer_with_credential(&producer_cred).unwrap();
    assert_eq!(producer.actor(), w.hospital);

    // Forged credentials fail.
    let mut forged = cred.clone();
    forged.tag[5] ^= 0x10;
    assert!(w.platform.consumer_with_credential(&forged).is_err());

    // Revocation takes effect at handle acquisition.
    w.platform.revoke_credential(cred.serial);
    assert!(w.platform.consumer_with_credential(&cred).is_err());
}

#[test]
fn credential_requires_membership() {
    let mut w = setup();
    let ghost = w.platform.register_organization("Ghost").unwrap();
    assert!(matches!(
        w.platform.issue_credential(ghost),
        Err(CssError::NoContract(_))
    ));
}

#[test]
fn credential_rotation_supersedes_old() {
    let mut w = setup();
    let old = w.platform.issue_credential(w.doctor).unwrap();
    let new = w.platform.issue_credential(w.doctor).unwrap();
    w.platform.enable_identity_enforcement();
    assert!(w.platform.consumer_with_credential(&old).is_err());
    assert!(w.platform.consumer_with_credential(&new).is_ok());
}

#[test]
fn time_window_inquiry() {
    let w = setup();
    publish(&w, 10); // events at now + 0..9 minutes
    let consumer = w.platform.consumer(w.doctor).unwrap();
    let start = w.clock.now();
    let window = consumer
        .inquire_between(
            start.plus(Duration::minutes(2)),
            start.plus(Duration::minutes(5)),
        )
        .unwrap();
    assert_eq!(window.len(), 4); // minutes 2,3,4,5
    let all = consumer
        .inquire_between(Timestamp::EPOCH, start.plus(Duration::days(1)))
        .unwrap();
    assert_eq!(all.len(), 10);
}
