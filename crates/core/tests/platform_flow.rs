//! Tests of the facade: onboarding, wizard-driven elicitation, the
//! pending-access-request flow, and handle ergonomics.

use std::sync::Arc;

use css_core::prelude::*;
use css_core::{AccessRequestStatus, CssPlatform, MemoryProvider};
use css_types::Clock;

struct World {
    platform: CssPlatform<MemoryProvider>,
    clock: SimClock,
    hospital: ActorId,
    doctor: ActorId,
    welfare: ActorId,
}

fn blood_test(hospital: ActorId) -> EventSchema {
    EventSchema::new(EventTypeId::v1("blood-test"), "Blood Test", hospital)
        .field(FieldDef::required("PatientId", FieldKind::Integer))
        .field(FieldDef::required("Result", FieldKind::Text).sensitive())
        .field(FieldDef::optional("Notes", FieldKind::Text).sensitive())
}

fn mario() -> PersonIdentity {
    PersonIdentity {
        id: PersonId(42),
        fiscal_code: "RSSMRA45C12L378Y".into(),
        name: "Mario".into(),
        surname: "Rossi".into(),
    }
}

fn details() -> EventDetails {
    EventDetails::new(EventTypeId::v1("blood-test"))
        .with("PatientId", FieldValue::Integer(42))
        .with("Result", FieldValue::Text("negative".into()))
        .with("Notes", FieldValue::Text("fasting".into()))
}

fn setup() -> World {
    let clock = SimClock::starting_at(Timestamp(1_000));
    let mut platform = CssPlatform::in_memory_with_clock(Arc::new(clock.clone()));
    let hospital = platform.register_organization("Hospital S. Maria").unwrap();
    let doctor = platform.register_organization("Family Doctor").unwrap();
    let welfare = platform.register_organization("Social Welfare").unwrap();
    platform.join(hospital, Role::Producer).unwrap();
    platform.join(doctor, Role::Consumer).unwrap();
    platform.join(welfare, Role::Consumer).unwrap();
    platform
        .producer(hospital)
        .unwrap()
        .declare(&blood_test(hospital), Some("health/laboratory"))
        .unwrap();
    World {
        platform,
        clock,
        hospital,
        doctor,
        welfare,
    }
}

#[test]
fn wizard_end_to_end() {
    let w = setup();
    let producer = w.platform.producer(w.hospital).unwrap();
    let wizard = producer
        .policy_wizard(&EventTypeId::v1("blood-test"))
        .unwrap();
    assert_eq!(
        wizard.available_fields(),
        vec!["PatientId", "Result", "Notes"]
    );
    let ids = wizard
        .select_fields(["PatientId", "Result"])
        .unwrap()
        .grant_to([w.doctor])
        .unwrap()
        .for_purposes([Purpose::HealthcareTreatment])
        .labeled("doctor-bt", "treatment access")
        .save()
        .unwrap();
    assert_eq!(ids.len(), 1);

    // The policy is persisted in XACML form.
    let repo = w.platform.policy_repository();
    let stored = repo.lock().load(ids[0]).unwrap().unwrap();
    assert_eq!(stored.label, "doctor-bt");
    assert!(stored.fields.contains("Result"));

    // Full two-phase flow through the handles.
    let consumer = w.platform.consumer(w.doctor).unwrap();
    let sub = consumer.subscribe(&EventTypeId::v1("blood-test")).unwrap();
    producer
        .publish(mario(), "blood test done", details(), w.clock.now())
        .unwrap();
    let n = sub.next().unwrap().unwrap().message;
    assert_eq!(n.person.name, "Mario");
    assert!(sub.next().unwrap().is_none());
    let response = consumer
        .request_details(&n, Purpose::HealthcareTreatment)
        .unwrap();
    assert!(response.is_privacy_safe());
    assert_eq!(
        response.details.get("Result").unwrap(),
        &FieldValue::Text("negative".into())
    );
    assert_eq!(response.details.get("Notes").unwrap(), &FieldValue::Empty);
}

#[test]
fn wizard_validation_errors() {
    let w = setup();
    let producer = w.platform.producer(w.hospital).unwrap();
    let ty = EventTypeId::v1("blood-test");

    // Unknown field.
    assert!(producer
        .policy_wizard(&ty)
        .unwrap()
        .select_fields(["Bogus"])
        .is_err());
    // Unknown consumer.
    assert!(producer
        .policy_wizard(&ty)
        .unwrap()
        .grant_to([ActorId(999)])
        .is_err());
    // Missing consumers.
    let err = producer
        .policy_wizard(&ty)
        .unwrap()
        .for_purposes([Purpose::Audit])
        .labeled("x", "")
        .save()
        .unwrap_err();
    assert!(err.to_string().contains("consumer"));
    // Missing purposes.
    let err = producer
        .policy_wizard(&ty)
        .unwrap()
        .grant_to([w.doctor])
        .unwrap()
        .labeled("x", "")
        .save()
        .unwrap_err();
    assert!(err.to_string().contains("purpose"));
    // Missing label.
    let err = producer
        .policy_wizard(&ty)
        .unwrap()
        .grant_to([w.doctor])
        .unwrap()
        .for_purposes([Purpose::Audit])
        .save()
        .unwrap_err();
    assert!(err.to_string().contains("label"));
    // Inverted validity.
    let err = producer
        .policy_wizard(&ty)
        .unwrap()
        .grant_to([w.doctor])
        .unwrap()
        .for_purposes([Purpose::Audit])
        .labeled("x", "")
        .valid_from(Timestamp(100))
        .valid_until(Timestamp(50))
        .save()
        .unwrap_err();
    assert!(err.to_string().contains("validity"));
}

#[test]
fn wizard_multi_consumer_creates_one_policy_each() {
    let w = setup();
    let producer = w.platform.producer(w.hospital).unwrap();
    let ids = producer
        .policy_wizard(&EventTypeId::v1("blood-test"))
        .unwrap()
        .select_fields(["PatientId"])
        .unwrap()
        .grant_to([w.doctor, w.welfare])
        .unwrap()
        .for_purposes([Purpose::Administration])
        .labeled("shared", "")
        .save()
        .unwrap();
    assert_eq!(ids.len(), 2);
    // Both consumers can now subscribe.
    assert!(w
        .platform
        .consumer(w.doctor)
        .unwrap()
        .subscribe(&EventTypeId::v1("blood-test"))
        .is_ok());
    assert!(w
        .platform
        .consumer(w.welfare)
        .unwrap()
        .subscribe(&EventTypeId::v1("blood-test"))
        .is_ok());
}

#[test]
fn pending_access_request_flow() {
    let w = setup();
    let consumer = w.platform.consumer(w.welfare).unwrap();
    let ty = EventTypeId::v1("blood-test");

    // Welfare discovers the class in the catalog but cannot subscribe.
    assert!(consumer.browse_catalog().contains(&ty));
    assert!(matches!(
        consumer.subscribe(&ty),
        Err(CssError::AccessDenied(_))
    ));

    // So it files an access request.
    let req_id = consumer
        .request_access(
            ty.clone(),
            vec![Purpose::SocialAssistance],
            "needed for elderly care coordination",
            w.clock.now(),
        )
        .unwrap();
    assert_eq!(
        consumer.access_request_status(req_id),
        Some(AccessRequestStatus::Pending)
    );

    // The hospital sees it and grants via the prefilled wizard.
    let producer = w.platform.producer(w.hospital).unwrap();
    let pending = producer.pending_requests();
    assert_eq!(pending.len(), 1);
    assert_eq!(pending[0].consumer, w.welfare);
    producer
        .grant_request(req_id)
        .unwrap()
        .select_fields(["PatientId"])
        .unwrap()
        .labeled("welfare-grant", "per request")
        .save()
        .unwrap();

    assert_eq!(
        consumer.access_request_status(req_id),
        Some(AccessRequestStatus::Granted)
    );
    // And now subscription works.
    assert!(consumer.subscribe(&ty).is_ok());
    // The queue no longer lists it as pending.
    assert!(producer.pending_requests().is_empty());
}

#[test]
fn deny_access_request() {
    let w = setup();
    let consumer = w.platform.consumer(w.welfare).unwrap();
    let req_id = consumer
        .request_access(
            EventTypeId::v1("blood-test"),
            vec![Purpose::StatisticalAnalysis],
            "",
            w.clock.now(),
        )
        .unwrap();
    let producer = w.platform.producer(w.hospital).unwrap();
    producer.deny_request(req_id).unwrap();
    assert_eq!(
        consumer.access_request_status(req_id),
        Some(AccessRequestStatus::Denied)
    );
    // Cannot grant/deny twice.
    assert!(producer.deny_request(req_id).is_err());
    assert!(producer.grant_request(req_id).is_err());
}

#[test]
fn producer_handle_requires_joining() {
    let mut w = setup();
    let ghost = w.platform.register_organization("Ghost Org").unwrap();
    assert!(matches!(
        w.platform.producer(ghost),
        Err(CssError::NoContract(_))
    ));
    assert!(matches!(
        w.platform.consumer(ghost),
        Err(CssError::NoContract(_))
    ));
}

#[test]
fn unit_consumer_handle_inherits_org_contract() {
    let mut w = setup();
    let office = w
        .platform
        .register_unit(w.welfare, "Elderly Office")
        .unwrap();
    // The unit can get a consumer handle because its organization signed.
    assert!(w.platform.consumer(office).is_ok());
}

#[test]
fn revoke_policy_via_handle() {
    let w = setup();
    let producer = w.platform.producer(w.hospital).unwrap();
    let ids = producer
        .policy_wizard(&EventTypeId::v1("blood-test"))
        .unwrap()
        .select_fields(["PatientId"])
        .unwrap()
        .grant_to([w.doctor])
        .unwrap()
        .for_purposes([Purpose::HealthcareTreatment])
        .labeled("temp", "")
        .save()
        .unwrap();
    let consumer = w.platform.consumer(w.doctor).unwrap();
    assert!(consumer.subscribe(&EventTypeId::v1("blood-test")).is_ok());
    producer.revoke_policy(ids[0]).unwrap();
    assert!(consumer.subscribe(&EventTypeId::v1("blood-test")).is_err());
    // Revocation persisted to the repository too.
    let repo = w.platform.policy_repository();
    assert!(repo.lock().load(ids[0]).unwrap().unwrap().revoked);
}

#[test]
fn consent_through_platform() {
    let w = setup();
    let producer = w.platform.producer(w.hospital).unwrap();
    producer
        .policy_wizard(&EventTypeId::v1("blood-test"))
        .unwrap()
        .select_all_fields()
        .grant_to([w.doctor])
        .unwrap()
        .for_purposes([Purpose::HealthcareTreatment])
        .labeled("all", "")
        .save()
        .unwrap();
    w.platform
        .record_consent(PersonId(42), ConsentScope::All, ConsentDecision::OptOut)
        .unwrap();
    let err = producer
        .publish(mario(), "blood test", details(), w.clock.now())
        .unwrap_err();
    assert!(matches!(err, CssError::ConsentWithheld(_)));
    // The gateway persisted the details (source-local), but nothing was
    // published platform-wide.
    assert_eq!(producer.gateway_stored_count(), 1);
}

#[test]
fn audit_accessible_through_platform() {
    let w = setup();
    let producer = w.platform.producer(w.hospital).unwrap();
    producer
        .policy_wizard(&EventTypeId::v1("blood-test"))
        .unwrap()
        .select_all_fields()
        .grant_to([w.doctor])
        .unwrap()
        .for_purposes([Purpose::HealthcareTreatment])
        .labeled("all", "")
        .save()
        .unwrap();
    producer
        .publish(mario(), "blood test", details(), w.clock.now())
        .unwrap();
    w.platform.verify_audit().unwrap();
    let report = w.platform.audit_report(&css_audit::AuditQuery::new());
    assert!(report.total >= 3); // contracts, policy change, publish
}

#[test]
fn on_disk_platform_restarts_with_policies() {
    let dir = std::env::temp_dir().join(format!("css-platform-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let clock = SimClock::starting_at(Timestamp(5_000));
    let (hospital, doctor, policy_id);
    {
        let mut platform = CssPlatform::on_disk(&dir, Arc::new(clock.clone())).unwrap();
        hospital = platform.register_organization("Hospital").unwrap();
        doctor = platform.register_organization("Doctor").unwrap();
        platform.join(hospital, Role::Producer).unwrap();
        platform.join(doctor, Role::Consumer).unwrap();
        let producer = platform.producer(hospital).unwrap();
        producer.declare(&blood_test(hospital), None).unwrap();
        policy_id = producer
            .policy_wizard(&EventTypeId::v1("blood-test"))
            .unwrap()
            .select_fields(["PatientId"])
            .unwrap()
            .grant_to([doctor])
            .unwrap()
            .for_purposes([Purpose::HealthcareTreatment])
            .labeled("durable", "")
            .save()
            .unwrap()[0];
        producer
            .publish(mario(), "event", details(), clock.now())
            .unwrap();
        platform.verify_audit().unwrap();
    }
    // A fresh platform over the same directory finds the persisted
    // policies and a verifiable audit log.
    let platform = CssPlatform::on_disk(&dir, Arc::new(clock)).unwrap();
    let repo = platform.policy_repository();
    let stored = repo.lock().load(policy_id).unwrap().unwrap();
    assert_eq!(stored.label, "durable");
    platform.verify_audit().unwrap();
    assert!(platform.audit_report(&css_audit::AuditQuery::new()).total >= 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn subscription_next_wait_wakes_on_publish() {
    let w = setup();
    let producer = w.platform.producer(w.hospital).unwrap();
    producer
        .policy_wizard(&EventTypeId::v1("blood-test"))
        .unwrap()
        .select_all_fields()
        .grant_to([w.doctor])
        .unwrap()
        .for_purposes([Purpose::HealthcareTreatment])
        .labeled("wait", "")
        .save()
        .unwrap();
    let consumer = w.platform.consumer(w.doctor).unwrap();
    let sub = consumer.subscribe(&EventTypeId::v1("blood-test")).unwrap();
    // Empty queue: times out quickly.
    assert!(sub
        .next_wait(std::time::Duration::from_millis(20))
        .unwrap()
        .is_none());
    // Publish from another thread wakes the waiter.
    let clock = w.clock.clone();
    let handle = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(30));
        producer
            .publish(mario(), "late event", details(), clock.now())
            .unwrap();
    });
    let got = sub
        .next_wait(std::time::Duration::from_secs(5))
        .unwrap()
        .expect("woken by publish");
    assert_eq!(got.message.person.id, PersonId(42));
    handle.join().unwrap();
}

#[test]
fn catalog_browsing_by_domain_and_schema_visibility() {
    let w = setup();
    let consumer = w.platform.consumer(w.doctor).unwrap();
    let health = consumer.browse_by_domain("health");
    assert_eq!(health, vec![EventTypeId::v1("blood-test")]);
    assert!(consumer.browse_by_domain("social").is_empty());
    // The structure of a class is visible even without any policy —
    // only the data is protected, not the catalog (§5).
    let schema = consumer
        .class_schema(&EventTypeId::v1("blood-test"))
        .unwrap();
    assert!(schema.field_def("Result").is_some());
    assert!(consumer.class_schema(&EventTypeId::v1("nope")).is_err());
}

#[test]
fn schema_evolution_to_v2_keeps_both_versions_usable() {
    let w = setup();
    let producer = w.platform.producer(w.hospital).unwrap();
    // Policy for v1.
    producer
        .policy_wizard(&EventTypeId::v1("blood-test"))
        .unwrap()
        .select_fields(["PatientId"])
        .unwrap()
        .grant_to([w.doctor])
        .unwrap()
        .for_purposes([Purpose::HealthcareTreatment])
        .labeled("v1", "")
        .save()
        .unwrap();
    // Declare v2 with an extra field; the catalog deprecates v1 but
    // keeps it resolvable.
    let v2 = EventSchema::new(
        EventTypeId::new("blood-test", 2),
        "Blood Test v2",
        w.hospital,
    )
    .field(FieldDef::required("PatientId", FieldKind::Integer))
    .field(FieldDef::required("Result", FieldKind::Text).sensitive())
    .field(FieldDef::optional("LabCode", FieldKind::Text));
    producer.declare(&v2, Some("health/laboratory")).unwrap();

    let consumer = w.platform.consumer(w.doctor).unwrap();
    // v1 subscription still works (old policy), v2 needs its own policy.
    assert!(consumer.subscribe(&EventTypeId::v1("blood-test")).is_ok());
    assert!(consumer
        .subscribe(&EventTypeId::new("blood-test", 2))
        .is_err());
    producer
        .policy_wizard(&EventTypeId::new("blood-test", 2))
        .unwrap()
        .select_fields(["PatientId", "LabCode"])
        .unwrap()
        .grant_to([w.doctor])
        .unwrap()
        .for_purposes([Purpose::HealthcareTreatment])
        .labeled("v2", "")
        .save()
        .unwrap();
    let sub_v2 = consumer
        .subscribe(&EventTypeId::new("blood-test", 2))
        .unwrap();

    // Publish a v2 event and chase its details: versioned policies apply.
    producer
        .publish(
            mario(),
            "v2 blood test",
            EventDetails::new(EventTypeId::new("blood-test", 2))
                .with("PatientId", FieldValue::Integer(42))
                .with("Result", FieldValue::Text("negative".into()))
                .with("LabCode", FieldValue::Text("LAB-7".into())),
            w.clock.now(),
        )
        .unwrap();
    let n = sub_v2.next().unwrap().unwrap().message;
    let resp = consumer
        .request_details(&n, Purpose::HealthcareTreatment)
        .unwrap();
    assert_eq!(
        resp.details.get("LabCode").unwrap(),
        &FieldValue::Text("LAB-7".into())
    );
    // Result is sensitive and not in the v2 grant.
    assert!(resp.details.get("Result").unwrap().is_empty());
}

#[test]
fn builder_configures_clock_identity_and_shared_telemetry() {
    let clock = SimClock::starting_at(Timestamp(9_000));
    let registry = MetricsRegistry::new();
    let mut platform = CssPlatformBuilder::new()
        .clock(Arc::new(clock.clone()))
        .enforce_identity(true)
        .telemetry(registry.clone())
        .build()
        .unwrap();
    assert_eq!(platform.clock().now(), Timestamp(9_000));

    let hospital = platform.register_organization("Hospital").unwrap();
    platform.join(hospital, Role::Producer).unwrap();

    // Identity enforcement was on from the start: plain handles refuse.
    assert!(matches!(
        platform.producer(hospital),
        Err(CssError::CredentialRequired(_))
    ));
    let cred = platform.issue_credential(hospital).unwrap();
    assert!(platform.producer_with_credential(&cred).is_ok());

    // The externally owned registry is the one the platform records
    // into (joining as producer instruments a gateway backend).
    assert!(registry
        .snapshot()
        .histograms
        .contains_key("storage.append"));
}

#[test]
fn join_both_widens() {
    let mut w = setup();
    let clinic = w.platform.register_organization("Clinic").unwrap();
    w.platform.join(clinic, Role::Both).unwrap();
    // Producer side: gateway stood up; consumer side: contract signed.
    assert!(w.platform.producer(clinic).is_ok());
    assert!(w.platform.consumer(clinic).is_ok());

    // Consumer-only joins never create a gateway.
    assert!(w.platform.producer(w.doctor).is_err());
}

#[test]
fn telemetry_subsumes_stats() {
    let w = setup();
    let producer = w.platform.producer(w.hospital).unwrap();
    producer
        .policy_wizard(&EventTypeId::v1("blood-test"))
        .unwrap()
        .select_fields(["PatientId"])
        .unwrap()
        .grant_to([w.doctor])
        .unwrap()
        .for_purposes([Purpose::HealthcareTreatment])
        .labeled("t", "")
        .save()
        .unwrap();
    producer
        .publish(mario(), "bt", details(), w.clock.now())
        .unwrap();

    let stats = w.platform.stats();
    let telemetry = w.platform.telemetry();
    assert_eq!(
        telemetry.gauge("platform.indexed_events") as usize,
        stats.indexed_events
    );
    assert_eq!(
        telemetry.gauge("platform.audit_records") as usize,
        stats.audit_records
    );
    assert_eq!(
        telemetry.gauge("platform.policies") as usize,
        stats.policies
    );
    assert_eq!(telemetry.counter("bus.published"), stats.bus.published);
    assert_eq!(
        telemetry.counter("controller.published"),
        stats.bus.published
    );
    assert!(telemetry.histogram("publish.total").is_some());
}

/// A consumer's worker fleet on `subscribe_grouped` splits the stream
/// (each notification to exactly one worker), while a solo subscriber
/// still sees everything — and the workers can nack a notification to
/// hand it to a peer.
#[test]
fn grouped_subscription_splits_the_stream() {
    let w = setup();
    let producer = w.platform.producer(w.hospital).unwrap();
    producer
        .policy_wizard(&EventTypeId::v1("blood-test"))
        .unwrap()
        .select_fields(["PatientId"])
        .unwrap()
        .grant_to([w.doctor])
        .unwrap()
        .for_purposes([Purpose::HealthcareTreatment])
        .labeled("doctor-bt", "")
        .save()
        .unwrap();

    let consumer = w.platform.consumer(w.doctor).unwrap();
    let solo = consumer.subscribe(&EventTypeId::v1("blood-test")).unwrap();
    let worker_a = consumer
        .subscribe_grouped(&EventTypeId::v1("blood-test"), "triage")
        .unwrap();
    let worker_b = consumer
        .subscribe_grouped(&EventTypeId::v1("blood-test"), "triage")
        .unwrap();

    for _ in 0..10 {
        producer
            .publish(mario(), "bt", details(), w.clock.now())
            .unwrap();
    }

    // The group partitions the 10 notifications across its members...
    let mut group_total = 0;
    loop {
        let mut progressed = false;
        for worker in [&worker_a, &worker_b] {
            if let Some(d) = worker.next().unwrap() {
                group_total += 1;
                let _ = d;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    assert_eq!(group_total, 10);
    // ...while the solo subscription received every one of them.
    assert_eq!(solo.drain().unwrap().len(), 10);
}

/// A worker that cannot process a notification nacks it; a peer in the
/// same group picks it up on the next attempt.
#[test]
fn grouped_subscription_redelivers_nacked_work_to_a_peer() {
    let w = setup();
    let producer = w.platform.producer(w.hospital).unwrap();
    producer
        .policy_wizard(&EventTypeId::v1("blood-test"))
        .unwrap()
        .select_fields(["PatientId"])
        .unwrap()
        .grant_to([w.doctor])
        .unwrap()
        .for_purposes([Purpose::HealthcareTreatment])
        .labeled("doctor-bt", "")
        .save()
        .unwrap();

    let consumer = w.platform.consumer(w.doctor).unwrap();
    let worker_a = consumer
        .subscribe_grouped(&EventTypeId::v1("blood-test"), "triage")
        .unwrap();
    let worker_b = consumer
        .subscribe_grouped(&EventTypeId::v1("blood-test"), "triage")
        .unwrap();
    producer
        .publish(mario(), "bt", details(), w.clock.now())
        .unwrap();

    let first = worker_a.next_unacked().unwrap().expect("delivered");
    assert_eq!(first.attempt, 1);
    worker_a.nack(first.delivery_id).unwrap();

    let second = worker_b
        .next_unacked()
        .unwrap()
        .expect("redelivered to peer");
    assert_eq!(second.attempt, 2);
    assert_eq!(second.message.person.id, PersonId(42));
    worker_b.ack(second.delivery_id).unwrap();
    assert_eq!(worker_a.in_flight().unwrap(), 0);
}

/// The whole platform runs unchanged over a swapped-in bus driver, and
/// the driver — payload-blind by construction — journals only shape,
/// never person data.
#[test]
fn platform_runs_on_a_recording_bus_driver() {
    let driver = Arc::new(css_bus::RecordingDriver::<NotificationMessage>::in_memory());
    let clock = SimClock::starting_at(Timestamp(1_000));
    let mut platform = CssPlatformBuilder::new()
        .clock(Arc::new(clock.clone()))
        .bus_driver(driver.clone())
        .build()
        .unwrap();
    let hospital = platform.register_organization("Hospital").unwrap();
    let doctor = platform.register_organization("Doctor").unwrap();
    platform.join(hospital, Role::Producer).unwrap();
    platform.join(doctor, Role::Consumer).unwrap();
    let producer = platform.producer(hospital).unwrap();
    producer
        .declare(&blood_test(hospital), Some("health"))
        .unwrap();
    producer
        .policy_wizard(&EventTypeId::v1("blood-test"))
        .unwrap()
        .select_fields(["PatientId"])
        .unwrap()
        .grant_to([doctor])
        .unwrap()
        .for_purposes([Purpose::HealthcareTreatment])
        .labeled("doctor-bt", "")
        .save()
        .unwrap();
    let consumer = platform.consumer(doctor).unwrap();
    let sub = consumer.subscribe(&EventTypeId::v1("blood-test")).unwrap();
    producer
        .publish(mario(), "bt", details(), clock.now())
        .unwrap();
    let delivered = sub.next().unwrap().expect("routed through the driver");
    assert_eq!(delivered.message.person.id, PersonId(42));

    // The journal saw the whole lifecycle...
    let journal = driver.journal();
    assert!(journal
        .iter()
        .any(|op| matches!(op, css_bus::BusOp::Publish { deduped: false, .. })));
    assert!(journal
        .iter()
        .any(|op| matches!(op, css_bus::BusOp::Ack(_, _))));
    // ...but never the identifying payload (detail confinement: the
    // driver moves opaque values it cannot inspect).
    let rendered = format!("{journal:?}");
    assert!(!rendered.contains("RSSMRA45C12L378Y"));
    assert!(!rendered.contains("Mario"));
}
