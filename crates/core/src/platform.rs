//! Platform assembly and participant onboarding.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use css_audit::{AuditQuery, AuditRecord, AuditReport};
use css_bus::BusDriver;
use css_controller::{
    ConsentDecision, ConsentScope, ControllerConfig, Credential, DataController, IdentityManager,
    ParticipantRole, SharedGateway,
};
use css_event::NotificationMessage;
use css_gateway::LocalCooperationGateway;
use css_policy::PolicyRepository;
use css_storage::InstrumentedBackend;
use css_telemetry::{MetricsRegistry, TelemetrySnapshot};
use css_trace::Tracer;
use css_types::{
    Actor, ActorId, Clock, CssError, CssResult, IdGenerator, PersonId, SystemClock, Timestamp,
};

use crate::citizen::CitizenHandle;
use crate::consumer::ConsumerHandle;
use crate::ops::{OpsConfig, OpsPlane};
use crate::pending::{AccessRequest, PendingQueue, DEFAULT_PENDING_CAPACITY};
use crate::producer::ProducerHandle;
use crate::provider::{BackendProvider, DirProvider, MemoryProvider};

/// The backend an assembled platform actually runs on: the provider's
/// backend wrapped with `storage.*` latency/byte telemetry.
pub(crate) type PlatformBackend<P> = InstrumentedBackend<<P as BackendProvider>::Backend>;
pub(crate) type SharedController<P> = Arc<DataController<PlatformBackend<P>>>;
pub(crate) type SharedRepo<P> = Arc<Mutex<PolicyRepository<PlatformBackend<P>>>>;
pub(crate) type SharedPending = Arc<PendingQueue>;

/// The capacity in which an organization joins the platform
/// ([`CssPlatform::join`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Publishes events: signs a producer contract and stands up a
    /// Local Cooperation Gateway.
    Producer,
    /// Subscribes to notifications and requests event details.
    Consumer,
    /// Both capacities at once.
    Both,
}

/// Step-by-step assembly of a [`CssPlatform`].
///
/// The presets ([`CssPlatform::in_memory`], [`CssPlatform::on_disk`])
/// cover the common configurations; the builder exposes every knob:
///
/// ```
/// use std::sync::Arc;
/// use css_core::{CssPlatform, CssPlatformBuilder};
/// use css_types::{SimClock, Timestamp};
///
/// let platform = CssPlatformBuilder::new()
///     .clock(Arc::new(SimClock::starting_at(Timestamp(0))))
///     .enforce_identity(true)
///     .shards(4)
///     .build()
///     .unwrap();
/// # let _ = platform;
/// ```
pub struct CssPlatformBuilder<P: BackendProvider = MemoryProvider> {
    provider: P,
    clock: Arc<dyn Clock>,
    enforce_identity: bool,
    telemetry: MetricsRegistry,
    trace_capacity: Option<usize>,
    shards: Option<usize>,
    pending_capacity: usize,
    ops_addr: Option<String>,
    ops_interval: std::time::Duration,
    ops_checks: Vec<Box<dyn css_health::HealthCheck>>,
    ops_slos: Vec<css_health::Slo>,
    ops_monitor: Option<Arc<Mutex<css_monitor::ProcessMonitor>>>,
    bus_driver: Option<Arc<dyn BusDriver<NotificationMessage>>>,
    blackbox_capacity: Option<usize>,
    incident_dir: Option<std::path::PathBuf>,
    chronicle: Option<css_chronicle::Retention>,
}

impl Default for CssPlatformBuilder<MemoryProvider> {
    fn default() -> Self {
        Self::new()
    }
}

impl CssPlatformBuilder<MemoryProvider> {
    /// A builder with the quickstart defaults: in-memory backends, the
    /// system clock, no identity enforcement, a fresh metrics registry.
    pub fn new() -> Self {
        CssPlatformBuilder {
            provider: MemoryProvider,
            clock: Arc::new(SystemClock),
            enforce_identity: false,
            telemetry: MetricsRegistry::new(),
            trace_capacity: None,
            shards: None,
            pending_capacity: DEFAULT_PENDING_CAPACITY,
            ops_addr: None,
            ops_interval: std::time::Duration::from_millis(250),
            ops_checks: Vec::new(),
            ops_slos: Vec::new(),
            ops_monitor: None,
            bus_driver: None,
            blackbox_capacity: None,
            incident_dir: None,
            chronicle: None,
        }
    }
}

/// The shard count a builder uses when none is requested: one shard per
/// available core, capped at 8 (past that the coordination overhead of
/// scatter-gather inquiries outweighs the extra parallelism for the
/// deployment sizes the paper targets).
pub fn default_shard_count() -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    cores.clamp(1, 8)
}

impl<P: BackendProvider> CssPlatformBuilder<P> {
    /// Use a different storage backend provider (changes the platform's
    /// type parameter).
    pub fn provider<Q: BackendProvider>(self, provider: Q) -> CssPlatformBuilder<Q> {
        CssPlatformBuilder {
            provider,
            clock: self.clock,
            enforce_identity: self.enforce_identity,
            telemetry: self.telemetry,
            trace_capacity: self.trace_capacity,
            shards: self.shards,
            pending_capacity: self.pending_capacity,
            ops_addr: self.ops_addr,
            ops_interval: self.ops_interval,
            ops_checks: self.ops_checks,
            ops_slos: self.ops_slos,
            ops_monitor: self.ops_monitor,
            bus_driver: self.bus_driver,
            blackbox_capacity: self.blackbox_capacity,
            incident_dir: self.incident_dir,
            chronicle: self.chronicle,
        }
    }

    /// Route notifications through an explicit [`BusDriver`] instead of
    /// the controller's private in-memory broker — e.g. a
    /// [`css_bus::RecordingDriver`] for integration forensics, or a
    /// networked broker in a multi-site deployment. The driver is
    /// payload-blind: it moves opaque notification values and can never
    /// see event details.
    pub fn bus_driver(mut self, driver: Arc<dyn BusDriver<NotificationMessage>>) -> Self {
        self.bus_driver = Some(driver);
        self
    }

    /// Use an explicit (usually simulated) clock.
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Start with credential enforcement on: handles can then only be
    /// obtained through the `*_with_credential` accessors.
    pub fn enforce_identity(mut self, on: bool) -> Self {
        self.enforce_identity = on;
        self
    }

    /// Record platform metrics into an externally owned registry (e.g.
    /// one shared with a benchmark harness) instead of a fresh one.
    pub fn telemetry(mut self, registry: MetricsRegistry) -> Self {
        self.telemetry = registry;
        self
    }

    /// Partition the controller data plane (events index, notified
    /// markers, audit group commits) into `n` citizen-hashed shards,
    /// each behind its own lock (clamped to at least 1). Defaults to
    /// [`default_shard_count`] — `min(8, cores)`.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = Some(n.max(1));
        self
    }

    /// High-water mark for the pending access-request queue: filings
    /// past this many undecided requests are rejected with
    /// [`css_types::CssError::Backpressure`] (default 1024).
    pub fn pending_capacity(mut self, n: usize) -> Self {
        self.pending_capacity = n.max(1);
        self
    }

    /// Collect causal spans (publish → route → deliver, inquiry, detail
    /// request → enforcement stages) into a bounded in-memory ring
    /// holding the most recent `capacity` finished spans. Off by
    /// default; when off, every span operation is a no-op.
    pub fn tracing(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Serve the live ops plane on `addr` (`GET /metrics`, `/health`,
    /// `/slo`, `/traces`, `/monitor`). Use `"127.0.0.1:0"` for an
    /// ephemeral port and read it back from
    /// [`CssPlatform::ops_handle`]. Off by default; the server and its
    /// background sampler shut down when the platform drops.
    pub fn ops_server(mut self, addr: impl Into<String>) -> Self {
        self.ops_addr = Some(addr.into());
        self
    }

    /// How often the ops sampler snapshots telemetry into the SLO
    /// engine (default 250 ms).
    pub fn ops_sample_interval(mut self, interval: std::time::Duration) -> Self {
        self.ops_interval = interval;
        self
    }

    /// Register an additional component health check alongside the
    /// defaults (storage probe, bus backlog/lag, PDP cache, gateway
    /// backlog, trace drop rate, shard balance).
    pub fn health_check(mut self, check: Box<dyn css_health::HealthCheck>) -> Self {
        self.ops_checks.push(check);
        self
    }

    /// Register an additional SLO alongside the defaults
    /// (`detail_request_p99`, `publish_errors`).
    pub fn ops_slo(mut self, slo: css_health::Slo) -> Self {
        self.ops_slos.push(slo);
        self
    }

    /// Serve a Process Reference Monitor's KPIs on `GET /monitor`.
    pub fn ops_monitor(mut self, monitor: Arc<Mutex<css_monitor::ProcessMonitor>>) -> Self {
        self.ops_monitor = Some(monitor);
        self
    }

    /// Run the incident flight recorder next to the ops sampler: a
    /// bounded drop-oldest ring of the most recent `capacity`
    /// observation frames (telemetry deltas, SLO burn samples, health
    /// transitions, root spans), frozen into an incident bundle when an
    /// SLO reaches Critical, a check goes Unhealthy, or
    /// `POST /debug/capture` asks for one. Requires
    /// [`ops_server`](CssPlatformBuilder::ops_server); off by default.
    pub fn blackbox(mut self, capacity: usize) -> Self {
        self.blackbox_capacity = Some(capacity.max(1));
        self
    }

    /// Where the flight recorder writes incident bundles (default
    /// `target/incidents`).
    pub fn incident_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.incident_dir = Some(dir.into());
        self
    }

    /// Keep a long-horizon metrics history next to the ops sampler: a
    /// per-metric ring of rings (raw ticks → 1-minute → 1-hour
    /// aggregates with merged histogram buckets) served as
    /// `GET /query` and `GET /range`, plus an EWMA+MAD anomaly
    /// detector over `stage.total` p99 that reports drift as a
    /// `Degraded` health check and — with
    /// [`blackbox`](CssPlatformBuilder::blackbox) on — freezes an
    /// incident bundle with the history window embedded. Requires
    /// [`ops_server`](CssPlatformBuilder::ops_server); off by default.
    pub fn chronicle(mut self, retention: css_chronicle::Retention) -> Self {
        self.chronicle = Some(retention);
        self
    }

    /// Assemble the platform.
    pub fn build(self) -> CssResult<CssPlatform<P>> {
        let CssPlatformBuilder {
            provider,
            clock,
            enforce_identity,
            telemetry,
            trace_capacity,
            shards,
            pending_capacity,
            ops_addr,
            ops_interval,
            ops_checks,
            ops_slos,
            ops_monitor,
            bus_driver,
            blackbox_capacity,
            incident_dir,
            chronicle,
        } = self;
        // Builder time is the platform's birth: `css_uptime_seconds`
        // counts from here, and the build-info metric is pinned once.
        let boot = clock.now();
        telemetry
            .gauge(&format!("build_info.{}", env!("CARGO_PKG_VERSION")))
            .set(1);
        let tracer = match trace_capacity {
            Some(capacity) => Tracer::with_metrics(capacity, &telemetry),
            None => Tracer::disabled(),
        };
        let shards = shards.unwrap_or_else(default_shard_count);
        let mut config = ControllerConfig::with_clock(clock.clone())
            .with_telemetry(telemetry.clone())
            .with_tracer(tracer.clone())
            .with_shards(shards);
        if let Some(driver) = bus_driver {
            config = config.with_bus_driver(driver);
        }
        // Shard 0 keeps the legacy backend names so existing single-shard
        // deployments reopen their data; shards 1..n get suffixed names.
        let mut audit_backends = Vec::with_capacity(shards);
        let mut index_backends = Vec::with_capacity(shards);
        for i in 0..shards {
            let (audit_name, index_name) = if i == 0 {
                ("audit".to_string(), "events-index".to_string())
            } else {
                (format!("audit-{i}"), format!("events-index-{i}"))
            };
            audit_backends.push(InstrumentedBackend::new(
                provider.backend(&audit_name)?,
                &telemetry,
            ));
            index_backends.push(InstrumentedBackend::new(
                provider.backend(&index_name)?,
                &telemetry,
            ));
        }
        let controller =
            DataController::with_shard_backends(config, audit_backends, index_backends)?;
        let policy_repo = PolicyRepository::open(InstrumentedBackend::new(
            provider.backend("policies")?,
            &telemetry,
        ))?;
        let controller = Arc::new(controller);
        let mut queue = PendingQueue::new(pending_capacity);
        queue.instrument(&telemetry);
        let pending: SharedPending = Arc::new(queue);
        let ops = match ops_addr {
            None => None,
            Some(addr) => Some(crate::ops::start_ops(
                OpsConfig {
                    addr,
                    interval: ops_interval,
                    checks: ops_checks,
                    slos: ops_slos,
                    monitor: ops_monitor,
                    blackbox: blackbox_capacity,
                    incident_dir,
                    chronicle,
                    boot,
                },
                &provider,
                &telemetry,
                &clock,
                &tracer,
                &controller,
                &pending,
            )?),
        };
        Ok(CssPlatform {
            controller,
            gateways: HashMap::new(),
            policy_repo: Arc::new(Mutex::new(policy_repo)),
            pending,
            roles: HashMap::new(),
            src_gens: HashMap::new(),
            actor_gen: IdGenerator::default(),
            identity: IdentityManager::new(b"css-identity-master"),
            identity_enforced: enforce_identity,
            registry: telemetry,
            tracer,
            provider,
            clock,
            boot,
            ops,
        })
    }
}

/// The assembled CSS platform: data controller + producer gateways +
/// policy repository + pending-request queue.
pub struct CssPlatform<P: BackendProvider = MemoryProvider> {
    controller: SharedController<P>,
    gateways: HashMap<ActorId, SharedGateway<PlatformBackend<P>>>,
    policy_repo: SharedRepo<P>,
    pending: SharedPending,
    roles: HashMap<ActorId, (bool, bool)>, // (produces, consumes)
    src_gens: HashMap<ActorId, Arc<IdGenerator>>,
    actor_gen: IdGenerator,
    identity: IdentityManager,
    identity_enforced: bool,
    registry: MetricsRegistry,
    tracer: Tracer,
    provider: P,
    clock: Arc<dyn Clock>,
    boot: Timestamp,
    ops: Option<OpsPlane>,
}

/// Percent by which the busiest shard exceeds the mean shard load
/// (0 for a balanced or empty plane, and always 0 with one shard).
pub(crate) fn imbalance_pct(lens: &[usize]) -> i64 {
    let total: usize = lens.iter().sum();
    if lens.len() <= 1 || total == 0 {
        return 0;
    }
    let max = *lens.iter().max().unwrap_or(&0);
    let mean = total as f64 / lens.len() as f64;
    (((max as f64 / mean) - 1.0) * 100.0).round() as i64
}

/// Refresh the `platform.*` state-size gauges from the live platform
/// state — shared between [`CssPlatform::telemetry`] and the ops
/// plane's scrape path, so both report identical, current numbers.
pub(crate) fn refresh_platform_gauges<B: css_storage::LogBackend>(
    controller: &DataController<B>,
    pending: &PendingQueue,
    r: &MetricsRegistry,
    clock: &dyn Clock,
    boot: Timestamp,
) {
    r.gauge("uptime_seconds")
        .set((clock.now().0.saturating_sub(boot.0) / 1_000) as i64);
    r.gauge("platform.indexed_events")
        .set(controller.index_len() as i64);
    r.gauge("platform.audit_records")
        .set(controller.audit_len() as i64);
    r.gauge("platform.policies")
        .set(controller.policy_count() as i64);
    r.gauge("platform.actors")
        .set(controller.actors().len() as i64);
    r.gauge("shard.imbalance_pct")
        .set(imbalance_pct(&controller.index_shard_lens()));
    r.gauge("platform.pending_requests")
        .set(pending.pending_count() as i64);
}

impl CssPlatform<MemoryProvider> {
    /// A builder starting from the quickstart defaults.
    pub fn builder() -> CssPlatformBuilder<MemoryProvider> {
        CssPlatformBuilder::new()
    }

    /// An all-in-memory platform on the system clock — the quickstart
    /// configuration.
    pub fn in_memory() -> Self {
        Self::builder().build().expect("memory init")
    }

    /// An in-memory platform on an explicit (usually simulated) clock.
    pub fn in_memory_with_clock(clock: Arc<dyn Clock>) -> Self {
        Self::builder().clock(clock).build().expect("memory init")
    }
}

impl CssPlatform<DirProvider> {
    /// A disk-backed platform storing all logs under `dir`.
    pub fn on_disk(dir: impl Into<std::path::PathBuf>, clock: Arc<dyn Clock>) -> CssResult<Self> {
        CssPlatformBuilder::new()
            .provider(DirProvider::new(dir)?)
            .clock(clock)
            .build()
    }
}

impl<P: BackendProvider> CssPlatform<P> {
    /// Assemble a platform over a backend provider.
    pub fn with_provider(provider: P, clock: Arc<dyn Clock>) -> CssResult<Self> {
        CssPlatformBuilder::new()
            .provider(provider)
            .clock(clock)
            .build()
    }

    /// The platform clock.
    pub fn clock(&self) -> Arc<dyn Clock> {
        self.clock.clone()
    }

    /// How many shards the controller data plane runs.
    pub fn shard_count(&self) -> usize {
        self.controller.shard_count()
    }

    // ---- actors -------------------------------------------------------

    /// Register a top-level organization, minting its id.
    pub fn register_organization(&mut self, name: &str) -> CssResult<ActorId> {
        let id: ActorId = self.actor_gen.next_id();
        self.controller
            .register_actor(Actor::organization(id, name))?;
        Ok(id)
    }

    /// Register an organizational unit under a parent.
    pub fn register_unit(&mut self, parent: ActorId, name: &str) -> CssResult<ActorId> {
        let id: ActorId = self.actor_gen.next_id();
        self.controller
            .register_actor(Actor::unit(id, name, parent))?;
        Ok(id)
    }

    /// Register a functional role under a parent.
    pub fn register_role(&mut self, parent: ActorId, name: &str) -> CssResult<ActorId> {
        let id: ActorId = self.actor_gen.next_id();
        self.controller
            .register_actor(Actor::role(id, name, parent))?;
        Ok(id)
    }

    // ---- onboarding ------------------------------------------------------

    fn sign(&mut self, actor: ActorId, produce: bool, consume: bool) -> CssResult<()> {
        let entry = self.roles.entry(actor).or_insert((false, false));
        entry.0 |= produce;
        entry.1 |= consume;
        let role = match *entry {
            (true, true) => ParticipantRole::Both,
            (true, false) => ParticipantRole::Producer,
            (false, true) => ParticipantRole::Consumer,
            (false, false) => unreachable!("at least one role requested"),
        };
        self.controller.sign_contract(actor, role)
    }

    /// Sign a contract for an organization in the given capacity.
    /// Joining as [`Role::Producer`] (or [`Role::Both`]) also stands up
    /// the organization's Local Cooperation Gateway. Joining again in
    /// another capacity widens the contract.
    pub fn join(&mut self, actor: ActorId, role: Role) -> CssResult<()> {
        let (produce, consume) = match role {
            Role::Producer => (true, false),
            Role::Consumer => (false, true),
            Role::Both => (true, true),
        };
        self.sign(actor, produce, consume)?;
        if produce {
            self.ensure_gateway(actor)?;
        }
        Ok(())
    }

    fn ensure_gateway(&mut self, actor: ActorId) -> CssResult<()> {
        if self.gateways.contains_key(&actor) {
            return Ok(());
        }
        let backend = InstrumentedBackend::new(
            self.provider.backend(&format!("gateway-{actor}"))?,
            &self.registry,
        );
        let mut gw = LocalCooperationGateway::open(actor, backend)?;
        gw.instrument(&self.registry);
        let gateway: SharedGateway<PlatformBackend<P>> = Arc::new(Mutex::new(gw));
        // Resume source-id generation past any records recovered
        // from a previous session, so restarts never collide.
        let next_src = gateway
            .lock()
            .max_src_id()
            .map(|s| s.value() + 1)
            .unwrap_or(1);
        self.controller
            .register_gateway(actor, Box::new(gateway.clone()));
        self.gateways.insert(actor, gateway);
        self.src_gens
            .insert(actor, Arc::new(IdGenerator::starting_at(next_src)));
        Ok(())
    }

    /// Reload every policy from the certified repository into the
    /// decision point — the restart path: operators re-register actors
    /// and re-declare schemas (code-driven), then call this to restore
    /// enforcement state. Returns the number of policies restored.
    pub fn reload_policies(&self) -> CssResult<usize> {
        let policies = self.policy_repo.lock().load_all()?;
        let n = policies.len();
        for policy in policies {
            self.controller.restore_policy(policy);
        }
        Ok(n)
    }

    // ---- identity management (Section 5 future work) -------------------

    /// Turn on credential enforcement: handles can then only be obtained
    /// through [`CssPlatform::producer_with_credential`] /
    /// [`CssPlatform::consumer_with_credential`].
    pub fn enable_identity_enforcement(&mut self) {
        self.identity_enforced = true;
    }

    /// Issue (or rotate) the credential for a contracted actor.
    pub fn issue_credential(&mut self, actor: ActorId) -> CssResult<Credential> {
        if !self.roles.contains_key(&actor) {
            return Err(CssError::NoContract(format!(
                "{actor} has not joined the platform"
            )));
        }
        Ok(self.identity.issue(actor))
    }

    /// Revoke a credential by serial.
    pub fn revoke_credential(&mut self, serial: u64) {
        self.identity.revoke(serial);
    }

    /// Producer handle gated by a credential check.
    pub fn producer_with_credential(
        &self,
        credential: &Credential,
    ) -> CssResult<ProducerHandle<P>> {
        let actor = self.identity.validate(credential)?;
        self.producer_unchecked(actor)
    }

    /// Consumer handle gated by a credential check.
    pub fn consumer_with_credential(
        &self,
        credential: &Credential,
    ) -> CssResult<ConsumerHandle<P>> {
        let actor = self.identity.validate(credential)?;
        self.consumer_unchecked(actor)
    }

    /// The producer-side handle for a joined producer.
    pub fn producer(&self, actor: ActorId) -> CssResult<ProducerHandle<P>> {
        if self.identity_enforced {
            return Err(CssError::CredentialRequired(
                "use producer_with_credential".into(),
            ));
        }
        self.producer_unchecked(actor)
    }

    fn producer_unchecked(&self, actor: ActorId) -> CssResult<ProducerHandle<P>> {
        let gateway = self
            .gateways
            .get(&actor)
            .ok_or_else(|| CssError::NoContract(format!("{actor} has not joined as producer")))?
            .clone();
        let src_gen = self
            .src_gens
            .get(&actor)
            .expect("created with gateway")
            .clone();
        Ok(ProducerHandle::new(
            self.controller.clone(),
            self.policy_repo.clone(),
            self.pending.clone(),
            gateway,
            src_gen,
            actor,
        ))
    }

    /// The consumer-side handle for a joined consumer. The handle may be
    /// for the organization itself or any unit/role inside it.
    pub fn consumer(&self, actor: ActorId) -> CssResult<ConsumerHandle<P>> {
        if self.identity_enforced {
            return Err(CssError::CredentialRequired(
                "use consumer_with_credential".into(),
            ));
        }
        self.consumer_unchecked(actor)
    }

    fn consumer_unchecked(&self, actor: ActorId) -> CssResult<ConsumerHandle<P>> {
        let org = self
            .controller
            .actors()
            .organization_of(actor)
            .ok_or_else(|| CssError::NotFound(format!("actor {actor} not registered")))?;
        match self.roles.get(&org) {
            Some((_, true)) => Ok(ConsumerHandle::new(
                self.controller.clone(),
                self.pending.clone(),
                actor,
            )),
            _ => Err(CssError::NoContract(format!(
                "{org} has not joined as consumer"
            ))),
        }
    }

    /// The citizen-facing handle for a data subject (PHR view, consent,
    /// subject audit trail).
    pub fn citizen(&self, person: PersonId) -> CitizenHandle<P> {
        CitizenHandle::new(self.controller.clone(), person)
    }

    // ---- consent & audit ---------------------------------------------------

    /// Record a consent directive from a data subject.
    pub fn record_consent(
        &self,
        person: PersonId,
        scope: ConsentScope,
        decision: ConsentDecision,
    ) -> CssResult<()> {
        self.controller.record_consent(person, scope, decision)
    }

    /// Run an audit inquiry.
    pub fn audit_query(&self, q: &AuditQuery) -> Vec<AuditRecord> {
        self.controller.audit_query(q)
    }

    /// Aggregate audit report.
    pub fn audit_report(&self, q: &AuditQuery) -> AuditReport {
        self.controller.audit_report(q)
    }

    /// Verify the audit hash chain.
    pub fn verify_audit(&self) -> CssResult<()> {
        self.controller.verify_audit()
    }

    /// Direct (shared) access to the data controller for advanced use
    /// and experiments. The controller is internally synchronized —
    /// clones of this `Arc` can drive it from many threads at once.
    pub fn controller(&self) -> SharedController<P> {
        self.controller.clone()
    }

    /// The persisted XACML policy repository.
    pub fn policy_repository(&self) -> SharedRepo<P> {
        self.policy_repo.clone()
    }

    // ---- telemetry ---------------------------------------------------------

    /// A point-in-time snapshot of every platform metric: counters,
    /// gauges, and latency histograms from the bus (`bus.*`), the
    /// storage layer (`storage.*`), each gateway (`gateway.*`), the
    /// publish pipeline (`publish.*`), the Algorithm-1 enforcement
    /// stages (`stage.*`), and the sharded data plane (`shard.*`), plus
    /// `platform.*` state-size gauges.
    ///
    /// This subsumes [`CssPlatform::stats`], which remains as a
    /// compatibility shim over the same underlying counters.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        refresh_platform_gauges(
            &self.controller,
            &self.pending,
            &self.registry,
            self.clock.as_ref(),
            self.boot,
        );
        self.registry.snapshot()
    }

    /// The live metrics registry behind [`CssPlatform::telemetry`] —
    /// for wiring into benchmark harnesses or exporters.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The platform tracer. Disabled (every span a no-op) unless the
    /// builder enabled [`CssPlatformBuilder::tracing`]; when enabled,
    /// [`css_trace::Tracer::finished_spans`] drains the ring for the
    /// text-tree and Chrome `trace_event` exporters.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The running ops plane, when the builder enabled
    /// [`CssPlatformBuilder::ops_server`].
    pub fn ops(&self) -> Option<&OpsPlane> {
        self.ops.as_ref()
    }

    /// The ops exposition server handle — its
    /// [`local_addr`](css_health::OpsHandle::local_addr) is where
    /// `/metrics`, `/health`, `/slo`, `/traces`, and `/monitor` are
    /// served. `None` unless the builder enabled
    /// [`CssPlatformBuilder::ops_server`].
    pub fn ops_handle(&self) -> Option<&css_health::OpsHandle> {
        self.ops.as_ref().map(OpsPlane::handle)
    }

    /// The incident flight recorder, when the builder enabled
    /// [`CssPlatformBuilder::blackbox`].
    pub fn blackbox(&self) -> Option<&Arc<css_blackbox::FlightRecorder>> {
        self.ops.as_ref().and_then(OpsPlane::blackbox)
    }

    /// The long-horizon metrics history, when the builder enabled
    /// [`CssPlatformBuilder::chronicle`].
    pub fn chronicle(&self) -> Option<&Arc<css_chronicle::Chronicle>> {
        self.ops.as_ref().and_then(OpsPlane::chronicle)
    }

    /// Freeze the flight recorder's ring into an incident bundle right
    /// now (the in-process equivalent of `POST /debug/capture`).
    /// Returns `None` when the recorder is off.
    pub fn capture_incident(&self, reason: &str) -> Option<css_blackbox::CaptureOutcome> {
        let recorder = self.blackbox()?;
        let snapshot = self.telemetry();
        let spans = self.tracer.finished_spans();
        Some(recorder.dump(reason, &snapshot, &spans, self.clock.now().0))
    }

    /// Operational snapshot: sizes of the platform's core state, the
    /// kind of dashboard numbers a platform operator watches.
    ///
    /// Compatibility shim — prefer [`CssPlatform::telemetry`], which
    /// adds latency histograms and hot-path counters.
    pub fn stats(&self) -> PlatformStats {
        PlatformStats {
            indexed_events: self.controller.index_len(),
            audit_records: self.controller.audit_len(),
            policies: self.controller.policy_count(),
            actors: self.controller.actors().len(),
            bus: self.controller.bus_stats(),
            pending_requests: self.pending.pending_count(),
        }
    }

    /// All pending access requests (any producer).
    pub fn pending_requests(&self) -> Vec<AccessRequest> {
        self.pending.all()
    }
}

/// Operational counters reported by [`CssPlatform::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlatformStats {
    /// Notifications held in the events index.
    pub indexed_events: usize,
    /// Records on the audit log.
    pub audit_records: usize,
    /// Privacy policies installed at the decision point.
    pub policies: usize,
    /// Actors in the organizational registry.
    pub actors: usize,
    /// Bus counters.
    pub bus: css_bus::BrokerStats,
    /// Access requests awaiting a producer decision.
    pub pending_requests: usize,
}

#[cfg(test)]
mod tests {
    use super::imbalance_pct;

    #[test]
    fn imbalance_of_balanced_empty_or_single_is_zero() {
        assert_eq!(imbalance_pct(&[]), 0);
        assert_eq!(imbalance_pct(&[10]), 0);
        assert_eq!(imbalance_pct(&[0, 0, 0, 0]), 0);
        assert_eq!(imbalance_pct(&[5, 5, 5, 5]), 0);
    }

    #[test]
    fn imbalance_reports_hot_shard() {
        // Mean 5, max 10 → 100% over mean.
        assert_eq!(imbalance_pct(&[10, 5, 0, 5]), 100);
        // Mean 4, max 7 → 75%.
        assert_eq!(imbalance_pct(&[7, 3, 4, 2]), 75);
    }
}
