//! Platform assembly and participant onboarding.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use css_audit::{AuditQuery, AuditRecord, AuditReport};
use css_controller::{
    ConsentDecision, ConsentScope, ControllerConfig, Credential, DataController, IdentityManager,
    ParticipantRole, SharedGateway,
};
use css_gateway::LocalCooperationGateway;
use css_policy::PolicyRepository;
use css_types::{Actor, ActorId, Clock, CssError, CssResult, IdGenerator, PersonId, SystemClock};

use crate::citizen::CitizenHandle;
use crate::consumer::ConsumerHandle;
use crate::pending::AccessRequest;
use crate::producer::ProducerHandle;
use crate::provider::{BackendProvider, DirProvider, MemoryProvider};

pub(crate) type SharedController<P> = Arc<Mutex<DataController<<P as BackendProvider>::Backend>>>;
pub(crate) type SharedRepo<P> = Arc<Mutex<PolicyRepository<<P as BackendProvider>::Backend>>>;
pub(crate) type SharedPending = Arc<Mutex<Vec<AccessRequest>>>;

/// The assembled CSS platform: data controller + producer gateways +
/// policy repository + pending-request queue.
pub struct CssPlatform<P: BackendProvider = MemoryProvider> {
    controller: SharedController<P>,
    gateways: HashMap<ActorId, SharedGateway<P::Backend>>,
    policy_repo: SharedRepo<P>,
    pending: SharedPending,
    roles: HashMap<ActorId, (bool, bool)>, // (produces, consumes)
    src_gens: HashMap<ActorId, Arc<IdGenerator>>,
    actor_gen: IdGenerator,
    identity: IdentityManager,
    identity_enforced: bool,
    provider: P,
    clock: Arc<dyn Clock>,
}

impl CssPlatform<MemoryProvider> {
    /// An all-in-memory platform on the system clock — the quickstart
    /// configuration.
    pub fn in_memory() -> Self {
        Self::with_provider(MemoryProvider, Arc::new(SystemClock)).expect("memory init")
    }

    /// An in-memory platform on an explicit (usually simulated) clock.
    pub fn in_memory_with_clock(clock: Arc<dyn Clock>) -> Self {
        Self::with_provider(MemoryProvider, clock).expect("memory init")
    }
}

impl CssPlatform<DirProvider> {
    /// A disk-backed platform storing all logs under `dir`.
    pub fn on_disk(dir: impl Into<std::path::PathBuf>, clock: Arc<dyn Clock>) -> CssResult<Self> {
        Self::with_provider(DirProvider::new(dir)?, clock)
    }
}

impl<P: BackendProvider> CssPlatform<P> {
    /// Assemble a platform over a backend provider.
    pub fn with_provider(provider: P, clock: Arc<dyn Clock>) -> CssResult<Self> {
        let config = ControllerConfig::with_clock(clock.clone());
        let controller = DataController::with_backends(
            config,
            provider.backend("audit")?,
            provider.backend("events-index")?,
        )?;
        let policy_repo = PolicyRepository::open(provider.backend("policies")?)?;
        Ok(CssPlatform {
            controller: Arc::new(Mutex::new(controller)),
            gateways: HashMap::new(),
            policy_repo: Arc::new(Mutex::new(policy_repo)),
            pending: Arc::new(Mutex::new(Vec::new())),
            roles: HashMap::new(),
            src_gens: HashMap::new(),
            actor_gen: IdGenerator::default(),
            identity: IdentityManager::new(b"css-identity-master"),
            identity_enforced: false,
            provider,
            clock,
        })
    }

    /// The platform clock.
    pub fn clock(&self) -> Arc<dyn Clock> {
        self.clock.clone()
    }

    // ---- actors -------------------------------------------------------

    /// Register a top-level organization, minting its id.
    pub fn register_organization(&mut self, name: &str) -> CssResult<ActorId> {
        let id: ActorId = self.actor_gen.next_id();
        self.controller
            .lock()
            .register_actor(Actor::organization(id, name))?;
        Ok(id)
    }

    /// Register an organizational unit under a parent.
    pub fn register_unit(&mut self, parent: ActorId, name: &str) -> CssResult<ActorId> {
        let id: ActorId = self.actor_gen.next_id();
        self.controller
            .lock()
            .register_actor(Actor::unit(id, name, parent))?;
        Ok(id)
    }

    /// Register a functional role under a parent.
    pub fn register_role(&mut self, parent: ActorId, name: &str) -> CssResult<ActorId> {
        let id: ActorId = self.actor_gen.next_id();
        self.controller
            .lock()
            .register_actor(Actor::role(id, name, parent))?;
        Ok(id)
    }

    // ---- onboarding ------------------------------------------------------

    fn sign(&mut self, actor: ActorId, produce: bool, consume: bool) -> CssResult<()> {
        let entry = self.roles.entry(actor).or_insert((false, false));
        entry.0 |= produce;
        entry.1 |= consume;
        let role = match *entry {
            (true, true) => ParticipantRole::Both,
            (true, false) => ParticipantRole::Producer,
            (false, true) => ParticipantRole::Consumer,
            (false, false) => unreachable!("at least one role requested"),
        };
        self.controller.lock().sign_contract(actor, role)
    }

    /// Sign a producer contract for an organization and stand up its
    /// Local Cooperation Gateway.
    pub fn join_as_producer(&mut self, actor: ActorId) -> CssResult<()> {
        self.sign(actor, true, false)?;
        if !self.gateways.contains_key(&actor) {
            let backend = self.provider.backend(&format!("gateway-{actor}"))?;
            let gateway: SharedGateway<P::Backend> =
                Arc::new(Mutex::new(LocalCooperationGateway::open(actor, backend)?));
            // Resume source-id generation past any records recovered
            // from a previous session, so restarts never collide.
            let next_src = gateway
                .lock()
                .max_src_id()
                .map(|s| s.value() + 1)
                .unwrap_or(1);
            self.controller
                .lock()
                .register_gateway(actor, Box::new(gateway.clone()));
            self.gateways.insert(actor, gateway);
            self.src_gens
                .insert(actor, Arc::new(IdGenerator::starting_at(next_src)));
        }
        Ok(())
    }

    /// Reload every policy from the certified repository into the
    /// decision point — the restart path: operators re-register actors
    /// and re-declare schemas (code-driven), then call this to restore
    /// enforcement state. Returns the number of policies restored.
    pub fn reload_policies(&self) -> CssResult<usize> {
        let policies = self.policy_repo.lock().load_all()?;
        let mut controller = self.controller.lock();
        let n = policies.len();
        for policy in policies {
            controller.restore_policy(policy);
        }
        Ok(n)
    }

    /// Sign a consumer contract for an organization.
    pub fn join_as_consumer(&mut self, actor: ActorId) -> CssResult<()> {
        self.sign(actor, false, true)
    }

    // ---- identity management (Section 5 future work) -------------------

    /// Turn on credential enforcement: handles can then only be obtained
    /// through [`CssPlatform::producer_with_credential`] /
    /// [`CssPlatform::consumer_with_credential`].
    pub fn enable_identity_enforcement(&mut self) {
        self.identity_enforced = true;
    }

    /// Issue (or rotate) the credential for a contracted actor.
    pub fn issue_credential(&mut self, actor: ActorId) -> CssResult<Credential> {
        if !self.roles.contains_key(&actor) {
            return Err(CssError::NoContract(format!(
                "{actor} has not joined the platform"
            )));
        }
        Ok(self.identity.issue(actor))
    }

    /// Revoke a credential by serial.
    pub fn revoke_credential(&mut self, serial: u64) {
        self.identity.revoke(serial);
    }

    /// Producer handle gated by a credential check.
    pub fn producer_with_credential(
        &self,
        credential: &Credential,
    ) -> CssResult<ProducerHandle<P>> {
        let actor = self.identity.validate(credential)?;
        self.producer_unchecked(actor)
    }

    /// Consumer handle gated by a credential check.
    pub fn consumer_with_credential(
        &self,
        credential: &Credential,
    ) -> CssResult<ConsumerHandle<P>> {
        let actor = self.identity.validate(credential)?;
        self.consumer_unchecked(actor)
    }

    /// The producer-side handle for a joined producer.
    pub fn producer(&self, actor: ActorId) -> CssResult<ProducerHandle<P>> {
        if self.identity_enforced {
            return Err(CssError::Crypto(
                "identity enforcement active: use producer_with_credential".into(),
            ));
        }
        self.producer_unchecked(actor)
    }

    fn producer_unchecked(&self, actor: ActorId) -> CssResult<ProducerHandle<P>> {
        let gateway = self
            .gateways
            .get(&actor)
            .ok_or_else(|| CssError::NoContract(format!("{actor} has not joined as producer")))?
            .clone();
        let src_gen = self
            .src_gens
            .get(&actor)
            .expect("created with gateway")
            .clone();
        Ok(ProducerHandle::new(
            self.controller.clone(),
            self.policy_repo.clone(),
            self.pending.clone(),
            gateway,
            src_gen,
            actor,
        ))
    }

    /// The consumer-side handle for a joined consumer. The handle may be
    /// for the organization itself or any unit/role inside it.
    pub fn consumer(&self, actor: ActorId) -> CssResult<ConsumerHandle<P>> {
        if self.identity_enforced {
            return Err(CssError::Crypto(
                "identity enforcement active: use consumer_with_credential".into(),
            ));
        }
        self.consumer_unchecked(actor)
    }

    fn consumer_unchecked(&self, actor: ActorId) -> CssResult<ConsumerHandle<P>> {
        let org = self
            .controller
            .lock()
            .actors()
            .organization_of(actor)
            .ok_or_else(|| CssError::NotFound(format!("actor {actor} not registered")))?;
        match self.roles.get(&org) {
            Some((_, true)) => Ok(ConsumerHandle::new(
                self.controller.clone(),
                self.pending.clone(),
                actor,
            )),
            _ => Err(CssError::NoContract(format!(
                "{org} has not joined as consumer"
            ))),
        }
    }

    /// The citizen-facing handle for a data subject (PHR view, consent,
    /// subject audit trail).
    pub fn citizen(&self, person: PersonId) -> CitizenHandle<P> {
        CitizenHandle::new(self.controller.clone(), person)
    }

    // ---- consent & audit ---------------------------------------------------

    /// Record a consent directive from a data subject.
    pub fn record_consent(
        &self,
        person: PersonId,
        scope: ConsentScope,
        decision: ConsentDecision,
    ) -> CssResult<()> {
        self.controller
            .lock()
            .record_consent(person, scope, decision)
    }

    /// Run an audit inquiry.
    pub fn audit_query(&self, q: &AuditQuery) -> Vec<AuditRecord> {
        self.controller.lock().audit_query(q)
    }

    /// Aggregate audit report.
    pub fn audit_report(&self, q: &AuditQuery) -> AuditReport {
        self.controller.lock().audit_report(q)
    }

    /// Verify the audit hash chain.
    pub fn verify_audit(&self) -> CssResult<()> {
        self.controller.lock().verify_audit()
    }

    /// Direct (shared) access to the data controller for advanced use
    /// and experiments.
    pub fn controller(&self) -> SharedController<P> {
        self.controller.clone()
    }

    /// The persisted XACML policy repository.
    pub fn policy_repository(&self) -> SharedRepo<P> {
        self.policy_repo.clone()
    }

    /// All pending access requests (any producer).
    /// Operational snapshot: sizes of the platform's core state, the
    /// kind of dashboard numbers a platform operator watches.
    pub fn stats(&self) -> PlatformStats {
        let controller = self.controller.lock();
        PlatformStats {
            indexed_events: controller.index_len(),
            audit_records: controller.audit_len(),
            policies: controller.policy_count(),
            actors: controller.actors().len(),
            bus: controller.bus_stats(),
            pending_requests: self
                .pending
                .lock()
                .iter()
                .filter(|r| r.status == crate::pending::AccessRequestStatus::Pending)
                .count(),
        }
    }

    pub fn pending_requests(&self) -> Vec<AccessRequest> {
        self.pending.lock().clone()
    }
}

/// Operational counters reported by [`CssPlatform::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlatformStats {
    /// Notifications held in the events index.
    pub indexed_events: usize,
    /// Records on the audit log.
    pub audit_records: usize,
    /// Privacy policies installed at the decision point.
    pub policies: usize,
    /// Actors in the organizational registry.
    pub actors: usize,
    /// Bus counters.
    pub bus: css_bus::BrokerStats,
    /// Access requests awaiting a producer decision.
    pub pending_requests: usize,
}
