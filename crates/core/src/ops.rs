//! The live ops plane: default health checks, default SLOs, and the
//! exposition server assembly behind
//! [`CssPlatformBuilder::ops_server`](crate::CssPlatformBuilder::ops_server).
//!
//! Everything served is an aggregate — counters, gauges, histogram
//! buckets, span timings, KPI totals. The closures handed to
//! [`css_health::OpsState`] are built exclusively from the platform's
//! telemetry registry and the privacy-safe read models (trace spans,
//! process KPIs); event payloads and decrypted identifiers are not
//! reachable from here, and `css-lint`'s detail-confinement rule keeps
//! it that way.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::{Arc, Mutex as StdMutex, PoisonError};
use std::time::Duration as StdDuration;

use css_blackbox::{ComponentState, FlightRecorder, HealthSample, Severity, SloSample, Trigger};
use css_chronicle::{AnomalyConfig, AnomalyDetector, AnomalyStatus, Chronicle, Retention};
use css_health::{
    AlertLevel, DropRateCheck, FnCheck, GaugeThresholdCheck, HealthCheck, HealthRegistry,
    HealthStatus, JsonBuf, LatencyCheck, OpsHandle, OpsServer, OpsState, RatioFloorCheck, Sampler,
    Slo, SloEngine, SloStatus,
};
use css_monitor::{Kpis, ProcessMonitor};
use css_storage::LogBackend;
use css_telemetry::{MetricsRegistry, TelemetrySnapshot};
use css_trace::{render_chrome_trace, Tracer};
use css_types::{Clock, CssResult, Timestamp};

use crate::platform::{refresh_platform_gauges, SharedController, SharedPending};
use crate::provider::BackendProvider;

// ---- default thresholds ---------------------------------------------------
//
// Chosen for the paper's regional-deployment scale (tens of
// organizations, thousands of events/day); override by registering
// custom checks/SLOs on the builder.

/// Bus backlog that merits operator attention.
const BUS_QUEUE_DEPTH_DEGRADED: i64 = 10_000;
/// Unacked in-flight deliveries past which consumers are stalling:
/// messages are being handed out but neither acked nor nacked, so
/// visibility timeouts (and redelivery churn) are imminent.
const BUS_INFLIGHT_DEGRADED: i64 = 1_000;
/// Lifetime p99 delivery lag past which the bus is degraded.
const BUS_DELIVER_P99_CEILING_NS: u64 = 5_000_000; // 5 ms
/// PDP decision-cache hit-rate floor (after warmup).
const PDP_HIT_RATE_FLOOR: f64 = 0.5;
/// Lookups before the PDP cache check starts judging.
const PDP_MIN_LOOKUPS: u64 = 10_000;
/// Pending detail requests that suggest producers are not keeping up.
const GATEWAY_PENDING_DEGRADED: i64 = 1_000;
/// Span drop rate past which the trace ring is undersized.
const TRACE_DROP_CEILING: f64 = 0.25;
/// Spans before the trace drop-rate check starts judging.
const TRACE_MIN_SPANS: u64 = 1_000;
/// Percent by which the busiest index shard may exceed the mean shard
/// load before the plane counts as degraded (200% = one shard carrying
/// 3× its fair share — the citizen-hash routing has gone skewed).
const SHARD_IMBALANCE_DEGRADED: i64 = 200;

/// Detail-request p99 target (paper §7 reports sub-millisecond
/// enforcement; 200 µs holds comfortably on the E15 workload).
const DETAIL_P99_TARGET_NS: u64 = 200_000;
/// Publish error budget: at most 0.1 % of publishes denied.
const PUBLISH_ERROR_BUDGET: f64 = 0.001;

/// Frame drop rate past which the flight-recorder ring is undersized
/// for the incident window it is supposed to preserve (same convention
/// as the trace ring: lifetime ratio, judged only after warmup).
const BLACKBOX_DROP_CEILING: f64 = 0.25;
/// Frames before the blackbox drop-rate check starts judging.
const BLACKBOX_MIN_FRAMES: u64 = 1_000;
/// Where incident bundles land unless `.incident_dir()` overrides it.
const DEFAULT_INCIDENT_DIR: &str = "target/incidents";

/// The metric the chronicle's anomaly detector watches (per-tick p99).
const ANOMALY_METRIC: &str = "stage.total";
/// How much raw history an anomaly-triggered bundle embeds (5 min).
const ANOMALY_HISTORY_WINDOW_MS: u64 = 300_000;

/// Ops-plane knobs accumulated by the builder.
pub(crate) struct OpsConfig {
    pub addr: String,
    pub interval: StdDuration,
    pub checks: Vec<Box<dyn HealthCheck>>,
    pub slos: Vec<Slo>,
    pub monitor: Option<Arc<parking_lot::Mutex<ProcessMonitor>>>,
    /// Flight-recorder ring capacity; `None` leaves the recorder off.
    pub blackbox: Option<usize>,
    /// Incident bundle directory (default `target/incidents`).
    pub incident_dir: Option<PathBuf>,
    /// Metrics-history retention; `None` leaves the chronicle off.
    pub chronicle: Option<Retention>,
    /// When the platform was built (uptime zero point).
    pub boot: Timestamp,
}

/// The running ops plane: exposition server + background sampler +
/// shared SLO engine. Dropping it (with the platform) stops the
/// sampler and shuts the server down gracefully.
pub struct OpsPlane {
    handle: OpsHandle,
    engine: Arc<StdMutex<SloEngine>>,
    recorder: Option<Arc<FlightRecorder>>,
    chronicle: Option<Arc<Chronicle>>,
    anomaly: Option<Arc<AnomalyDetector>>,
    _sampler: Sampler,
}

impl OpsPlane {
    /// The exposition server handle (bound address, shutdown on drop).
    pub fn handle(&self) -> &OpsHandle {
        &self.handle
    }

    /// Where the server is listening — with `ops_server("127.0.0.1:0")`
    /// this is the ephemeral port that was assigned.
    pub fn local_addr(&self) -> SocketAddr {
        self.handle.local_addr()
    }

    /// The current SLO table (same data as `GET /slo`).
    pub fn slo_table(&self) -> Vec<SloStatus> {
        self.engine
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .table()
    }

    /// The incident flight recorder, when
    /// [`blackbox`](crate::CssPlatformBuilder::blackbox) enabled it.
    pub fn blackbox(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.as_ref()
    }

    /// The metrics history, when
    /// [`chronicle`](crate::CssPlatformBuilder::chronicle) enabled it.
    pub fn chronicle(&self) -> Option<&Arc<Chronicle>> {
        self.chronicle.as_ref()
    }

    /// The anomaly detector's current state, when the chronicle is on.
    pub fn anomaly_status(&self) -> Option<AnomalyStatus> {
        self.anomaly.as_ref().map(|d| d.status())
    }
}

/// Adapt the SLO engine's alert table to the recorder's plain samples
/// (css-health and css-blackbox sit side by side at layer 3 of the
/// lint DAG, so the platform translates between them).
fn slo_samples(table: &[SloStatus]) -> Vec<SloSample> {
    table
        .iter()
        .map(|s| SloSample {
            name: s.name.clone(),
            fast_burn: s.fast_burn,
            slow_burn: s.slow_burn,
            severity: match s.alert {
                AlertLevel::Ok => Severity::Ok,
                AlertLevel::Warning => Severity::Warning,
                AlertLevel::Critical => Severity::Critical,
            },
        })
        .collect()
}

/// Adapt a health report to the recorder's plain samples.
fn health_samples(report: &css_health::HealthReport) -> Vec<HealthSample> {
    report
        .components
        .iter()
        .map(|c| HealthSample {
            component: c.component.clone(),
            state: match &c.status {
                HealthStatus::Healthy => ComponentState::Healthy,
                HealthStatus::Degraded { .. } => ComponentState::Degraded,
                HealthStatus::Unhealthy { .. } => ComponentState::Unhealthy,
            },
            reason: c.status.reason().map(str::to_string),
        })
        .collect()
}

/// Append a probe marker, read it back, and truncate it away again —
/// the storage health check's active round-trip. Kept bounded: the
/// probe log never retains more than one marker.
fn storage_probe(backend: &mut impl LogBackend) -> HealthStatus {
    const MARKER: &[u8] = b"css-health-probe";
    let offset = match backend.append(MARKER) {
        Ok(offset) => offset,
        Err(e) => return HealthStatus::unhealthy(format!("probe append failed: {e}")),
    };
    match backend.read_at(offset, MARKER.len()) {
        Ok(read) if read == MARKER => {}
        Ok(_) => return HealthStatus::unhealthy("probe read returned different bytes"),
        Err(e) => return HealthStatus::unhealthy(format!("probe read failed: {e}")),
    }
    match backend.truncate(offset) {
        Ok(()) => HealthStatus::Healthy,
        Err(e) => HealthStatus::degraded(format!("probe truncate failed: {e}")),
    }
}

/// The component checks every platform gets: storage round-trip, bus
/// backlog and delivery lag, PDP cache hit rate, gateway pending
/// backlog, trace-ring drop rate, index-shard balance.
fn default_checks<B: LogBackend + 'static>(probe_backend: B) -> Vec<Box<dyn HealthCheck>> {
    let probe = StdMutex::new(probe_backend);
    vec![
        Box::new(FnCheck::new("storage", move || {
            storage_probe(&mut *probe.lock().unwrap_or_else(PoisonError::into_inner))
        })),
        Box::new(
            GaugeThresholdCheck::new("bus-queue", "bus.queue_depth", BUS_QUEUE_DEPTH_DEGRADED)
                .unhealthy_above(BUS_QUEUE_DEPTH_DEGRADED * 10),
        ),
        Box::new(
            GaugeThresholdCheck::new("bus-inflight", "bus.inflight", BUS_INFLIGHT_DEGRADED)
                .unhealthy_above(BUS_INFLIGHT_DEGRADED * 10),
        ),
        Box::new(LatencyCheck::new(
            "bus-delivery",
            "bus.deliver",
            BUS_DELIVER_P99_CEILING_NS,
        )),
        Box::new(RatioFloorCheck::new(
            "policy",
            "pdp.cache_hit",
            "pdp.cache_miss",
            PDP_HIT_RATE_FLOOR,
            PDP_MIN_LOOKUPS,
        )),
        Box::new(GaugeThresholdCheck::new(
            "gateway",
            "platform.pending_requests",
            GATEWAY_PENDING_DEGRADED,
        )),
        Box::new(DropRateCheck::new(
            "trace",
            "trace.spans_dropped",
            "trace.spans_recorded",
            TRACE_DROP_CEILING,
            TRACE_MIN_SPANS,
        )),
        Box::new(GaugeThresholdCheck::new(
            "shard-balance",
            "shard.imbalance_pct",
            SHARD_IMBALANCE_DEGRADED,
        )),
    ]
}

/// The SLOs every platform gets: detail-request enforcement p99 and
/// the publish error ratio.
fn default_slos() -> Vec<Slo> {
    vec![
        Slo::latency_p99("detail_request_p99", "stage.total", DETAIL_P99_TARGET_NS),
        Slo::error_ratio(
            "publish_errors",
            "controller.publish_denied",
            &["controller.published", "controller.publish_denied"],
            PUBLISH_ERROR_BUDGET,
        ),
    ]
}

/// `GET /monitor` body: the PRM's aggregate KPIs.
fn kpis_json(kpis: &Kpis) -> String {
    let mut j = JsonBuf::new();
    j.begin_object();
    j.key("total").u64(kpis.total as u64);
    j.key("running").u64(kpis.running as u64);
    j.key("completed").u64(kpis.completed as u64);
    j.key("deadline_violations")
        .u64(kpis.deadline_violations as u64);
    j.key("regressions").u64(kpis.regressions as u64);
    j.key("mean_completion_ms")
        .u64(kpis.mean_completion.as_millis());
    j.key("unmatched_events").u64(kpis.unmatched_events);
    j.key("completion_rate").f64(kpis.completion_rate());
    j.end_object();
    j.finish()
}

/// Assemble and start the ops plane: build the check/SLO sets, spawn
/// the sampler, bind the server.
#[allow(clippy::too_many_arguments)] // one-shot internal assembly call
pub(crate) fn start_ops<P: BackendProvider>(
    config: OpsConfig,
    provider: &P,
    registry: &MetricsRegistry,
    clock: &Arc<dyn Clock>,
    tracer: &Tracer,
    controller: &SharedController<P>,
    pending: &SharedPending,
) -> CssResult<OpsPlane> {
    let OpsConfig {
        addr,
        interval,
        checks,
        slos,
        monitor,
        blackbox,
        incident_dir,
        chronicle,
        boot,
    } = config;

    let recorder = blackbox.map(|capacity| {
        let dir = incident_dir.unwrap_or_else(|| PathBuf::from(DEFAULT_INCIDENT_DIR));
        Arc::new(FlightRecorder::new(capacity, dir, registry))
    });
    let chronicle = chronicle.map(|retention| Arc::new(Chronicle::new(retention, registry)));
    let anomaly = chronicle
        .as_ref()
        .map(|_| Arc::new(AnomalyDetector::new(AnomalyConfig::new(ANOMALY_METRIC))));

    let mut health = HealthRegistry::new();
    for check in default_checks(provider.backend("health-probe")?) {
        health.register(check);
    }
    if recorder.is_some() {
        health.register(Box::new(DropRateCheck::new(
            "blackbox",
            "blackbox.frames_dropped",
            "blackbox.frames_recorded",
            BLACKBOX_DROP_CEILING,
            BLACKBOX_MIN_FRAMES,
        )));
    }
    if let Some(detector) = &anomaly {
        // Drift is visible on `/health` for as long as it lasts: the
        // detector freezes its baselines while anomalous, so the check
        // stays Degraded until the metric actually recovers.
        let detector = detector.clone();
        health.register(Box::new(FnCheck::new("chronicle-anomaly", move || {
            let s = detector.status();
            if s.anomalous {
                HealthStatus::degraded(format!(
                    "{} drifting: {:.0} vs expected {:.0}",
                    s.metric, s.value, s.expected
                ))
            } else {
                HealthStatus::Healthy
            }
        })));
    }
    for check in checks {
        health.register(check);
    }
    let health = Arc::new(health);

    let mut engine = SloEngine::new();
    for slo in default_slos() {
        engine.register(slo);
    }
    for slo in slos {
        engine.register(slo);
    }
    let engine = Arc::new(StdMutex::new(engine));

    // One shared snapshot closure: refresh the platform.* gauges (the
    // same path `CssPlatform::telemetry` takes), then snapshot — so
    // `/metrics` and the health checks see identical, current numbers.
    let snapshot_fn = {
        let controller = controller.clone();
        let pending = pending.clone();
        let registry = registry.clone();
        let clock = clock.clone();
        Arc::new(move || {
            refresh_platform_gauges(&controller, &pending, &registry, clock.as_ref(), boot);
            registry.snapshot()
        })
    };

    let metrics_fn = snapshot_fn.clone();
    let health_fn = {
        let snapshot_fn = snapshot_fn.clone();
        let health = health.clone();
        move || health.report(&snapshot_fn())
    };
    let slo_fn = {
        let engine = engine.clone();
        move || {
            engine
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .to_json()
        }
    };
    let traces_fn = {
        let tracer = tracer.clone();
        move || render_chrome_trace(&tracer.finished_spans())
    };

    let mut state = OpsState::new(move || metrics_fn(), health_fn, slo_fn).with_traces(traces_fn);
    if let Some(monitor) = monitor {
        state = state.with_monitor(move || kpis_json(&monitor.lock().kpis()));
    }
    if let Some(chronicle) = &chronicle {
        let query = chronicle.clone();
        let range = chronicle.clone();
        state = state
            .with_query(move |raw| css_chronicle::query_json(&query, raw))
            .with_range(move |raw| css_chronicle::range_json(&range, raw));
    }
    if let Some(recorder) = &recorder {
        state = state
            .with_incidents({
                let recorder = recorder.clone();
                move || recorder.incidents_json()
            })
            .with_exemplars({
                let snapshot_fn = snapshot_fn.clone();
                move || css_blackbox::exemplars_json(&snapshot_fn())
            })
            .with_capture({
                let recorder = recorder.clone();
                let snapshot_fn = snapshot_fn.clone();
                let tracer = tracer.clone();
                let clock = clock.clone();
                move || {
                    let snapshot = snapshot_fn();
                    let spans = tracer.finished_spans();
                    recorder
                        .dump("POST /debug/capture", &snapshot, &spans, clock.now().0)
                        .json
                }
            });
    }

    let sampler = if recorder.is_none() && chronicle.is_none() {
        Sampler::spawn(registry.clone(), clock.clone(), engine.clone(), interval)
    } else {
        // The chronicle and the recorder ride the sampler: every tick
        // they see the same snapshot the SLO engine just consumed,
        // plus the post-tick alert table and the health report. The
        // recorder fires a capture on each transition into
        // Critical/Unhealthy; the anomaly detector's rising edge fires
        // one with the relevant history window embedded.
        let observer = {
            let recorder = recorder.clone();
            let chronicle = chronicle.clone();
            let anomaly = anomaly.clone();
            let tracer = tracer.clone();
            let health = health.clone();
            move |snapshot: &TelemetrySnapshot, now: Timestamp, table: &[SloStatus]| {
                let at_ms = now.0;
                // History first, so this tick's point is queryable by
                // the detector and embedded in any capture below.
                let mut anomaly_trigger = None;
                if let Some(chronicle) = &chronicle {
                    chronicle.append(snapshot, now);
                    if let Some(detector) = &anomaly {
                        if let Some(point) = chronicle.latest(detector.metric()) {
                            // Judge only ticks that recorded fresh
                            // observations — an idle platform is not a
                            // latency recovery.
                            if point.to_ms == at_ms {
                                let v = detector.observe(point.last);
                                if v.edge {
                                    anomaly_trigger = Some(Trigger::Anomaly {
                                        metric: detector.metric().to_string(),
                                        value: v.value,
                                        expected: v.expected,
                                    });
                                }
                            }
                        }
                    }
                }
                if let Some(recorder) = &recorder {
                    recorder.observe_telemetry(snapshot, at_ms);
                    let spans = tracer.finished_spans();
                    recorder.observe_spans(&spans, at_ms);
                    let mut triggers = recorder.observe_slos(&slo_samples(table), at_ms);
                    let report = health.report(snapshot);
                    triggers.extend(recorder.observe_health(&health_samples(&report), at_ms));
                    for trigger in triggers {
                        recorder.capture(trigger, snapshot, &spans, at_ms);
                    }
                    if let Some(trigger) = anomaly_trigger {
                        let history = chronicle.as_ref().map(|c| {
                            css_chronicle::history_json(
                                c,
                                &[ANOMALY_METRIC],
                                anomaly.as_deref(),
                                at_ms.saturating_sub(ANOMALY_HISTORY_WINDOW_MS),
                                at_ms,
                            )
                        });
                        recorder.capture_with_history(
                            trigger,
                            snapshot,
                            &spans,
                            at_ms,
                            history.as_deref(),
                        );
                    }
                }
            }
        };
        Sampler::spawn_observed(
            {
                let snapshot_fn = snapshot_fn.clone();
                move || snapshot_fn()
            },
            clock.clone(),
            engine.clone(),
            interval,
            observer,
        )
    };
    let handle = OpsServer::bind(addr.as_str(), state)?;
    Ok(OpsPlane {
        handle,
        engine,
        recorder,
        chronicle,
        anomaly,
        _sampler: sampler,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use css_storage::MemBackend;

    #[test]
    fn storage_probe_round_trips_and_stays_bounded() {
        let mut backend = MemBackend::new();
        for _ in 0..100 {
            assert_eq!(storage_probe(&mut backend), HealthStatus::Healthy);
        }
        assert!(backend.is_empty(), "probe must truncate its marker away");
    }

    #[test]
    fn kpis_json_is_well_formed() {
        let kpis = Kpis {
            total: 4,
            running: 1,
            completed: 2,
            deadline_violations: 1,
            regressions: 0,
            mean_completion: css_types::Duration::millis(2_000),
            unmatched_events: 7,
        };
        let json = kpis_json(&kpis);
        assert!(json.contains("\"total\":4"), "{json}");
        assert!(json.contains("\"mean_completion_ms\":2000"), "{json}");
        assert!(json.contains("\"completion_rate\":0.6667"), "{json}");
    }
}
