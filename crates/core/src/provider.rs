//! Storage backend provisioning for platform components.
//!
//! Every durable component (audit log, each gateway's detail store, the
//! policy repository) needs its own backend. A [`BackendProvider`]
//! hands them out by name: [`MemoryProvider`] for tests and benchmarks,
//! [`DirProvider`] for real on-disk deployments (one log file per
//! component under a directory).

use std::path::PathBuf;

use css_storage::{FileBackend, LogBackend, MemBackend};
use css_types::CssResult;

/// Creates named storage backends for platform components.
pub trait BackendProvider {
    /// The backend type produced.
    type Backend: LogBackend + 'static;

    /// Create (or reopen) the backend for the named component, e.g.
    /// `"audit"`, `"gateway-act-00000001"`, `"policies"`.
    fn backend(&self, name: &str) -> CssResult<Self::Backend>;
}

/// Volatile in-memory backends (fresh every call).
#[derive(Debug, Default, Clone, Copy)]
pub struct MemoryProvider;

impl BackendProvider for MemoryProvider {
    type Backend = MemBackend;

    fn backend(&self, _name: &str) -> CssResult<MemBackend> {
        Ok(MemBackend::new())
    }
}

/// File-backed backends under a base directory; reopening the same name
/// resumes the existing log.
#[derive(Debug, Clone)]
pub struct DirProvider {
    base: PathBuf,
}

impl DirProvider {
    /// Provider rooted at `base` (created if missing).
    pub fn new(base: impl Into<PathBuf>) -> CssResult<Self> {
        let base = base.into();
        std::fs::create_dir_all(&base)?;
        Ok(DirProvider { base })
    }

    /// The directory backing this provider.
    pub fn base(&self) -> &std::path::Path {
        &self.base
    }
}

impl BackendProvider for DirProvider {
    type Backend = FileBackend;

    fn backend(&self, name: &str) -> CssResult<FileBackend> {
        let safe: String = name
            .chars()
            .map(|c| {
                if c.is_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        FileBackend::open(self.base.join(format!("{safe}.log")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_provider_gives_fresh_backends() {
        let p = MemoryProvider;
        let mut a = p.backend("audit").unwrap();
        a.append(b"x").unwrap();
        let b = p.backend("audit").unwrap();
        assert!(b.is_empty());
    }

    #[test]
    fn dir_provider_persists_by_name() {
        let dir = std::env::temp_dir().join(format!("css-provider-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let p = DirProvider::new(&dir).unwrap();
        {
            let mut a = p.backend("audit").unwrap();
            a.append(b"event").unwrap();
            a.sync().unwrap();
        }
        let a = p.backend("audit").unwrap();
        assert_eq!(a.len(), 5);
        // Unsafe characters are sanitized, not errors.
        let weird = p.backend("gateway/act:1").unwrap();
        assert!(weird.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
