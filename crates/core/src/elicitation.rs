//! The Privacy Requirements Elicitation Tool (Section 6).
//!
//! The paper's web wizard (Figs. 6–7) asks the data owner to pick, for
//! one type of event: (i) the fields to expose, (ii) the consumers,
//! (iii) the admissible purposes, plus a label, a description, and an
//! optional validity date. It then "automatically generates and stores
//! in a policy repository the privacy policy in XACML format". The
//! point is that a privacy expert needs **no** knowledge of XACML or of
//! the source DB schema.
//!
//! [`PolicyWizard`] is that flow as a validated builder: every step
//! rejects invalid input with a domain error ([`WizardError`]) naming
//! exactly what the UI would highlight, and [`PolicyWizard::save`]
//! produces one [`css_policy::PrivacyPolicy`] per selected consumer,
//! installs them at the controller, and persists their XACML form.

use std::collections::BTreeSet;
use std::fmt;

use css_event::EventSchema;
use css_policy::{PrivacyPolicy, ValidityWindow};
use css_types::{ActorId, CssError, CssResult, PolicyId, Purpose, Timestamp};

use crate::platform::{SharedController, SharedRepo};
use crate::provider::BackendProvider;

/// A validation failure at a wizard step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WizardError {
    /// A selected field is not part of the event's schema.
    UnknownField(String),
    /// The consumer actor is not registered at the controller.
    UnknownConsumer(ActorId),
    /// No consumer selected before saving.
    NoConsumers,
    /// No purpose selected before saving.
    NoPurposes,
    /// The validity window ends before it starts.
    InvertedValidity,
    /// The rule label is empty.
    MissingLabel,
}

impl fmt::Display for WizardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WizardError::UnknownField(name) => {
                write!(f, "field {name:?} is not part of this event type")
            }
            WizardError::UnknownConsumer(id) => write!(f, "consumer {id} is not registered"),
            WizardError::NoConsumers => f.write_str("select at least one consumer"),
            WizardError::NoPurposes => f.write_str("select at least one purpose"),
            WizardError::InvertedValidity => f.write_str("validity window ends before it starts"),
            WizardError::MissingLabel => f.write_str("give the rule a label"),
        }
    }
}

impl std::error::Error for WizardError {}

impl From<WizardError> for CssError {
    fn from(e: WizardError) -> Self {
        CssError::Invalid(e.to_string())
    }
}

/// The step-by-step policy builder.
///
/// Obtained from [`crate::ProducerHandle::policy_wizard`]; the producer
/// and event type are fixed at construction, mirroring the dashboard's
/// "set up a new rule for `<event>`" entry point (Fig. 6).
pub struct PolicyWizard<P: BackendProvider> {
    controller: SharedController<P>,
    repo: SharedRepo<P>,
    producer: ActorId,
    schema: EventSchema,
    fields: BTreeSet<String>,
    consumers: Vec<ActorId>,
    purposes: BTreeSet<Purpose>,
    label: String,
    description: String,
    validity: ValidityWindow,
}

impl<P: BackendProvider> PolicyWizard<P> {
    pub(crate) fn new(
        controller: SharedController<P>,
        repo: SharedRepo<P>,
        producer: ActorId,
        schema: EventSchema,
    ) -> Self {
        PolicyWizard {
            controller,
            repo,
            producer,
            schema,
            fields: BTreeSet::new(),
            consumers: Vec::new(),
            purposes: BTreeSet::new(),
            label: String::new(),
            description: String::new(),
            validity: ValidityWindow::ALWAYS,
        }
    }

    /// The fields the wizard offers (the event's declared fields).
    pub fn available_fields(&self) -> Vec<&str> {
        self.schema.field_names().collect()
    }

    /// Step (i): select the accessible fields. Selecting none is legal —
    /// it authorizes notifications/subscription without any detail field.
    pub fn select_fields<I, S>(mut self, fields: I) -> Result<Self, WizardError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        for f in fields {
            let name = f.as_ref();
            if self.schema.field_def(name).is_none() {
                return Err(WizardError::UnknownField(name.to_string()));
            }
            self.fields.insert(name.to_string());
        }
        Ok(self)
    }

    /// Step (i) variant: select every declared field.
    pub fn select_all_fields(mut self) -> Self {
        self.fields = self.schema.field_names().map(str::to_string).collect();
        self
    }

    /// Step (ii): select the consumer organizations/units.
    pub fn grant_to(
        mut self,
        consumers: impl IntoIterator<Item = ActorId>,
    ) -> Result<Self, WizardError> {
        for c in consumers {
            if self.controller.actors().get(c).is_none() {
                return Err(WizardError::UnknownConsumer(c));
            }
            if !self.consumers.contains(&c) {
                self.consumers.push(c);
            }
        }
        Ok(self)
    }

    /// Step (iii): select the admissible purposes.
    pub fn for_purposes(mut self, purposes: impl IntoIterator<Item = Purpose>) -> Self {
        self.purposes.extend(purposes);
        self
    }

    /// Label and description for the rule list in the dashboard.
    pub fn labeled(mut self, label: impl Into<String>, description: impl Into<String>) -> Self {
        self.label = label.into();
        self.description = description.into();
        self
    }

    /// Optional "valid until" date (Fig. 7) — e.g. the end of a private
    /// company's care contract.
    pub fn valid_until(mut self, until: Timestamp) -> Self {
        self.validity.not_after = Some(until);
        self
    }

    /// Optional start of validity.
    pub fn valid_from(mut self, from: Timestamp) -> Self {
        self.validity.not_before = Some(from);
        self
    }

    /// Final step: validate, generate one policy per consumer, install
    /// them at the controller and persist their XACML form.
    pub fn save(self) -> CssResult<Vec<PolicyId>> {
        if self.consumers.is_empty() {
            return Err(WizardError::NoConsumers.into());
        }
        if self.purposes.is_empty() {
            return Err(WizardError::NoPurposes.into());
        }
        if self.label.trim().is_empty() {
            return Err(WizardError::MissingLabel.into());
        }
        if let (Some(from), Some(to)) = (self.validity.not_before, self.validity.not_after) {
            if to < from {
                return Err(WizardError::InvertedValidity.into());
            }
        }
        let mut ids = Vec::with_capacity(self.consumers.len());
        let mut saved = Vec::with_capacity(self.consumers.len());
        for consumer in &self.consumers {
            let policy = PrivacyPolicy::new(
                self.controller.next_policy_id(),
                self.producer,
                *consumer,
                self.schema.id.clone(),
                self.purposes.iter().cloned(),
                self.fields.iter().cloned(),
            )
            .valid(self.validity)
            .labeled(self.label.clone(), self.description.clone());
            ids.push(policy.id);
            self.controller.define_policy(policy.clone())?;
            saved.push(policy);
        }
        // One group commit for the whole consumer fan-out: a single
        // storage write + sync instead of one per policy.
        let mut repo = self.repo.lock();
        repo.save_all(&saved)?;
        Ok(ids)
    }
}
