//! # css-core — the CSS platform facade
//!
//! This crate assembles the subsystem crates into the system of the
//! paper and exposes the API a deployment would program against:
//!
//! - [`CssPlatform`]: one data controller plus the gateways of every
//!   producer, wired over the in-process service bus;
//! - [`ProducerHandle`]: what a source system (hospital, telecare
//!   company, municipality) sees — declare event classes, publish
//!   events, author privacy policies;
//! - [`ConsumerHandle`]: what a consumer (family doctor, social welfare
//!   department, governance) sees — subscribe, inquire the index,
//!   request details with a stated purpose;
//! - [`PolicyWizard`]: the Privacy Requirements Elicitation Tool of
//!   Section 6, as a validated step-by-step builder;
//! - [`pending`]: the pending-access-request flow of Section 5 — a
//!   consumer asks for a class it has no policy for, the producer is
//!   notified and guided to define one.
//!
//! ## Quickstart
//!
//! ```
//! use css_core::prelude::*;
//!
//! let mut platform = CssPlatform::in_memory();
//! let hospital = platform.register_organization("Hospital S. Maria").unwrap();
//! let doctor = platform.register_organization("Family Doctor").unwrap();
//! platform.join(hospital, Role::Producer).unwrap();
//! platform.join(doctor, Role::Consumer).unwrap();
//!
//! // Producer declares a class of events.
//! let schema = EventSchema::new(EventTypeId::v1("blood-test"), "Blood Test", hospital)
//!     .field(FieldDef::required("PatientId", FieldKind::Integer))
//!     .field(FieldDef::required("Result", FieldKind::Text).sensitive());
//! platform.producer(hospital).unwrap().declare(&schema, Some("health/laboratory")).unwrap();
//!
//! // Producer authors a policy through the elicitation wizard.
//! platform
//!     .producer(hospital).unwrap()
//!     .policy_wizard(&EventTypeId::v1("blood-test")).unwrap()
//!     .select_fields(["PatientId", "Result"]).unwrap()
//!     .grant_to([doctor]).unwrap()
//!     .for_purposes([Purpose::HealthcareTreatment])
//!     .labeled("doctor-access", "treatment access")
//!     .save().unwrap();
//! ```

pub mod citizen;
pub mod consumer;
pub mod elicitation;
pub mod ops;
pub mod pending;
pub mod platform;
pub mod producer;
pub mod provider;

pub use citizen::CitizenHandle;
pub use consumer::{ConsumerHandle, Delivered, Subscription};
pub use elicitation::{PolicyWizard, WizardError};
pub use ops::OpsPlane;
pub use pending::{AccessRequest, AccessRequestStatus, PendingQueue, DEFAULT_PENDING_CAPACITY};
pub use platform::{default_shard_count, CssPlatform, CssPlatformBuilder, PlatformStats, Role};
pub use producer::ProducerHandle;
pub use provider::{BackendProvider, DirProvider, MemoryProvider};

pub use css_blackbox::{CaptureOutcome, FlightRecorder, IncidentRef};
pub use css_chronicle::{AnomalyStatus, Chronicle, Resolution, Retention};

/// Commonly used items across the whole platform.
pub mod prelude {
    pub use crate::{
        CitizenHandle, ConsumerHandle, CssPlatform, CssPlatformBuilder, Delivered, PolicyWizard,
        ProducerHandle, Role, Subscription,
    };
    pub use css_controller::{ConsentDecision, ConsentScope, Credential, ParticipantRole};
    pub use css_event::{
        DetailMessage, EventDetails, EventSchema, FieldDef, FieldKind, FieldValue,
        NotificationMessage, PrivacyAwareEvent,
    };
    pub use css_policy::{PrivacyPolicy, ValidityWindow};
    pub use css_telemetry::{MetricsRegistry, TelemetrySnapshot};
    pub use css_types::{
        Actor, ActorId, Clock, CssError, CssResult, DenyReason, Duration, EventTypeId,
        GlobalEventId, PersonId, PersonIdentity, Purpose, SimClock, Timestamp,
    };
}
