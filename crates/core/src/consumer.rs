//! The consumer-side handle.

use css_bus::SubscriberHandle;
use css_event::{NotificationMessage, PrivacyAwareEvent};
use css_trace::{TraceContext, TraceId};
use css_types::{ActorId, CssResult, EventTypeId, GlobalEventId, PersonId, Purpose, Timestamp};

use crate::pending::AccessRequestStatus;
use crate::platform::{SharedController, SharedPending};
use crate::provider::BackendProvider;

/// One notification taken off a subscription, with its delivery
/// metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivered {
    /// The notification payload.
    pub message: NotificationMessage,
    /// The causal trace of the publish that routed the notification
    /// (present when the producer published under an enabled tracer) —
    /// hand it to `ProcessMonitor::feed_traced` to join monitoring KPIs
    /// back to span trees and audit records.
    pub trace: Option<TraceId>,
    /// 1-based delivery attempt (greater than one after a nack,
    /// visibility timeout, or worker detach redelivered the message).
    pub attempt: u32,
    /// Group-local offset, usable with [`Subscription::replay_from`].
    pub offset: u64,
}

impl Delivered {
    fn from_bus(d: css_bus::Delivery<NotificationMessage>) -> Self {
        Delivered {
            message: d.message,
            trace: d.trace,
            attempt: d.attempt,
            offset: d.offset,
        }
    }
}

/// A live subscription to a class of events, yielding notification
/// messages.
pub struct Subscription {
    inner: SubscriberHandle<NotificationMessage>,
    event_type: EventTypeId,
}

impl Subscription {
    /// The class subscribed to.
    pub fn event_type(&self) -> &EventTypeId {
        &self.event_type
    }

    /// Next notification, if one is queued (acknowledged on receipt).
    pub fn next(&self) -> CssResult<Option<Delivered>> {
        match self.inner.poll()? {
            None => Ok(None),
            Some(delivery) => {
                self.inner.ack(delivery.delivery_id)?;
                Ok(Some(Delivered::from_bus(delivery)))
            }
        }
    }

    /// [`Subscription::next`] under its pre-consolidation name and
    /// shape.
    #[deprecated(note = "use next(); Delivered carries the trace id")]
    pub fn next_traced(&self) -> CssResult<Option<(NotificationMessage, Option<TraceId>)>> {
        Ok(self.next()?.map(|d| (d.message, d.trace)))
    }

    /// Next notification, waiting up to `timeout` for one to arrive
    /// (acknowledged on receipt). For threaded consumers.
    pub fn next_wait(&self, timeout: std::time::Duration) -> CssResult<Option<Delivered>> {
        match self.inner.poll_wait(timeout)? {
            None => Ok(None),
            Some(delivery) => {
                self.inner.ack(delivery.delivery_id)?;
                Ok(Some(Delivered::from_bus(delivery)))
            }
        }
    }

    /// Next delivery **without** acknowledging it. Pair with
    /// [`Subscription::ack`] on success or [`Subscription::nack`] to
    /// hand the notification to another worker of the group (bounded by
    /// the subscription's `max_attempts`, then dead-lettered).
    pub fn next_unacked(&self) -> CssResult<Option<css_bus::Delivery<NotificationMessage>>> {
        self.inner.poll()
    }

    /// Acknowledge a delivery taken with [`Subscription::next_unacked`].
    pub fn ack(&self, delivery_id: u64) -> CssResult<()> {
        self.inner.ack(delivery_id)
    }

    /// Negatively acknowledge a delivery: it returns to the group's
    /// queue (after the configured backoff) for another worker, or
    /// dead-letters once attempts are exhausted.
    pub fn nack(&self, delivery_id: u64) -> CssResult<()> {
        self.inner.nack(delivery_id)
    }

    /// Drain every queued notification.
    pub fn drain(&self) -> CssResult<Vec<NotificationMessage>> {
        self.inner.drain()
    }

    /// Queued (undelivered) notification count.
    pub fn backlog(&self) -> CssResult<usize> {
        self.inner.backlog()
    }

    /// Deliveries currently awaiting ack/nack.
    pub fn in_flight(&self) -> CssResult<usize> {
        self.inner.in_flight()
    }

    /// Re-enqueue retained notifications with offset ≥ `offset` (the
    /// subscription must be configured with retention).
    pub fn replay_from(&self, offset: u64) -> CssResult<usize> {
        self.inner.replay_from(offset)
    }
}

/// What a data consumer programs against: subscribe, inquire, request
/// details, ask for access.
pub struct ConsumerHandle<P: BackendProvider> {
    controller: SharedController<P>,
    pending: SharedPending,
    actor: ActorId,
}

impl<P: BackendProvider> ConsumerHandle<P> {
    pub(crate) fn new(
        controller: SharedController<P>,
        pending: SharedPending,
        actor: ActorId,
    ) -> Self {
        ConsumerHandle {
            controller,
            pending,
            actor,
        }
    }

    /// This consumer's actor id.
    pub fn actor(&self) -> ActorId {
        self.actor
    }

    /// Browse the catalog: every declared event class.
    pub fn browse_catalog(&self) -> Vec<EventTypeId> {
        self.controller.catalog().all_types()
    }

    /// Browse the catalog restricted to a care-domain node (e.g.
    /// `"health"` or `"social/home-care"`).
    pub fn browse_by_domain(&self, domain: &str) -> Vec<EventTypeId> {
        self.controller.catalog().by_domain(domain)
    }

    /// The published structure (schema) of a declared event class — the
    /// catalog "is visible to any candidate data consumer" (§5).
    pub fn class_schema(&self, event_type: &EventTypeId) -> CssResult<css_event::EventSchema> {
        self.controller.catalog().schema(event_type)
    }

    /// Subscribe to a class of events (policy-gated, deny-by-default).
    pub fn subscribe(&self, event_type: &EventTypeId) -> CssResult<Subscription> {
        let handle = self.controller.subscribe(self.actor, event_type)?;
        Ok(Subscription {
            inner: handle,
            event_type: event_type.clone(),
        })
    }

    /// Subscribe a worker to a named competing-consumer group: every
    /// subscription this consumer takes with the same `group` name
    /// splits the notification stream instead of duplicating it. Same
    /// policy gate as [`ConsumerHandle::subscribe`].
    pub fn subscribe_grouped(
        &self,
        event_type: &EventTypeId,
        group: &str,
    ) -> CssResult<Subscription> {
        let handle = self
            .controller
            .subscribe_grouped(self.actor, event_type, group)?;
        Ok(Subscription {
            inner: handle,
            event_type: event_type.clone(),
        })
    }

    /// Query the events index for notifications about one person.
    pub fn inquire_by_person(&self, person: PersonId) -> CssResult<Vec<NotificationMessage>> {
        self.controller.inquire_by_person(self.actor, person)
    }

    /// [`ConsumerHandle::inquire_by_person`], continuing the caller's
    /// trace instead of minting a fresh `inquiry` root span.
    pub fn inquire_by_person_traced(
        &self,
        person: PersonId,
        parent: Option<&TraceContext>,
    ) -> CssResult<Vec<NotificationMessage>> {
        self.controller
            .inquire_by_person_traced(self.actor, person, parent)
    }

    /// Query the events index for notifications of one class.
    pub fn inquire_by_type(&self, event_type: &EventTypeId) -> CssResult<Vec<NotificationMessage>> {
        self.controller.inquire_by_type(self.actor, event_type)
    }

    /// Query the events index for notifications in a time window,
    /// across every class this consumer is authorized for.
    pub fn inquire_between(
        &self,
        from: Timestamp,
        to: Timestamp,
    ) -> CssResult<Vec<NotificationMessage>> {
        self.controller.inquire_between(self.actor, from, to)
    }

    /// Request the details of a notified event, stating a purpose
    /// (phase 2 of the two-phase protocol, Algorithm 1).
    pub fn request_details(
        &self,
        notification: &NotificationMessage,
        purpose: Purpose,
    ) -> CssResult<PrivacyAwareEvent> {
        self.request_details_by_id(
            notification.event_type.clone(),
            notification.global_id,
            purpose,
        )
    }

    /// Request details by explicit event type and id.
    pub fn request_details_by_id(
        &self,
        event_type: EventTypeId,
        event_id: GlobalEventId,
        purpose: Purpose,
    ) -> CssResult<PrivacyAwareEvent> {
        self.controller
            .request_details(self.actor, event_type, event_id, purpose)
    }

    /// [`ConsumerHandle::request_details_by_id`], continuing the
    /// caller's trace instead of minting a fresh `detail_request` root.
    pub fn request_details_traced(
        &self,
        event_type: EventTypeId,
        event_id: GlobalEventId,
        purpose: Purpose,
        parent: Option<&TraceContext>,
    ) -> CssResult<PrivacyAwareEvent> {
        self.controller
            .request_details_traced(self.actor, event_type, event_id, purpose, parent)
    }

    /// File an access request for a class this consumer has no policy
    /// for; the producer sees it in its pending queue. Rejected with
    /// [`css_types::CssError::Backpressure`] when the queue of
    /// undecided requests is at its high-water mark.
    pub fn request_access(
        &self,
        event_type: EventTypeId,
        purposes: Vec<Purpose>,
        note: impl Into<String>,
        at: Timestamp,
    ) -> CssResult<u64> {
        self.pending
            .file(self.actor, event_type, purposes, note.into(), at)
    }

    /// Status of one of this consumer's access requests.
    pub fn access_request_status(&self, id: u64) -> Option<AccessRequestStatus> {
        self.pending.status_of(id, self.actor)
    }
}
