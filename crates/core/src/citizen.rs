//! The citizen-facing handle.
//!
//! "The system can be used also directly by the citizens to specify and
//! control their consent on data exchanges. This possibility will
//! acquire more importance considering that the CSS is the backbone for
//! the implementation of a Personalized Health Records (PHR) in
//! Trentino." (Section 7)
//!
//! [`CitizenHandle`] implements that projection: a data subject can see
//! their own event profile (the PHR view), read who accessed their data
//! and why, and manage their consent directives — all audited as
//! subject-access actions.

use css_audit::AuditRecord;
use css_controller::{ConsentDecision, ConsentScope};
use css_event::NotificationMessage;
use css_types::{CssResult, PersonId};

use crate::platform::SharedController;
use crate::provider::BackendProvider;

/// What a data subject programs (or a citizen portal is built) against.
pub struct CitizenHandle<P: BackendProvider> {
    controller: SharedController<P>,
    person: PersonId,
}

impl<P: BackendProvider> CitizenHandle<P> {
    pub(crate) fn new(controller: SharedController<P>, person: PersonId) -> Self {
        CitizenHandle { controller, person }
    }

    /// This citizen's person id.
    pub fn person(&self) -> PersonId {
        self.person
    }

    /// The PHR view: every event about this citizen, in timeline order.
    pub fn my_profile(&self) -> CssResult<Vec<NotificationMessage>> {
        self.controller.subject_profile(self.person)
    }

    /// Who accessed my data, when, and for which purpose?
    pub fn who_accessed_my_data(&self) -> CssResult<Vec<AuditRecord>> {
        self.controller.subject_audit_trail(self.person)
    }

    /// Withdraw consent for a scope.
    pub fn opt_out(&self, scope: ConsentScope) -> CssResult<()> {
        self.controller
            .record_consent(self.person, scope, ConsentDecision::OptOut)
    }

    /// Grant (or restore) consent for a scope.
    pub fn opt_in(&self, scope: ConsentScope) -> CssResult<()> {
        self.controller
            .record_consent(self.person, scope, ConsentDecision::OptIn)
    }
}
