//! Pending access requests.
//!
//! "If there is not already a privacy policy defined for that particular
//! data consumer the data producer ... is notified of the pending access
//! request and it is guided by the Privacy Requirements Elicitation Tool
//! to define a privacy policy." (Section 5)

use css_types::{ActorId, EventTypeId, Purpose, Timestamp};

/// Lifecycle of an access request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessRequestStatus {
    /// Waiting for the producer's decision.
    Pending,
    /// Granted — a policy was authored through the wizard.
    Granted,
    /// Denied by the producer.
    Denied,
}

/// A consumer's request for access to a class of events it has no
/// policy for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessRequest {
    /// Queue-unique identifier.
    pub id: u64,
    /// The requesting consumer.
    pub consumer: ActorId,
    /// The class of events the consumer wants.
    pub event_type: EventTypeId,
    /// The purposes the consumer intends.
    pub purposes: Vec<Purpose>,
    /// Free-form motivation shown to the producer.
    pub note: String,
    /// When the request was filed.
    pub requested_at: Timestamp,
    /// Current status.
    pub status: AccessRequestStatus,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let r = AccessRequest {
            id: 1,
            consumer: ActorId(3),
            event_type: EventTypeId::v1("blood-test"),
            purposes: vec![Purpose::HealthcareTreatment],
            note: "need results for treatment".into(),
            requested_at: Timestamp(10),
            status: AccessRequestStatus::Pending,
        };
        assert_eq!(r.status, AccessRequestStatus::Pending);
    }
}
