//! Pending access requests.
//!
//! "If there is not already a privacy policy defined for that particular
//! data consumer the data producer ... is notified of the pending access
//! request and it is guided by the Privacy Requirements Elicitation Tool
//! to define a privacy policy." (Section 5)
//!
//! [`PendingQueue`] is the platform-wide queue of those requests. It is
//! **bounded**: once the number of requests still awaiting a producer
//! decision reaches the configured high-water mark, new filings are
//! rejected with [`CssError::Backpressure`] instead of growing the
//! queue without limit (a stalled producer must not let consumer
//! filings consume the controller's memory). The current backlog is
//! exported as the `core.pending_depth` gauge.

use parking_lot::Mutex;

use css_telemetry::{Gauge, MetricsRegistry};
use css_types::{ActorId, CssError, CssResult, EventTypeId, Purpose, Timestamp};

/// Lifecycle of an access request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessRequestStatus {
    /// Waiting for the producer's decision.
    Pending,
    /// Granted — a policy was authored through the wizard.
    Granted,
    /// Denied by the producer.
    Denied,
}

/// A consumer's request for access to a class of events it has no
/// policy for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessRequest {
    /// Queue-unique identifier.
    pub id: u64,
    /// The requesting consumer.
    pub consumer: ActorId,
    /// The class of events the consumer wants.
    pub event_type: EventTypeId,
    /// The purposes the consumer intends.
    pub purposes: Vec<Purpose>,
    /// Free-form motivation shown to the producer.
    pub note: String,
    /// When the request was filed.
    pub requested_at: Timestamp,
    /// Current status.
    pub status: AccessRequestStatus,
}

/// Default high-water mark for undecided requests.
pub const DEFAULT_PENDING_CAPACITY: usize = 1_024;

/// The bounded platform-wide queue of access requests.
pub struct PendingQueue {
    requests: Mutex<Vec<AccessRequest>>,
    capacity: usize,
    depth: Gauge,
}

impl PendingQueue {
    /// A queue rejecting new filings once `capacity` requests await a
    /// decision (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        PendingQueue {
            requests: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
            depth: Gauge::new(),
        }
    }

    /// Export the backlog as the registry's `core.pending_depth` gauge.
    pub fn instrument(&mut self, registry: &MetricsRegistry) {
        self.depth = registry.gauge("core.pending_depth");
    }

    /// The configured high-water mark.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// File a new request. Returns its queue-unique id, or
    /// [`CssError::Backpressure`] when the undecided backlog is at the
    /// high-water mark.
    pub fn file(
        &self,
        consumer: ActorId,
        event_type: EventTypeId,
        purposes: Vec<Purpose>,
        note: String,
        at: Timestamp,
    ) -> CssResult<u64> {
        let mut requests = self.requests.lock();
        let backlog = requests
            .iter()
            .filter(|r| r.status == AccessRequestStatus::Pending)
            .count();
        if backlog >= self.capacity {
            return Err(CssError::Backpressure(format!(
                "pending access-request queue is full ({backlog}/{} undecided); \
                 retry once producers work the backlog",
                self.capacity
            )));
        }
        let id = requests.len() as u64 + 1;
        requests.push(AccessRequest {
            id,
            consumer,
            event_type,
            purposes,
            note,
            requested_at: at,
            status: AccessRequestStatus::Pending,
        });
        self.depth.set(backlog as i64 + 1);
        Ok(id)
    }

    /// Status of one consumer's request.
    pub fn status_of(&self, id: u64, consumer: ActorId) -> Option<AccessRequestStatus> {
        self.requests
            .lock()
            .iter()
            .find(|r| r.id == id && r.consumer == consumer)
            .map(|r| r.status)
    }

    /// Every request ever filed (any status, any producer).
    pub fn all(&self) -> Vec<AccessRequest> {
        self.requests.lock().clone()
    }

    /// Requests still awaiting a decision.
    pub fn pending_count(&self) -> usize {
        let n = self
            .requests
            .lock()
            .iter()
            .filter(|r| r.status == AccessRequestStatus::Pending)
            .count();
        self.depth.set(n as i64);
        n
    }

    /// Undecided requests targeting one of the given event classes (a
    /// producer's view of its inbox).
    pub fn pending_for(&self, types: &[EventTypeId]) -> Vec<AccessRequest> {
        self.requests
            .lock()
            .iter()
            .filter(|r| r.status == AccessRequestStatus::Pending && types.contains(&r.event_type))
            .cloned()
            .collect()
    }

    /// Decide a pending request: `check` sees the request first (e.g.
    /// the producer-ownership validation) and may veto with an error;
    /// on `Ok` the status flips to `new_status` and the decided request
    /// is returned.
    pub fn decide(
        &self,
        request_id: u64,
        new_status: AccessRequestStatus,
        check: impl FnOnce(&AccessRequest) -> CssResult<()>,
    ) -> CssResult<AccessRequest> {
        let mut requests = self.requests.lock();
        let request = requests
            .iter_mut()
            .find(|r| r.id == request_id && r.status == AccessRequestStatus::Pending)
            .ok_or_else(|| CssError::NotFound(format!("no pending request {request_id}")))?;
        check(request)?;
        request.status = new_status;
        let decided = request.clone();
        let backlog = requests
            .iter()
            .filter(|r| r.status == AccessRequestStatus::Pending)
            .count();
        self.depth.set(backlog as i64);
        Ok(decided)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file_one(q: &PendingQueue, i: u64) -> CssResult<u64> {
        q.file(
            ActorId(3),
            EventTypeId::v1("blood-test"),
            vec![Purpose::HealthcareTreatment],
            format!("request {i}"),
            Timestamp(i),
        )
    }

    #[test]
    fn construction() {
        let r = AccessRequest {
            id: 1,
            consumer: ActorId(3),
            event_type: EventTypeId::v1("blood-test"),
            purposes: vec![Purpose::HealthcareTreatment],
            note: "need results for treatment".into(),
            requested_at: Timestamp(10),
            status: AccessRequestStatus::Pending,
        };
        assert_eq!(r.status, AccessRequestStatus::Pending);
    }

    #[test]
    fn queue_rejects_past_high_water_mark() {
        let q = PendingQueue::new(2);
        assert_eq!(file_one(&q, 1).unwrap(), 1);
        assert_eq!(file_one(&q, 2).unwrap(), 2);
        let err = file_one(&q, 3).unwrap_err();
        assert!(matches!(err, CssError::Backpressure(_)), "{err}");
        // Deciding one frees a slot.
        q.decide(1, AccessRequestStatus::Denied, |_| Ok(()))
            .unwrap();
        assert_eq!(file_one(&q, 4).unwrap(), 3);
    }

    #[test]
    fn depth_gauge_tracks_backlog() {
        let registry = MetricsRegistry::new();
        let mut q = PendingQueue::new(8);
        q.instrument(&registry);
        file_one(&q, 1).unwrap();
        file_one(&q, 2).unwrap();
        assert_eq!(registry.gauge("core.pending_depth").get(), 2);
        q.decide(2, AccessRequestStatus::Granted, |_| Ok(()))
            .unwrap();
        assert_eq!(registry.gauge("core.pending_depth").get(), 1);
    }

    #[test]
    fn decide_veto_leaves_request_pending() {
        let q = PendingQueue::new(8);
        file_one(&q, 1).unwrap();
        let err = q
            .decide(1, AccessRequestStatus::Granted, |_| {
                Err(CssError::Invalid("not yours".into()))
            })
            .unwrap_err();
        assert!(matches!(err, CssError::Invalid(_)));
        assert_eq!(
            q.status_of(1, ActorId(3)),
            Some(AccessRequestStatus::Pending)
        );
    }
}
