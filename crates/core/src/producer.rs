//! The producer-side handle.

use std::sync::Arc;

use css_controller::{PublishReceipt, SharedGateway};
use css_event::{DetailMessage, EventDetails, EventSchema};
use css_types::{
    ActorId, CssResult, EventTypeId, IdGenerator, PersonIdentity, PolicyId, SourceEventId,
    Timestamp,
};

use crate::elicitation::PolicyWizard;
use crate::pending::{AccessRequest, AccessRequestStatus};
use crate::platform::{PlatformBackend, SharedController, SharedPending, SharedRepo};
use crate::provider::BackendProvider;

/// What a data source system programs against: declare classes, publish
/// events (details stay local, notifications go out), author policies.
pub struct ProducerHandle<P: BackendProvider> {
    controller: SharedController<P>,
    policy_repo: SharedRepo<P>,
    pending: SharedPending,
    gateway: SharedGateway<PlatformBackend<P>>,
    src_gen: Arc<IdGenerator>,
    actor: ActorId,
}

impl<P: BackendProvider> ProducerHandle<P> {
    pub(crate) fn new(
        controller: SharedController<P>,
        policy_repo: SharedRepo<P>,
        pending: SharedPending,
        gateway: SharedGateway<PlatformBackend<P>>,
        src_gen: Arc<IdGenerator>,
        actor: ActorId,
    ) -> Self {
        ProducerHandle {
            controller,
            policy_repo,
            pending,
            gateway,
            src_gen,
            actor,
        }
    }

    /// This producer's actor id.
    pub fn actor(&self) -> ActorId {
        self.actor
    }

    /// Declare a class of event details in the catalog (and register the
    /// schema at the local gateway).
    pub fn declare(&self, schema: &EventSchema, domain: Option<&str>) -> CssResult<()> {
        self.gateway.lock().register_schema(schema.clone())?;
        self.controller.declare_event_class(schema, domain)
    }

    /// Publish an event: the full details are persisted at the local
    /// gateway (they never leave it unfiltered), then the notification is
    /// routed through the data controller.
    pub fn publish(
        &self,
        person: PersonIdentity,
        description: impl Into<String>,
        details: EventDetails,
        occurred_at: Timestamp,
    ) -> CssResult<PublishReceipt> {
        let src_event_id: SourceEventId = self.src_gen.next_id();
        let event_type = details.event_type.clone();
        self.gateway.lock().persist(&DetailMessage {
            src_event_id,
            producer: self.actor,
            details,
        })?;
        self.controller.publish(
            self.actor,
            person,
            description.into(),
            event_type,
            occurred_at,
            src_event_id,
            None,
        )
    }

    /// Open the elicitation wizard for one of this producer's classes.
    pub fn policy_wizard(&self, event_type: &EventTypeId) -> CssResult<PolicyWizard<P>> {
        let schema = self.controller.catalog().schema(event_type)?;
        if schema.producer != self.actor {
            return Err(css_types::CssError::Invalid(format!(
                "event class {event_type} belongs to {}, not to {}",
                schema.producer, self.actor
            )));
        }
        Ok(PolicyWizard::new(
            self.controller.clone(),
            self.policy_repo.clone(),
            self.actor,
            schema,
        ))
    }

    /// Revoke one of this producer's policies.
    pub fn revoke_policy(&self, id: PolicyId) -> CssResult<()> {
        self.controller.revoke_policy(self.actor, id)?;
        self.policy_repo.lock().revoke(id)?;
        Ok(())
    }

    /// Pending access requests targeting this producer's event classes.
    pub fn pending_requests(&self) -> Vec<AccessRequest> {
        let mine: Vec<EventTypeId> = self.controller.catalog().by_producer(self.actor);
        self.pending.pending_for(&mine)
    }

    /// Grant a pending request: returns a wizard prefilled with the
    /// requesting consumer and its stated purposes. Saving the wizard
    /// completes the grant.
    pub fn grant_request(&self, request_id: u64) -> CssResult<PolicyWizard<P>> {
        let request = self.take_request(request_id, AccessRequestStatus::Granted)?;
        let wizard = self
            .policy_wizard(&request.event_type)?
            .grant_to([request.consumer])
            .map_err(css_types::CssError::from)?
            .for_purposes(request.purposes.iter().cloned());
        Ok(wizard)
    }

    /// Deny a pending request.
    pub fn deny_request(&self, request_id: u64) -> CssResult<()> {
        self.take_request(request_id, AccessRequestStatus::Denied)?;
        Ok(())
    }

    fn take_request(
        &self,
        request_id: u64,
        new_status: AccessRequestStatus,
    ) -> CssResult<AccessRequest> {
        self.pending.decide(request_id, new_status, |request| {
            // Ownership check: the class must be this producer's.
            let schema = self.controller.catalog().schema(&request.event_type)?;
            if schema.producer != self.actor {
                return Err(css_types::CssError::Invalid(format!(
                    "request {request_id} targets another producer's class"
                )));
            }
            Ok(())
        })
    }

    /// Number of detail messages persisted at this producer's gateway.
    pub fn gateway_stored_count(&self) -> usize {
        self.gateway.lock().stored_count()
    }
}
