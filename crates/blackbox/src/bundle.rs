//! Incident bundle serialization.
//!
//! Everything written here is an aggregate, a name, or a privacy-safe
//! span attribute. The only free-form strings are SLO/component names,
//! health-check reasons, and manual-capture reasons — all of which are
//! authored by operators/checks, never derived from event payloads
//! (the identity-taint lint rule treats `capture` as a sink to keep it
//! that way).

use std::collections::BTreeMap;

use css_telemetry::{JsonBuf, TelemetrySnapshot};
use css_trace::Span;

use crate::frame::Frame;
use crate::recorder::{IncidentRef, Trigger};

/// Exemplar-linked span trees included per bundle.
const TRACES_PER_BUNDLE: usize = 8;

fn hex_trace_id(id: u64) -> String {
    format!("{id:016x}")
}

/// The `/debug/exemplars` document: every histogram bucket exemplar in
/// the snapshot, as `(histogram, bucket, trace id, timestamp)` rows.
pub fn exemplars_json(snapshot: &TelemetrySnapshot) -> String {
    let mut j = JsonBuf::new();
    j.begin_object().key("exemplars").begin_array();
    write_exemplars(&mut j, snapshot);
    j.end_array().end_object();
    j.finish()
}

fn write_exemplars(j: &mut JsonBuf, snapshot: &TelemetrySnapshot) {
    for (name, h) in &snapshot.histograms {
        for e in &h.exemplars {
            j.begin_object();
            j.key("histogram").string(name);
            j.key("bucket_ns").u64(e.bucket_ns);
            j.key("trace_id").string(&hex_trace_id(e.trace_id));
            j.key("at_ms").u64(e.at_ms);
            j.end_object();
        }
    }
}

/// The `/debug/incidents` document.
pub fn incidents_json<'a>(incidents: impl Iterator<Item = &'a IncidentRef>) -> String {
    let mut j = JsonBuf::new();
    j.begin_object().key("incidents").begin_array();
    for i in incidents {
        j.begin_object();
        j.key("seq").u64(i.seq);
        j.key("at_ms").u64(i.at_ms);
        j.key("kind").string(i.kind);
        j.key("detail").string(&i.detail);
        if let Some(path) = &i.path {
            j.key("path").string(&path.display().to_string());
        }
        j.key("bytes").u64(i.bytes as u64);
        j.end_object();
    }
    j.end_array().end_object();
    j.finish()
}

/// Serialize one frozen incident. `history` is an optional
/// pre-serialized chronicle window (itself aggregate-only) embedded
/// verbatim as the bundle's `history` section.
#[allow(clippy::too_many_arguments)]
pub fn bundle_json(
    seq: u64,
    at_ms: u64,
    trigger: &Trigger,
    frames: &[Frame],
    snapshot: &TelemetrySnapshot,
    spans: &[Span],
    history: Option<&str>,
) -> String {
    let mut j = JsonBuf::new();
    j.begin_object();
    j.key("schema").string("css-blackbox/1");
    j.key("seq").u64(seq);
    j.key("captured_at_ms").u64(at_ms);

    j.key("trigger").begin_object();
    j.key("kind").string(trigger.kind());
    j.key("detail").string(&trigger.detail());
    match trigger {
        Trigger::SloCritical { slo, fast_burn } => {
            j.key("slo").string(slo);
            j.key("fast_burn").f64(*fast_burn);
        }
        Trigger::Unhealthy { component, reason } => {
            j.key("component").string(component);
            j.key("reason").string(reason);
        }
        Trigger::Anomaly {
            metric,
            value,
            expected,
        } => {
            j.key("metric").string(metric);
            j.key("value").f64(*value);
            j.key("expected").f64(*expected);
        }
        Trigger::Manual { reason } => {
            j.key("reason").string(reason);
        }
    }
    j.end_object();

    if let Some(history) = history {
        j.key("history").raw(history);
    }

    j.key("frames").begin_array();
    for frame in frames {
        write_frame(&mut j, frame);
    }
    j.end_array();

    j.key("exemplars").begin_array();
    write_exemplars(&mut j, snapshot);
    j.end_array();

    j.key("traces").begin_array();
    write_exemplar_traces(&mut j, snapshot, spans);
    j.end_array();

    j.key("percentiles").begin_array();
    for (name, h) in &snapshot.histograms {
        if !(name.starts_with("stage.") || name.starts_with("shard.")) {
            continue;
        }
        j.begin_object();
        j.key("histogram").string(name);
        j.key("count").u64(h.count);
        j.key("p50_ns").u64(h.p50_ns);
        j.key("p90_ns").u64(h.p90_ns);
        j.key("p99_ns").u64(h.p99_ns);
        j.key("max_ns").u64(h.max_ns);
        j.end_object();
    }
    j.end_array();

    j.end_object();
    j.finish()
}

fn write_frame(j: &mut JsonBuf, frame: &Frame) {
    j.begin_object();
    j.key("type").string(frame.kind());
    j.key("at_ms").u64(frame.at_ms());
    match frame {
        Frame::Telemetry(f) => {
            j.key("counter_deltas").begin_array();
            for (name, delta) in &f.counter_deltas {
                j.begin_array().string(name).u64(*delta).end_array();
            }
            j.end_array();
            j.key("histograms").begin_array();
            for h in &f.histograms {
                j.begin_object();
                j.key("name").string(&h.name);
                j.key("count").u64(h.count);
                j.key("p50_ns").u64(h.p50_ns);
                j.key("p99_ns").u64(h.p99_ns);
                j.key("max_ns").u64(h.max_ns);
                j.end_object();
            }
            j.end_array();
        }
        Frame::Slo { samples, .. } => {
            j.key("samples").begin_array();
            for s in samples {
                j.begin_object();
                j.key("name").string(&s.name);
                j.key("fast_burn").f64(s.fast_burn);
                j.key("slow_burn").f64(s.slow_burn);
                j.key("severity").string(s.severity.label());
                j.end_object();
            }
            j.end_array();
        }
        Frame::Health {
            component,
            from,
            to,
            reason,
            ..
        } => {
            j.key("component").string(component);
            j.key("from").string(from.label());
            j.key("to").string(to.label());
            if let Some(reason) = reason {
                j.key("reason").string(reason);
            }
        }
        Frame::SpanRoot(f) => {
            j.key("trace_id").string(&hex_trace_id(f.trace_id));
            j.key("name").string(&f.name);
            j.key("duration_ns").u64(f.duration_ns);
            j.key("status").string(f.status);
        }
    }
    j.end_object();
}

/// The span trees the bundle's exemplars point at: for each distinct
/// exemplar trace id (most recent first, bounded), every retained span
/// of that trace, parents before children as the tracer recorded them.
fn write_exemplar_traces(j: &mut JsonBuf, snapshot: &TelemetrySnapshot, spans: &[Span]) {
    let mut exemplar_ids: Vec<(u64, u64)> = Vec::new(); // (at_ms, trace_id)
    for h in snapshot.histograms.values() {
        for e in &h.exemplars {
            exemplar_ids.push((e.at_ms, e.trace_id));
        }
    }
    exemplar_ids.sort_unstable_by(|a, b| b.cmp(a));
    let mut picked: Vec<u64> = Vec::new();
    for (_, id) in exemplar_ids {
        if picked.len() >= TRACES_PER_BUNDLE {
            break;
        }
        if !picked.contains(&id) {
            picked.push(id);
        }
    }

    let mut by_trace: BTreeMap<u64, Vec<&Span>> = BTreeMap::new();
    for span in spans {
        if picked.contains(&span.trace.0) {
            by_trace.entry(span.trace.0).or_default().push(span);
        }
    }

    for id in picked {
        let Some(tree) = by_trace.get(&id) else {
            // Exemplar outlived the tracer's retained window: the id
            // still joins to the audit log, so emit it span-less.
            j.begin_object();
            j.key("trace_id").string(&hex_trace_id(id));
            j.key("spans").begin_array().end_array();
            j.end_object();
            continue;
        };
        j.begin_object();
        j.key("trace_id").string(&hex_trace_id(id));
        j.key("spans").begin_array();
        for span in tree {
            j.begin_object();
            j.key("span_id").u64(span.id.0);
            if let Some(parent) = span.parent {
                j.key("parent").u64(parent.0);
            }
            j.key("name").string(span.name);
            j.key("start_ns").u64(span.start_ns);
            j.key("duration_ns").u64(span.duration_ns());
            j.key("status").string(span.status.code());
            j.key("attrs").begin_array();
            for attr in &span.attrs {
                j.string(&attr.to_string());
            }
            j.end_array();
            j.end_object();
        }
        j.end_array();
        j.end_object();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use css_telemetry::MetricsRegistry;

    #[test]
    fn exemplars_json_renders_hex_trace_ids() {
        let registry = MetricsRegistry::new();
        registry
            .histogram("stage.total")
            .record_with_exemplar(1_000, 0xFF, 7);
        let json = exemplars_json(&registry.snapshot());
        assert!(json.contains(r#""trace_id":"00000000000000ff""#), "{json}");
        assert!(json.contains(r#""histogram":"stage.total""#), "{json}");
    }

    #[test]
    fn bundle_includes_exemplar_span_tree() {
        let registry = MetricsRegistry::new();
        let tracer = css_trace::Tracer::new(64);
        let trace_id = {
            let root = tracer.root("detail_request", css_types::Timestamp(1));
            let _child = root.context().child("pdp_evaluate");
            root.trace_id().unwrap()
        };
        registry
            .histogram("stage.total")
            .record_with_exemplar(5_000_000, trace_id.value(), 1);
        let spans = tracer.finished_spans();
        let json = bundle_json(
            1,
            2,
            &Trigger::Manual {
                reason: "t".to_string(),
            },
            &[],
            &registry.snapshot(),
            &spans,
            None,
        );
        let hex = format!("{trace_id}");
        assert!(json.contains(&format!(r#""trace_id":"{hex}""#)), "{json}");
        assert!(json.contains(r#""name":"pdp_evaluate""#), "{json}");
        assert!(json.contains(r#""name":"detail_request""#), "{json}");
        assert!(
            json.contains(r#""percentiles":[{"histogram":"stage.total""#),
            "{json}"
        );
        // No history passed: the section is absent entirely.
        assert!(!json.contains(r#""history""#), "{json}");
    }

    #[test]
    fn anomaly_trigger_embeds_the_history_window() {
        let registry = MetricsRegistry::new();
        let history = r#"{"from_ms":0,"to_ms":9,"series":[{"metric":"stage.total"}]}"#;
        let json = bundle_json(
            2,
            9,
            &Trigger::Anomaly {
                metric: "stage.total".to_string(),
                value: 5_000_000.0,
                expected: 52_000.0,
            },
            &[],
            &registry.snapshot(),
            &[],
            Some(history),
        );
        assert!(json.contains(r#""kind":"anomaly""#), "{json}");
        assert!(json.contains(r#""metric":"stage.total""#), "{json}");
        assert!(
            json.contains(r#""history":{"from_ms":0,"to_ms":9"#),
            "{json}"
        );
        assert!(
            json.contains("anomalous: 5000000 vs expected 52000"),
            "{json}"
        );
    }
}
