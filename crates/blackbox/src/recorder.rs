//! The flight recorder: bounded ring, trigger model, incident capture.

use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

use css_telemetry::{Counter, Gauge, MetricsRegistry, TelemetrySnapshot};
use css_trace::Span;

use crate::bundle;
use crate::frame::{
    ComponentState, Frame, HealthSample, HistogramStat, Severity, SloSample, SpanRootFrame,
    TelemetryFrame,
};

/// Root spans recorded per observation (newest win; a busy tick does
/// not flood the ring with one frame per request).
const ROOTS_PER_TICK: usize = 16;
/// Incident references retained for `/debug/incidents`.
const INCIDENTS_RETAINED: usize = 32;

/// Why a capture happened. SLO/health triggers fire on the *transition
/// into* the bad state — a burn that stays Critical for twenty ticks
/// produces one bundle, not twenty; it can fire again only after the
/// state recovers.
#[derive(Debug, Clone, PartialEq)]
pub enum Trigger {
    /// An SLO's alert level reached Critical.
    SloCritical { slo: String, fast_burn: f64 },
    /// A health check transitioned to Unhealthy.
    Unhealthy { component: String, reason: String },
    /// A chronicle anomaly detector saw a metric leave its learned
    /// band (the rising edge of the anomalous state).
    Anomaly {
        metric: String,
        value: f64,
        expected: f64,
    },
    /// An operator or test asked for a capture explicitly.
    Manual { reason: String },
}

impl Trigger {
    /// Stable discriminator used in bundle JSON and incident lists.
    pub fn kind(&self) -> &'static str {
        match self {
            Trigger::SloCritical { .. } => "slo_critical",
            Trigger::Unhealthy { .. } => "unhealthy",
            Trigger::Anomaly { .. } => "anomaly",
            Trigger::Manual { .. } => "manual",
        }
    }

    /// One-line human summary (also privacy-safe: SLO names, component
    /// names, and check reasons are aggregates by construction).
    pub fn detail(&self) -> String {
        match self {
            Trigger::SloCritical { slo, fast_burn } => {
                format!("slo {slo} critical (fast burn {fast_burn:.1})")
            }
            Trigger::Unhealthy { component, reason } => format!("{component} unhealthy: {reason}"),
            Trigger::Anomaly {
                metric,
                value,
                expected,
            } => format!("{metric} anomalous: {value:.0} vs expected {expected:.0}"),
            Trigger::Manual { reason } => reason.clone(),
        }
    }
}

/// A retained pointer to a written incident bundle.
#[derive(Debug, Clone)]
pub struct IncidentRef {
    pub seq: u64,
    pub at_ms: u64,
    pub kind: &'static str,
    pub detail: String,
    /// Where the bundle landed, if the write succeeded.
    pub path: Option<PathBuf>,
    pub bytes: usize,
}

/// The result of freezing the ring.
pub struct CaptureOutcome {
    pub seq: u64,
    /// The full bundle document (what `POST /debug/capture` returns).
    pub json: String,
    /// Where it was written, unless the filesystem refused.
    pub path: Option<PathBuf>,
}

struct RecorderState {
    ring: VecDeque<Frame>,
    /// Last seen counter totals, for delta frames.
    last_counters: BTreeMap<String, u64>,
    /// SLOs currently at Critical (trigger edge detection).
    critical: BTreeMap<String, ()>,
    /// Last seen state per health component (transition detection).
    health: BTreeMap<String, ComponentState>,
    /// High-water span id, so each tick records only new roots.
    last_span_id: u64,
    incidents: VecDeque<IncidentRef>,
    seq: u64,
}

/// The continuously-running incident flight recorder. `&self`
/// everywhere — share it behind an `Arc` between the sampler observer,
/// the ops endpoints, and the platform handle.
pub struct FlightRecorder {
    capacity: usize,
    incident_dir: PathBuf,
    state: Mutex<RecorderState>,
    frames_recorded: Counter,
    frames_dropped: Counter,
    occupancy: Gauge,
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity` frames, writing bundles
    /// under `incident_dir`, and reporting itself through `registry`
    /// (`blackbox.frames_recorded`, `blackbox.frames_dropped`,
    /// `blackbox.ring_occupancy`).
    pub fn new(
        capacity: usize,
        incident_dir: impl Into<PathBuf>,
        registry: &MetricsRegistry,
    ) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            incident_dir: incident_dir.into(),
            state: Mutex::new(RecorderState {
                ring: VecDeque::new(),
                last_counters: BTreeMap::new(),
                critical: BTreeMap::new(),
                health: BTreeMap::new(),
                last_span_id: 0,
                incidents: VecDeque::new(),
                seq: 0,
            }),
            frames_recorded: registry.counter("blackbox.frames_recorded"),
            frames_dropped: registry.counter("blackbox.frames_dropped"),
            occupancy: registry.gauge("blackbox.ring_occupancy"),
        }
    }

    /// Where bundles are written.
    pub fn incident_dir(&self) -> &Path {
        &self.incident_dir
    }

    /// Frames currently in the ring.
    pub fn occupancy(&self) -> usize {
        self.lock().ring.len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RecorderState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn push(&self, state: &mut RecorderState, frame: Frame) {
        if state.ring.len() >= self.capacity {
            state.ring.pop_front();
            self.frames_dropped.inc();
        }
        state.ring.push_back(frame);
        self.frames_recorded.inc();
        self.occupancy.set(state.ring.len() as i64);
    }

    /// Record a telemetry frame: counter deltas since the previous
    /// observation plus per-histogram summaries.
    pub fn observe_telemetry(&self, snapshot: &TelemetrySnapshot, at_ms: u64) {
        let mut state = self.lock();
        let counter_deltas: Vec<(String, u64)> = snapshot
            .counters
            .iter()
            .filter_map(|(name, total)| {
                let delta =
                    total.saturating_sub(state.last_counters.get(name).copied().unwrap_or(0));
                (delta > 0).then(|| (name.clone(), delta))
            })
            .collect();
        state.last_counters = snapshot.counters.clone();
        let histograms = snapshot
            .histograms
            .iter()
            .map(|(name, h)| HistogramStat {
                name: name.clone(),
                count: h.count,
                p50_ns: h.p50_ns,
                p99_ns: h.p99_ns,
                max_ns: h.max_ns,
            })
            .collect();
        self.push(
            &mut state,
            Frame::Telemetry(TelemetryFrame {
                at_ms,
                counter_deltas,
                histograms,
            }),
        );
    }

    /// Record an SLO burn-rate frame and return a trigger for every SLO
    /// that *entered* Critical at this sample.
    pub fn observe_slos(&self, samples: &[SloSample], at_ms: u64) -> Vec<Trigger> {
        let mut state = self.lock();
        let mut triggers = Vec::new();
        for s in samples {
            if s.severity == Severity::Critical {
                if !state.critical.contains_key(&s.name) {
                    state.critical.insert(s.name.clone(), ());
                    triggers.push(Trigger::SloCritical {
                        slo: s.name.clone(),
                        fast_burn: s.fast_burn,
                    });
                }
            } else {
                state.critical.remove(&s.name);
            }
        }
        self.push(
            &mut state,
            Frame::Slo {
                at_ms,
                samples: samples.to_vec(),
            },
        );
        triggers
    }

    /// Record health transitions (state changes only) and return a
    /// trigger for every component that *became* Unhealthy.
    pub fn observe_health(&self, samples: &[HealthSample], at_ms: u64) -> Vec<Trigger> {
        let mut state = self.lock();
        let mut triggers = Vec::new();
        for s in samples {
            let prev = state
                .health
                .insert(s.component.clone(), s.state)
                .unwrap_or(ComponentState::Healthy);
            if prev == s.state {
                continue;
            }
            self.push(
                &mut state,
                Frame::Health {
                    at_ms,
                    component: s.component.clone(),
                    from: prev,
                    to: s.state,
                    reason: s.reason.clone(),
                },
            );
            if s.state == ComponentState::Unhealthy {
                triggers.push(Trigger::Unhealthy {
                    component: s.component.clone(),
                    reason: s.reason.clone().unwrap_or_default(),
                });
            }
        }
        triggers
    }

    /// Record root spans finished since the last observation (`spans`
    /// is the tracer's full retained window, oldest first).
    pub fn observe_spans(&self, spans: &[Span], at_ms: u64) {
        let mut state = self.lock();
        let new_roots: Vec<&Span> = spans
            .iter()
            .filter(|s| s.id.0 > state.last_span_id && s.parent.is_none())
            .collect();
        state.last_span_id = spans
            .iter()
            .map(|s| s.id.0)
            .max()
            .unwrap_or(state.last_span_id)
            .max(state.last_span_id);
        let skip = new_roots.len().saturating_sub(ROOTS_PER_TICK);
        for span in new_roots.into_iter().skip(skip) {
            self.push(
                &mut state,
                Frame::SpanRoot(SpanRootFrame {
                    at_ms,
                    trace_id: span.trace.0,
                    name: span.name.to_string(),
                    duration_ns: span.duration_ns(),
                    status: span.status.code(),
                }),
            );
        }
    }

    /// Freeze the ring into an incident bundle: serialize it with the
    /// trigger, current exemplars, the span trees those exemplars point
    /// at, and `stage.*`/`shard.*` percentiles; write it under
    /// [`incident_dir`](FlightRecorder::incident_dir); remember it for
    /// `/debug/incidents`. Never panics: a filesystem failure yields
    /// `path: None` with the JSON still returned.
    pub fn capture(
        &self,
        trigger: Trigger,
        snapshot: &TelemetrySnapshot,
        spans: &[Span],
        at_ms: u64,
    ) -> CaptureOutcome {
        self.capture_with_history(trigger, snapshot, spans, at_ms, None)
    }

    /// [`capture`](FlightRecorder::capture) with a pre-serialized
    /// metrics-history window (a chronicle document) embedded as the
    /// bundle's `history` section. The platform passes the window
    /// around the anomaly that triggered the capture.
    pub fn capture_with_history(
        &self,
        trigger: Trigger,
        snapshot: &TelemetrySnapshot,
        spans: &[Span],
        at_ms: u64,
        history: Option<&str>,
    ) -> CaptureOutcome {
        let (seq, frames) = {
            let mut state = self.lock();
            state.seq += 1;
            (state.seq, state.ring.iter().cloned().collect::<Vec<_>>())
        };
        let json = bundle::bundle_json(seq, at_ms, &trigger, &frames, snapshot, spans, history);
        let path = self.write_bundle(seq, at_ms, &json);
        let mut state = self.lock();
        if state.incidents.len() >= INCIDENTS_RETAINED {
            state.incidents.pop_front();
        }
        state.incidents.push_back(IncidentRef {
            seq,
            at_ms,
            kind: trigger.kind(),
            detail: trigger.detail(),
            path: path.clone(),
            bytes: json.len(),
        });
        CaptureOutcome { seq, json, path }
    }

    /// Convenience: an explicit manual capture (`dump`).
    pub fn dump(
        &self,
        reason: &str,
        snapshot: &TelemetrySnapshot,
        spans: &[Span],
        at_ms: u64,
    ) -> CaptureOutcome {
        self.capture(
            Trigger::Manual {
                reason: reason.to_string(),
            },
            snapshot,
            spans,
            at_ms,
        )
    }

    fn write_bundle(&self, seq: u64, at_ms: u64, json: &str) -> Option<PathBuf> {
        std::fs::create_dir_all(&self.incident_dir).ok()?;
        let path = self
            .incident_dir
            .join(format!("incident-{seq:04}-{at_ms}.json"));
        std::fs::write(&path, json).ok()?;
        Some(path)
    }

    /// The `/debug/incidents` document: recently captured bundles,
    /// oldest first.
    pub fn incidents_json(&self) -> String {
        bundle::incidents_json(self.lock().incidents.iter())
    }

    /// Recent incident references (oldest first).
    pub fn incidents(&self) -> Vec<IncidentRef> {
        self.lock().incidents.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder(capacity: usize, registry: &MetricsRegistry) -> FlightRecorder {
        let dir = std::env::temp_dir().join(format!(
            "css-blackbox-test-{}-{capacity}",
            std::process::id()
        ));
        FlightRecorder::new(capacity, dir, registry)
    }

    fn slo(name: &str, severity: Severity) -> SloSample {
        SloSample {
            name: name.to_string(),
            fast_burn: if severity == Severity::Critical {
                25.0
            } else {
                0.1
            },
            slow_burn: 0.1,
            severity,
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts_it() {
        let registry = MetricsRegistry::new();
        let rec = recorder(3, &registry);
        for i in 0..5 {
            rec.observe_slos(&[slo("lat", Severity::Ok)], i);
        }
        assert_eq!(rec.occupancy(), 3);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["blackbox.frames_recorded"], 5);
        assert_eq!(snap.counters["blackbox.frames_dropped"], 2);
        assert_eq!(snap.gauges["blackbox.ring_occupancy"], 3);
        // The survivors are the newest frames.
        let out = rec.capture(
            Trigger::Manual {
                reason: "test".into(),
            },
            &snap,
            &[],
            99,
        );
        assert!(out.json.contains(r#""at_ms":4"#), "{}", out.json);
        assert!(!out.json.contains(r#""at_ms":0"#), "{}", out.json);
    }

    #[test]
    fn slo_trigger_fires_on_the_transition_only() {
        let registry = MetricsRegistry::new();
        let rec = recorder(16, &registry);
        assert!(rec.observe_slos(&[slo("lat", Severity::Ok)], 1).is_empty());
        let t = rec.observe_slos(&[slo("lat", Severity::Critical)], 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].kind(), "slo_critical");
        // Still critical: no re-trigger.
        assert!(rec
            .observe_slos(&[slo("lat", Severity::Critical)], 3)
            .is_empty());
        // Recovered, then critical again: fires again.
        assert!(rec.observe_slos(&[slo("lat", Severity::Ok)], 4).is_empty());
        assert_eq!(
            rec.observe_slos(&[slo("lat", Severity::Critical)], 5).len(),
            1
        );
    }

    #[test]
    fn health_records_transitions_and_triggers_on_unhealthy() {
        let registry = MetricsRegistry::new();
        let rec = recorder(16, &registry);
        let healthy = HealthSample {
            component: "storage".to_string(),
            state: ComponentState::Healthy,
            reason: None,
        };
        let unhealthy = HealthSample {
            component: "storage".to_string(),
            state: ComponentState::Unhealthy,
            reason: Some("probe read mismatch".to_string()),
        };
        // Initial Healthy is the implied baseline: no frame, no trigger.
        assert!(rec
            .observe_health(std::slice::from_ref(&healthy), 1)
            .is_empty());
        assert_eq!(rec.occupancy(), 0);
        let t = rec.observe_health(std::slice::from_ref(&unhealthy), 2);
        assert_eq!(t.len(), 1);
        assert!(matches!(&t[0], Trigger::Unhealthy { component, .. } if component == "storage"));
        assert_eq!(rec.occupancy(), 1);
        // Unchanged state: no new frame, no re-trigger.
        assert!(rec.observe_health(&[unhealthy], 3).is_empty());
        assert_eq!(rec.occupancy(), 1);
        // Recovery is a recorded transition but not a trigger.
        assert!(rec.observe_health(&[healthy], 4).is_empty());
        assert_eq!(rec.occupancy(), 2);
    }

    #[test]
    fn telemetry_frames_carry_counter_deltas() {
        let registry = MetricsRegistry::new();
        let rec = recorder(16, &registry);
        let work = MetricsRegistry::new();
        work.counter("controller.published").add(10);
        rec.observe_telemetry(&work.snapshot(), 1);
        work.counter("controller.published").add(5);
        rec.observe_telemetry(&work.snapshot(), 2);
        let out = rec.dump("t", &work.snapshot(), &[], 3);
        // First frame sees the full total, second only the increase.
        assert!(
            out.json.contains(r#"["controller.published",10]"#),
            "{}",
            out.json
        );
        assert!(
            out.json.contains(r#"["controller.published",5]"#),
            "{}",
            out.json
        );
    }

    #[test]
    fn ring_overrun_degrades_the_drop_rate_check() {
        use css_health::{DropRateCheck, HealthCheck, HealthStatus};
        let registry = MetricsRegistry::new();
        let rec = recorder(4, &registry);
        let check = DropRateCheck::new(
            "blackbox",
            "blackbox.frames_dropped",
            "blackbox.frames_recorded",
            0.25,
            1_000,
        );
        // Under the minimum sample count the check withholds judgment.
        for i in 0..100 {
            rec.observe_slos(&[slo("lat", Severity::Ok)], i);
        }
        assert_eq!(check.check(&registry.snapshot()), HealthStatus::Healthy);
        // Force a sustained overrun: far more frames than the ring
        // holds, so most recorded frames have been dropped.
        for i in 100..2_000 {
            rec.observe_slos(&[slo("lat", Severity::Ok)], i);
        }
        let status = check.check(&registry.snapshot());
        assert!(
            matches!(status, HealthStatus::Degraded { .. }),
            "overrun must degrade the ring: {status:?}"
        );
    }

    #[test]
    fn capture_writes_the_bundle_and_lists_it() {
        let registry = MetricsRegistry::new();
        let dir = std::env::temp_dir().join(format!("css-blackbox-cap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rec = FlightRecorder::new(8, &dir, &registry);
        rec.observe_slos(&[slo("lat", Severity::Ok)], 1);
        let out = rec.dump("operator test", &registry.snapshot(), &[], 2);
        let path = out.path.expect("bundle written");
        let on_disk = std::fs::read_to_string(&path).expect("readable");
        assert_eq!(on_disk, out.json);
        assert!(out.json.starts_with(r#"{"schema":"css-blackbox/1""#));
        assert!(out.json.contains(r#""kind":"manual""#));
        let list = rec.incidents_json();
        assert!(list.contains(r#""seq":1"#), "{list}");
        assert!(list.contains("operator test"), "{list}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
