//! Observation frames: what the ring remembers between incidents.
//!
//! Frames are plain data. The health/SLO variants deliberately mirror
//! `css-health`'s states as tiny local enums instead of importing them:
//! both crates live at layer 3 of the lint-enforced DAG, so neither may
//! depend on the other — the platform (`css-core`) adapts one to the
//! other when it wires the sampler's observer.

/// One entry in the flight-recorder ring.
#[derive(Debug, Clone)]
pub enum Frame {
    /// Periodic telemetry sample: counter deltas since the previous
    /// sample plus summary stats for every histogram.
    Telemetry(TelemetryFrame),
    /// Periodic SLO burn-rate sample (the whole alert table).
    Slo { at_ms: u64, samples: Vec<SloSample> },
    /// A component health transition (recorded on change only).
    Health {
        at_ms: u64,
        component: String,
        from: ComponentState,
        to: ComponentState,
        reason: Option<String>,
    },
    /// A recently finished root span (one whole request/publish pass).
    SpanRoot(SpanRootFrame),
}

impl Frame {
    /// The frame's discriminator as it appears in bundle JSON.
    pub fn kind(&self) -> &'static str {
        match self {
            Frame::Telemetry(_) => "telemetry",
            Frame::Slo { .. } => "slo",
            Frame::Health { .. } => "health",
            Frame::SpanRoot(_) => "span_root",
        }
    }

    /// Sample time (platform clock, milliseconds).
    pub fn at_ms(&self) -> u64 {
        match self {
            Frame::Telemetry(f) => f.at_ms,
            Frame::Slo { at_ms, .. } => *at_ms,
            Frame::Health { at_ms, .. } => *at_ms,
            Frame::SpanRoot(f) => f.at_ms,
        }
    }
}

/// Counter deltas and histogram summaries for one sampler tick.
#[derive(Debug, Clone, Default)]
pub struct TelemetryFrame {
    pub at_ms: u64,
    /// `(name, increase since the previous telemetry frame)` — zero
    /// deltas are omitted, so an idle platform records tiny frames.
    pub counter_deltas: Vec<(String, u64)>,
    /// Cumulative summary per histogram at this tick.
    pub histograms: Vec<HistogramStat>,
}

/// The summary a frame keeps per histogram (cumulative, not delta).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramStat {
    pub name: String,
    pub count: u64,
    pub p50_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
}

/// One SLO's burn rates at a sample, with the alert level it produced.
#[derive(Debug, Clone)]
pub struct SloSample {
    pub name: String,
    pub fast_burn: f64,
    pub slow_burn: f64,
    pub severity: Severity,
}

/// Alert severity, mirroring `css-health`'s `AlertLevel`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Ok,
    Warning,
    Critical,
}

impl Severity {
    pub fn label(self) -> &'static str {
        match self {
            Severity::Ok => "ok",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

/// Component health, mirroring `css-health`'s `HealthStatus` (the
/// reason travels separately in the frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ComponentState {
    Healthy,
    Degraded,
    Unhealthy,
}

impl ComponentState {
    pub fn label(self) -> &'static str {
        match self {
            ComponentState::Healthy => "healthy",
            ComponentState::Degraded => "degraded",
            ComponentState::Unhealthy => "unhealthy",
        }
    }
}

/// One component's state and reason at a sample (input to
/// [`FlightRecorder::observe_health`](crate::FlightRecorder::observe_health)).
#[derive(Debug, Clone)]
pub struct HealthSample {
    pub component: String,
    pub state: ComponentState,
    pub reason: Option<String>,
}

/// A finished root span: the whole-pass summary the ring keeps so a
/// bundle shows what traffic looked like just before the trigger.
#[derive(Debug, Clone)]
pub struct SpanRootFrame {
    pub at_ms: u64,
    pub trace_id: u64,
    pub name: String,
    pub duration_ns: u64,
    /// `SpanStatus::code()`: "ok" / "denied" / "error".
    pub status: &'static str,
}
