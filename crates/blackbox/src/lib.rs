//! # css-blackbox — the incident flight recorder
//!
//! Audit records prove *what* the platform released; this crate
//! captures *why* it behaved the way it did when something regressed.
//! A [`FlightRecorder`] runs continuously next to the ops sampler,
//! keeping a bounded drop-oldest ring of observation [`Frame`]s —
//! telemetry snapshot deltas, health-state transitions, SLO burn-rate
//! samples, and recent span-tree roots. When a trigger fires (an SLO
//! burn reaches Critical, a health check goes Unhealthy, or an operator
//! POSTs `/debug/capture`), the ring is frozen into a serialized
//! **incident bundle**: trigger, frame history, exemplar trace trees,
//! the health/SLO timeline, and `stage.*`/`shard.*` percentiles,
//! written under `target/incidents/` and served from the ops server.
//!
//! The bundle joins metrics to traces through **histogram exemplars**
//! (`css_telemetry::Exemplar`): each log₂ bucket retains the most
//! recent `(trace_id, timestamp)` recorded into it, so the p99 outlier
//! in `stage.total` links directly to the span tree that caused it.
//!
//! ## Redaction argument
//!
//! Everything in a bundle is an aggregate number, a privacy-safe span
//! attribute, or a health-check reason string — never an event payload,
//! fiscal code, or person name. That is enforced structurally, not by
//! convention: this crate sits at layer 3 of the lint-checked DAG (it
//! can name `css-types`/`css-telemetry`/`css-trace` only), the
//! `detail-confinement` rule makes payload types unnameable here, span
//! attributes come from the closed `SpanAttr` constructor set, and the
//! identity-taint rule treats [`FlightRecorder::capture`] as a sink so
//! an identifying value cannot flow into a bundle unsanitized.

mod bundle;
mod frame;
mod recorder;

pub use bundle::exemplars_json;
pub use frame::{
    ComponentState, Frame, HealthSample, HistogramStat, Severity, SloSample, SpanRootFrame,
    TelemetryFrame,
};
pub use recorder::{CaptureOutcome, FlightRecorder, IncidentRef, Trigger};
