//! Integration tests of the pluggable-broker surface: competing
//! consumers, dead-lettering with trace continuity, publish dedup, and
//! replay equivalence — exercised through the public `Bus` facade the
//! platform itself uses, plus a toy driver compiled against the trait.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use css_bus::{
    spawn_worker_pool, Broker, Bus, BusDriver, PublishOptions, RecordingDriver, SubscriptionConfig,
};
use css_trace::Tracer;
use css_types::Timestamp;

// ---- competing-consumer fairness ------------------------------------------

/// N threaded workers sharing one group split the stream: every message
/// is processed exactly once and no worker starves.
#[test]
fn worker_pool_is_load_balanced_and_exactly_once() {
    const WORKERS: usize = 4;
    const MESSAGES: u64 = 400;

    let bus: Bus<u64> = Bus::in_memory();
    bus.create_topic("jobs");
    let per_worker: Arc<Vec<AtomicU64>> =
        Arc::new((0..WORKERS).map(|_| AtomicU64::new(0)).collect());
    let counts = per_worker.clone();
    let pool = spawn_worker_pool(
        &bus,
        "jobs",
        "shift",
        SubscriptionConfig::default(),
        WORKERS,
        move |worker, _m: u64| {
            counts[worker].fetch_add(1, Ordering::SeqCst);
            // A tiny stall so the pull-based balancing has something to
            // balance (otherwise one fast worker can drain everything).
            std::thread::sleep(Duration::from_micros(200));
            Ok(())
        },
    )
    .unwrap();

    for i in 0..MESSAGES {
        bus.publish("jobs", i, None).unwrap();
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while per_worker
        .iter()
        .map(|c| c.load(Ordering::SeqCst))
        .sum::<u64>()
        < MESSAGES
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(5));
    }
    let processed: u64 = pool.into_iter().map(|d| d.stop()).sum();

    // Exactly-once: the group fanned out one copy per message, and the
    // pool collectively processed each copy once.
    assert_eq!(processed, MESSAGES);
    assert_eq!(bus.stats().fanned_out, MESSAGES);
    assert!(bus.dead_letters().is_empty());

    // Fairness: pull-based balancing won't be perfectly even, but no
    // worker may starve while the others split the whole stream.
    let shares: Vec<u64> = per_worker
        .iter()
        .map(|c| c.load(Ordering::SeqCst))
        .collect();
    let floor = MESSAGES / (WORKERS as u64 * 10);
    for (worker, share) in shares.iter().enumerate() {
        assert!(
            *share >= floor,
            "worker {worker} starved: {share} < {floor} of {shares:?}"
        );
    }
}

// ---- poison messages -------------------------------------------------------

/// A message every member rejects dead-letters after exactly
/// `max_attempts` tries, keeping the original publish trace and the
/// group name so the failure can be joined back to its causal record.
#[test]
fn poison_message_dead_letters_with_original_trace() {
    let broker: Broker<&'static str> = Broker::new();
    broker.create_topic("t");
    let cfg = SubscriptionConfig {
        max_attempts: 3,
        ..Default::default()
    };
    let a = broker.subscribe_group("t", "workers", cfg).unwrap();
    let b = broker.subscribe_group("t", "workers", cfg).unwrap();

    let tracer = Tracer::new(64);
    let root = tracer.root("publish", Timestamp(1));
    let ctx = root.context();
    broker
        .publish_opts("t", "poison", PublishOptions::new().traced(&ctx))
        .unwrap();
    root.finish();

    // Alternate pollers; every delivery is rejected.
    let mut attempts_seen = Vec::new();
    for member in [&a, &b, &a] {
        let d = member.poll().unwrap().expect("redelivered to the group");
        attempts_seen.push(d.attempt);
        member.nack(d.delivery_id).unwrap();
    }
    assert_eq!(attempts_seen, vec![1, 2, 3]);
    assert!(a.poll().unwrap().is_none(), "no fourth attempt");

    let dlq = broker.dead_letters();
    assert_eq!(dlq.len(), 1);
    assert_eq!(dlq[0].attempts, 3);
    assert_eq!(dlq[0].group.as_deref(), Some("workers"));
    assert_eq!(
        dlq[0].trace,
        ctx.trace_id(),
        "publish trace survives to the DLQ"
    );
    assert_eq!(a.stats().unwrap().dead_lettered, 1);
}

// ---- dedup ----------------------------------------------------------------

/// The same dedup key delivers once, whichever driver carries it.
#[test]
fn dedup_key_drops_duplicates_across_drivers() {
    let drivers: Vec<Arc<dyn BusDriver<u32>>> = vec![
        Arc::new(Broker::new()),
        Arc::new(RecordingDriver::in_memory()),
    ];
    for driver in drivers {
        let bus = Bus::from_driver(driver);
        bus.create_topic("t");
        let sub = bus.subscribe("t", SubscriptionConfig::default()).unwrap();
        let first = bus
            .publish_opts("t", 1, PublishOptions::new().dedup_key("retry-1"))
            .unwrap();
        let second = bus
            .publish_opts("t", 1, PublishOptions::new().dedup_key("retry-1"))
            .unwrap();
        assert!(!first.is_duplicate());
        assert!(second.is_duplicate());
        assert_eq!(sub.drain().unwrap(), vec![1]);
        assert_eq!(bus.stats().dedup_dropped, 1);
    }
}

// ---- replay ---------------------------------------------------------------

proptest! {
    /// Replaying from offset `k` re-delivers exactly the retained
    /// suffix, in the original order — equivalent to having subscribed
    /// late and read from `k`.
    #[test]
    fn replay_from_offset_equals_suffix(
        messages in proptest::collection::vec(any::<u16>(), 1..60),
        from_fraction in 0u8..=100,
    ) {
        let broker: Broker<u16> = Broker::new();
        broker.create_topic("t");
        let sub = broker.subscribe("t", SubscriptionConfig {
            capacity: 1 << 10,
            retain: 1 << 10,
            ..Default::default()
        }).unwrap();
        for m in &messages {
            broker.publish("t", *m).unwrap();
        }
        let live = sub.drain().unwrap();
        prop_assert_eq!(&live, &messages);

        let from = (messages.len() * from_fraction as usize / 100) as u64;
        let replayed = sub.replay_from(from).unwrap();
        let expected: Vec<u16> = messages.iter().skip(from as usize).copied().collect();
        prop_assert_eq!(replayed, expected.len());
        prop_assert_eq!(sub.drain().unwrap(), expected);
        prop_assert_eq!(sub.stats().unwrap().replayed, expected.len() as u64);
    }

    /// Group delivery is a partition: with random worker/message counts,
    /// every message lands with exactly one member.
    #[test]
    fn group_delivery_partitions_the_stream(
        members in 1usize..6,
        messages in 1u64..80,
    ) {
        let broker: Broker<u64> = Broker::new();
        broker.create_topic("t");
        let subs: Vec<_> = (0..members)
            .map(|_| broker.subscribe_group("t", "g", SubscriptionConfig {
                capacity: 1 << 10,
                ..Default::default()
            }).unwrap())
            .collect();
        for i in 0..messages {
            broker.publish("t", i).unwrap();
        }
        let mut seen: HashMap<u64, usize> = HashMap::new();
        loop {
            let mut progressed = false;
            for s in &subs {
                if let Some(d) = s.poll().unwrap() {
                    *seen.entry(d.message).or_insert(0) += 1;
                    s.ack(d.delivery_id).unwrap();
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        prop_assert_eq!(seen.len() as u64, messages);
        prop_assert!(seen.values().all(|&n| n == 1));
    }
}
