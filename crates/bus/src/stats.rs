//! Bus statistics, used by the integration-cost experiments.

/// Counters for one delivery group (shared by all its members).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubscriptionStats {
    /// Messages enqueued for this group.
    pub enqueued: u64,
    /// Deliveries handed to members (including redeliveries).
    pub delivered: u64,
    /// Messages acknowledged.
    pub acked: u64,
    /// Redeliveries after a nack, visibility timeout, or member detach.
    pub redelivered: u64,
    /// Messages moved to the dead-letter queue.
    pub dead_lettered: u64,
    /// Messages dropped by the overflow policy.
    pub dropped: u64,
    /// In-flight deliveries returned to the queue by a visibility
    /// timeout.
    pub timed_out: u64,
    /// Messages re-enqueued from the retained log by `replay_from`.
    pub replayed: u64,
}

/// Broker-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BrokerStats {
    /// Publish calls accepted.
    pub published: u64,
    /// Publish calls rejected (no such topic, or overflow with
    /// [`crate::OverflowPolicy::Reject`]).
    pub rejected: u64,
    /// Publishes dropped because their dedup key was already seen.
    pub dedup_dropped: u64,
    /// Total fan-out: message copies enqueued across delivery groups.
    pub fanned_out: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_zero() {
        let s = SubscriptionStats::default();
        assert_eq!(
            s.enqueued + s.delivered + s.acked + s.timed_out + s.replayed,
            0
        );
        let b = BrokerStats::default();
        assert_eq!(b.published + b.rejected + b.fanned_out + b.dedup_dropped, 0);
    }
}
