//! The event bus — the platform's Enterprise Service Bus substitute.
//!
//! The paper routes notification messages through an ESB ("in the
//! current prototype we customized the open source ESB ServiceMix") with
//! a publish/subscribe model so "many entities can subscribe to the same
//! type of event" (Section 3). This crate reproduces the integration
//! semantics that matter to the platform, behind a pluggable driver
//! contract:
//!
//! - the [`BusDriver`] trait — the broker contract (sync, std-only,
//!   payload-blind) that an in-memory broker, a recording wrapper, or a
//!   future networked multi-site driver all implement; the platform
//!   holds a [`Bus`] facade over `Arc<dyn BusDriver>`,
//! - named **topics** (one per class of events),
//! - **delivery groups** with explicit acknowledgement: a private group
//!   per subscriber gives classic fan-out, while N members of a named
//!   group *compete* — each message is delivered to exactly one member,
//!   load-balanced by pull,
//! - **bounded redelivery**: a nack (with exponential backoff), an
//!   expired visibility timeout, or a member detach puts the message
//!   back on the queue for another attempt, up to `max_attempts`, then
//!   the **dead-letter queue** — with the original publish trace
//!   preserved,
//! - publish **dedup keys** (a bounded per-topic idempotency window),
//!   **bounded queues** per group with a configurable overflow policy,
//!   and **replay from offset** over a retained log,
//! - per-group and broker-wide **statistics** used by experiments
//!   E1/E2/E18.
//!
//! The broker is generic over the message type; the data controller
//! instantiates it with notification messages. Delivery is pull-based
//! (`poll`), which keeps integration tests deterministic; a blocking
//! `poll_wait` built on a condvar supports threaded consumers.

pub mod broker;
pub mod dispatcher;
pub mod driver;
pub mod recording;
pub mod stats;
pub mod subscription;

pub use broker::{Broker, OverflowPolicy, SubscriptionConfig};
pub use dispatcher::{spawn_dispatcher, spawn_worker_pool, DispatcherHandle};
pub use driver::{Bus, BusDriver, PublishOptions, PublishOutcome};
pub use recording::{BusOp, RecordingDriver};
pub use stats::{BrokerStats, SubscriptionStats};
pub use subscription::{DeadLetter, Delivery, SubscriberHandle};
