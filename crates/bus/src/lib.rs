//! The event bus — the platform's Enterprise Service Bus substitute.
//!
//! The paper routes notification messages through an ESB ("in the
//! current prototype we customized the open source ESB ServiceMix") with
//! a publish/subscribe model so "many entities can subscribe to the same
//! type of event" (Section 3). This crate reproduces the integration
//! semantics that matter to the platform:
//!
//! - named **topics** (one per class of events),
//! - **durable subscriptions** with explicit acknowledgement: a message
//!   stays owned by the subscription until acked, and a nack (or
//!   redelivery timeout) puts it back at the front of the queue,
//! - **bounded queues** per subscription with a configurable overflow
//!   policy (reject the publish or drop the oldest unclaimed message),
//! - a **dead-letter queue** for messages that exhaust their delivery
//!   attempts,
//! - per-topic and per-subscription **statistics** used by experiments
//!   E1/E2.
//!
//! The broker is generic over the message type; the data controller
//! instantiates it with notification messages. Delivery is pull-based
//! (`poll`), which keeps integration tests deterministic; a blocking
//! `poll_wait` built on a condvar supports threaded consumers.

pub mod broker;
pub mod dispatcher;
pub mod stats;
pub mod subscription;

pub use broker::{Broker, OverflowPolicy, SubscriptionConfig};
pub use dispatcher::{spawn_dispatcher, DispatcherHandle};
pub use stats::{BrokerStats, SubscriptionStats};
pub use subscription::{DeadLetter, Delivery, SubscriberHandle};
