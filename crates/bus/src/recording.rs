//! A second [`BusDriver`]: a wrapper that journals broker operations.
//!
//! `RecordingDriver` proves the driver trait is genuinely pluggable —
//! it composes over *any* inner driver and the whole platform runs
//! unchanged on top of it. The journal records only privacy-safe
//! shape: topics, subscription ids, counts. Payloads are opaque `M`
//! values this module cannot inspect (and, per detail confinement,
//! could not name the concrete type of even if it wanted to).

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use css_types::{CssResult, SubscriptionId};

use crate::broker::{Broker, SubscriptionConfig};
use crate::driver::{BusDriver, PublishOptions, PublishOutcome};
use crate::stats::{BrokerStats, SubscriptionStats};
use crate::subscription::{DeadLetter, Delivery};

/// Journal entries are bounded; the oldest are dropped beyond this.
const JOURNAL_CAP: usize = 65_536;

/// One recorded broker operation. Carries identifiers and outcomes,
/// never payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusOp {
    /// A topic was declared.
    CreateTopic(String),
    /// A subscription attached (topic, delivery group).
    Attach {
        topic: String,
        group: Option<String>,
    },
    /// A subscription detached.
    Detach(SubscriptionId),
    /// A publish was routed (`deduped` = dropped as a duplicate).
    Publish { topic: String, deduped: bool },
    /// A poll returned a message (or not).
    Poll {
        subscription: SubscriptionId,
        delivered: bool,
    },
    /// A delivery was acknowledged.
    Ack(SubscriptionId, u64),
    /// A delivery was negatively acknowledged.
    Nack(SubscriptionId, u64),
    /// A replay re-enqueued `replayed` retained messages.
    Replay {
        subscription: SubscriptionId,
        from: u64,
        replayed: usize,
    },
    /// A sweep moved this many expired deliveries.
    Sweep(usize),
}

/// A [`BusDriver`] that forwards to an inner driver and journals every
/// operation.
pub struct RecordingDriver<M: Clone + Send + 'static> {
    inner: Arc<dyn BusDriver<M>>,
    journal: Mutex<Vec<BusOp>>,
}

impl<M: Clone + Send + 'static> RecordingDriver<M> {
    /// Record on top of an arbitrary inner driver.
    pub fn wrap(inner: Arc<dyn BusDriver<M>>) -> Self {
        RecordingDriver {
            inner,
            journal: Mutex::new(Vec::new()),
        }
    }

    /// Record on top of a fresh in-memory [`Broker`].
    pub fn in_memory() -> Self {
        Self::wrap(Arc::new(Broker::new()))
    }

    /// Snapshot of the journal, oldest first.
    pub fn journal(&self) -> Vec<BusOp> {
        self.journal.lock().clone()
    }

    /// Operations recorded (journal may have dropped older entries).
    pub fn journal_len(&self) -> usize {
        self.journal.lock().len()
    }

    fn record(&self, op: BusOp) {
        let mut j = self.journal.lock();
        if j.len() >= JOURNAL_CAP {
            j.remove(0);
        }
        j.push(op);
    }
}

impl<M: Clone + Send + 'static> BusDriver<M> for RecordingDriver<M> {
    fn create_topic(&self, name: &str) {
        self.inner.create_topic(name);
        self.record(BusOp::CreateTopic(name.to_string()));
    }

    fn has_topic(&self, name: &str) -> bool {
        self.inner.has_topic(name)
    }

    fn topics(&self) -> Vec<String> {
        self.inner.topics()
    }

    fn attach(
        &self,
        topic: &str,
        group: Option<&str>,
        config: SubscriptionConfig,
    ) -> CssResult<SubscriptionId> {
        let id = self.inner.attach(topic, group, config)?;
        self.record(BusOp::Attach {
            topic: topic.to_string(),
            group: group.map(str::to_string),
        });
        Ok(id)
    }

    fn detach(&self, id: SubscriptionId) -> CssResult<()> {
        self.inner.detach(id)?;
        self.record(BusOp::Detach(id));
        Ok(())
    }

    fn publish_opts(
        &self,
        topic: &str,
        message: M,
        opts: PublishOptions<'_>,
    ) -> CssResult<PublishOutcome> {
        let outcome = self.inner.publish_opts(topic, message, opts)?;
        self.record(BusOp::Publish {
            topic: topic.to_string(),
            deduped: outcome.is_duplicate(),
        });
        Ok(outcome)
    }

    fn poll(&self, id: SubscriptionId) -> CssResult<Option<Delivery<M>>> {
        let out = self.inner.poll(id)?;
        self.record(BusOp::Poll {
            subscription: id,
            delivered: out.is_some(),
        });
        Ok(out)
    }

    fn poll_wait(&self, id: SubscriptionId, timeout: Duration) -> CssResult<Option<Delivery<M>>> {
        let out = self.inner.poll_wait(id, timeout)?;
        self.record(BusOp::Poll {
            subscription: id,
            delivered: out.is_some(),
        });
        Ok(out)
    }

    fn ack(&self, id: SubscriptionId, delivery_id: u64) -> CssResult<()> {
        self.inner.ack(id, delivery_id)?;
        self.record(BusOp::Ack(id, delivery_id));
        Ok(())
    }

    fn nack(&self, id: SubscriptionId, delivery_id: u64) -> CssResult<()> {
        self.inner.nack(id, delivery_id)?;
        self.record(BusOp::Nack(id, delivery_id));
        Ok(())
    }

    fn backlog(&self, id: SubscriptionId) -> CssResult<usize> {
        self.inner.backlog(id)
    }

    fn in_flight(&self, id: SubscriptionId) -> CssResult<usize> {
        self.inner.in_flight(id)
    }

    fn sub_stats(&self, id: SubscriptionId) -> CssResult<SubscriptionStats> {
        self.inner.sub_stats(id)
    }

    fn replay_from(&self, id: SubscriptionId, offset: u64) -> CssResult<usize> {
        let replayed = self.inner.replay_from(id, offset)?;
        self.record(BusOp::Replay {
            subscription: id,
            from: offset,
            replayed,
        });
        Ok(replayed)
    }

    fn sweep(&self) -> usize {
        let moved = self.inner.sweep();
        self.record(BusOp::Sweep(moved));
        moved
    }

    fn stats(&self) -> BrokerStats {
        self.inner.stats()
    }

    fn dead_letters(&self) -> Vec<DeadLetter<M>> {
        self.inner.dead_letters()
    }

    fn subscriber_count(&self, topic: &str) -> usize {
        self.inner.subscriber_count(topic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Bus;

    #[test]
    fn journal_captures_the_delivery_lifecycle() {
        let driver = Arc::new(RecordingDriver::<String>::in_memory());
        let bus = Bus::from_driver(driver.clone());
        bus.create_topic("t");
        let sub = bus
            .subscribe_group("t", "workers", SubscriptionConfig::default())
            .unwrap();
        bus.publish("t", "m".into(), None).unwrap();
        let d = sub.poll().unwrap().unwrap();
        sub.ack(d.delivery_id).unwrap();

        let journal = driver.journal();
        assert_eq!(journal[0], BusOp::CreateTopic("t".into()));
        assert_eq!(
            journal[1],
            BusOp::Attach {
                topic: "t".into(),
                group: Some("workers".into()),
            }
        );
        assert_eq!(
            journal[2],
            BusOp::Publish {
                topic: "t".into(),
                deduped: false,
            }
        );
        assert!(matches!(
            journal[3],
            BusOp::Poll {
                delivered: true,
                ..
            }
        ));
        assert!(matches!(journal[4], BusOp::Ack(_, _)));
    }

    #[test]
    fn journal_never_contains_payload_text() {
        let driver = Arc::new(RecordingDriver::<String>::in_memory());
        let bus = Bus::from_driver(driver.clone());
        bus.create_topic("t");
        let _sub = bus.subscribe("t", SubscriptionConfig::default()).unwrap();
        bus.publish("t", "FISCAL-CODE-XYZ sensitive payload".into(), None)
            .unwrap();
        let rendered = format!("{:?}", driver.journal());
        assert!(!rendered.contains("FISCAL-CODE-XYZ"));
    }

    #[test]
    fn recording_driver_dedups_through_the_inner_driver() {
        let driver = Arc::new(RecordingDriver::<u32>::in_memory());
        let bus = Bus::from_driver(driver.clone());
        bus.create_topic("t");
        let _sub = bus.subscribe("t", SubscriptionConfig::default()).unwrap();
        bus.publish_opts("t", 1, PublishOptions::new().dedup_key("k"))
            .unwrap();
        let dup = bus
            .publish_opts("t", 1, PublishOptions::new().dedup_key("k"))
            .unwrap();
        assert!(dup.is_duplicate());
        let journal = driver.journal();
        let dedup_flags: Vec<bool> = journal
            .iter()
            .filter_map(|op| match op {
                BusOp::Publish { deduped, .. } => Some(*deduped),
                _ => None,
            })
            .collect();
        assert_eq!(dedup_flags, vec![false, true]);
    }
}
