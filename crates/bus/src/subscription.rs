//! Subscriber-facing types: deliveries, handles, dead letters.

use std::sync::Arc;
use std::time::Duration;

use css_trace::TraceId;
use css_types::{CssResult, SubscriptionId};

use crate::broker::Inner;
use crate::stats::SubscriptionStats;

/// One delivery of a message to a subscriber. The message stays owned by
/// the subscription until [`SubscriberHandle::ack`]'d.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<M> {
    /// Identifier to pass back to `ack` / `nack`.
    pub delivery_id: u64,
    /// 1-based delivery attempt for this message.
    pub attempt: u32,
    /// The causal trace of the publish that enqueued this message, if
    /// it was traced — lets the consumer continue the publisher's tree.
    pub trace: Option<TraceId>,
    /// The message payload.
    pub message: M,
}

/// A message that exhausted its delivery attempts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadLetter<M> {
    /// Subscription the message was destined for.
    pub subscription: SubscriptionId,
    /// Topic it was published on.
    pub topic: String,
    /// Attempts made before giving up.
    pub attempts: u32,
    /// The message payload.
    pub message: M,
}

/// Consumer-side handle to one subscription.
///
/// Dropping the handle does **not** unsubscribe — subscriptions are
/// durable, mirroring how a consumer's queue on the ESB outlives any one
/// connection. Call [`SubscriberHandle::unsubscribe`] to remove it.
pub struct SubscriberHandle<M: Clone + Send> {
    pub(crate) inner: Arc<Inner<M>>,
    pub(crate) id: SubscriptionId,
}

impl<M: Clone + Send> std::fmt::Debug for SubscriberHandle<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SubscriberHandle({})", self.id)
    }
}

impl<M: Clone + Send> Clone for SubscriberHandle<M> {
    fn clone(&self) -> Self {
        SubscriberHandle {
            inner: Arc::clone(&self.inner),
            id: self.id,
        }
    }
}

impl<M: Clone + Send> SubscriberHandle<M> {
    /// The subscription's identifier.
    pub fn id(&self) -> SubscriptionId {
        self.id
    }

    /// Take the next message, if one is queued. Non-blocking.
    pub fn poll(&self) -> CssResult<Option<Delivery<M>>> {
        self.inner.poll(self.id)
    }

    /// Take the next message, waiting up to `timeout` for one to arrive.
    pub fn poll_wait(&self, timeout: Duration) -> CssResult<Option<Delivery<M>>> {
        self.inner.poll_wait(self.id, timeout)
    }

    /// Acknowledge a delivery, removing the message for good.
    pub fn ack(&self, delivery_id: u64) -> CssResult<()> {
        self.inner.ack(self.id, delivery_id)
    }

    /// Negatively acknowledge a delivery. The message returns to the
    /// front of the queue for redelivery, or moves to the dead-letter
    /// queue once its attempts are exhausted.
    pub fn nack(&self, delivery_id: u64) -> CssResult<()> {
        self.inner.nack(self.id, delivery_id)
    }

    /// Messages currently queued (not counting in-flight deliveries).
    pub fn backlog(&self) -> CssResult<usize> {
        self.inner.backlog(self.id)
    }

    /// Statistics for this subscription.
    pub fn stats(&self) -> CssResult<SubscriptionStats> {
        self.inner.sub_stats(self.id)
    }

    /// Remove the subscription. Queued and in-flight messages are
    /// discarded.
    pub fn unsubscribe(self) -> CssResult<()> {
        self.inner.unsubscribe(self.id)
    }

    /// Drain every queued message, acking each — convenience for tests
    /// and simulations that consume eagerly.
    pub fn drain(&self) -> CssResult<Vec<M>> {
        let mut out = Vec::new();
        while let Some(d) = self.poll()? {
            self.ack(d.delivery_id)?;
            out.push(d.message);
        }
        Ok(out)
    }
}
