//! Subscriber-facing types: deliveries, handles, dead letters.

use std::sync::Arc;
use std::time::Duration;

use css_trace::TraceId;
use css_types::{CssResult, SubscriptionId};

use crate::driver::BusDriver;
use crate::stats::SubscriptionStats;

/// One delivery of a message to a group member. The message stays owned
/// by the group until [`SubscriberHandle::ack`]'d.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<M> {
    /// Identifier to pass back to `ack` / `nack`.
    pub delivery_id: u64,
    /// 1-based delivery attempt for this message.
    pub attempt: u32,
    /// Group-local offset assigned at enqueue; stable across
    /// redeliveries, usable with [`SubscriberHandle::replay_from`].
    pub offset: u64,
    /// The causal trace of the publish that enqueued this message, if
    /// it was traced — lets the consumer continue the publisher's tree.
    pub trace: Option<TraceId>,
    /// The message payload.
    pub message: M,
}

/// A message that exhausted its delivery attempts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadLetter<M> {
    /// The member that last held the message before it was given up on.
    pub subscription: SubscriptionId,
    /// Topic it was published on.
    pub topic: String,
    /// Delivery group it was queued for (`None` for a private group).
    pub group: Option<String>,
    /// Attempts made before giving up.
    pub attempts: u32,
    /// The original publish trace, preserved so a dead letter can be
    /// joined back to its causal record.
    pub trace: Option<TraceId>,
    /// The message payload.
    pub message: M,
}

/// Consumer-side handle to one group-member subscription, valid against
/// any [`BusDriver`].
///
/// Dropping the handle does **not** unsubscribe — subscriptions are
/// durable, mirroring how a consumer's queue on the ESB outlives any one
/// connection. Call [`SubscriberHandle::unsubscribe`] to remove it.
pub struct SubscriberHandle<M: Clone + Send + 'static> {
    driver: Arc<dyn BusDriver<M>>,
    id: SubscriptionId,
}

impl<M: Clone + Send + 'static> std::fmt::Debug for SubscriberHandle<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SubscriberHandle({})", self.id)
    }
}

impl<M: Clone + Send + 'static> Clone for SubscriberHandle<M> {
    fn clone(&self) -> Self {
        SubscriberHandle {
            driver: Arc::clone(&self.driver),
            id: self.id,
        }
    }
}

impl<M: Clone + Send + 'static> SubscriberHandle<M> {
    /// A handle binding subscription `id` to `driver`.
    pub fn new(driver: Arc<dyn BusDriver<M>>, id: SubscriptionId) -> Self {
        SubscriberHandle { driver, id }
    }

    /// The subscription's identifier.
    pub fn id(&self) -> SubscriptionId {
        self.id
    }

    /// Take the next message, if one is available. Non-blocking.
    pub fn poll(&self) -> CssResult<Option<Delivery<M>>> {
        self.driver.poll(self.id)
    }

    /// Take the next message, waiting up to `timeout` for one to arrive
    /// (or become redeliverable).
    pub fn poll_wait(&self, timeout: Duration) -> CssResult<Option<Delivery<M>>> {
        self.driver.poll_wait(self.id, timeout)
    }

    /// Acknowledge a delivery, removing the message for good.
    pub fn ack(&self, delivery_id: u64) -> CssResult<()> {
        self.driver.ack(self.id, delivery_id)
    }

    /// Negatively acknowledge a delivery. The message returns to the
    /// queue for redelivery (to any group member, after the configured
    /// backoff), or moves to the dead-letter queue once its attempts
    /// are exhausted.
    pub fn nack(&self, delivery_id: u64) -> CssResult<()> {
        self.driver.nack(self.id, delivery_id)
    }

    /// Messages currently queued for the group (not counting in-flight
    /// deliveries).
    pub fn backlog(&self) -> CssResult<usize> {
        self.driver.backlog(self.id)
    }

    /// Deliveries of the group currently awaiting ack/nack.
    pub fn in_flight(&self) -> CssResult<usize> {
        self.driver.in_flight(self.id)
    }

    /// Statistics for this subscription's delivery group.
    pub fn stats(&self) -> CssResult<SubscriptionStats> {
        self.driver.sub_stats(self.id)
    }

    /// Re-enqueue retained messages with offset ≥ `offset`, oldest
    /// first. Requires the group to be configured with `retain > 0`.
    pub fn replay_from(&self, offset: u64) -> CssResult<usize> {
        self.driver.replay_from(self.id, offset)
    }

    /// Remove this member. Its in-flight deliveries requeue for the
    /// remaining group members; the last member leaving discards the
    /// group's queue.
    pub fn unsubscribe(self) -> CssResult<()> {
        self.driver.detach(self.id)
    }

    /// Drain every queued message, acking each — convenience for tests
    /// and simulations that consume eagerly.
    pub fn drain(&self) -> CssResult<Vec<M>> {
        let mut out = Vec::new();
        while let Some(d) = self.poll()? {
            self.ack(d.delivery_id)?;
            out.push(d.message);
        }
        Ok(out)
    }
}
