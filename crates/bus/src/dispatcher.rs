//! Push-style delivery on top of the pull-based broker.
//!
//! The ESB in the deployed system notifies subscribers "automatically";
//! [`spawn_dispatcher`] reproduces that: a worker thread drains a
//! subscription and invokes the handler per message, acking on success
//! and nacking on handler panic-free failure (so the redelivery /
//! dead-letter machinery applies to processing errors too).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use css_types::CssResult;

use crate::broker::SubscriptionConfig;
use crate::driver::Bus;
use crate::subscription::SubscriberHandle;

/// Control handle for a running dispatcher thread.
pub struct DispatcherHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<u64>>,
}

impl DispatcherHandle {
    /// Signal the dispatcher to stop and wait for it; returns the number
    /// of messages it processed.
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::SeqCst);
        let Some(join) = self.join.take() else {
            return 0; // stop() consumes self, so the handle is present
        };
        // css-lint: allow(no-panic-hot-path): a handler panic is a bug; surfacing it at join keeps it loud
        join.join().expect("dispatcher thread panicked")
    }
}

impl Drop for DispatcherHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Spawn a worker that calls `handler` for every delivery on `handle`.
///
/// A handler returning `Ok(())` acks the message; `Err(())` nacks it,
/// triggering redelivery up to the subscription's `max_attempts` and
/// then the dead-letter queue.
pub fn spawn_dispatcher<M, F>(handle: SubscriberHandle<M>, mut handler: F) -> DispatcherHandle
where
    M: Clone + Send + 'static,
    F: FnMut(M) -> Result<(), ()> + Send + 'static,
{
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let join = std::thread::spawn(move || {
        let mut processed = 0u64;
        while !stop_flag.load(Ordering::SeqCst) {
            match handle.poll_wait(Duration::from_millis(20)) {
                Ok(Some(delivery)) => {
                    processed += 1;
                    let outcome = handler(delivery.message);
                    let ack_result = match outcome {
                        Ok(()) => handle.ack(delivery.delivery_id),
                        Err(()) => handle.nack(delivery.delivery_id),
                    };
                    if ack_result.is_err() {
                        break; // subscription removed under us
                    }
                }
                Ok(None) => {}
                Err(_) => break, // subscription removed
            }
        }
        processed
    });
    DispatcherHandle {
        stop,
        join: Some(join),
    }
}

/// Spawn `workers` competing dispatchers over one delivery group.
///
/// Each worker joins `group` on `topic` and runs its own dispatcher
/// thread; the bus load-balances messages across them, and a worker's
/// `Err(())` sends the message to *another* worker (bounded by the
/// group's `max_attempts`). The handler receives `(worker_index,
/// message)`.
pub fn spawn_worker_pool<M, F>(
    bus: &Bus<M>,
    topic: &str,
    group: &str,
    config: SubscriptionConfig,
    workers: usize,
    handler: F,
) -> CssResult<Vec<DispatcherHandle>>
where
    M: Clone + Send + 'static,
    F: Fn(usize, M) -> Result<(), ()> + Send + Sync + Clone + 'static,
{
    let mut handles = Vec::with_capacity(workers);
    for worker in 0..workers {
        let sub = bus.subscribe_group(topic, group, config)?;
        let handler = handler.clone();
        handles.push(spawn_dispatcher(sub, move |m| handler(worker, m)));
    }
    Ok(handles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::Broker;
    use std::sync::Mutex;

    #[test]
    fn dispatcher_processes_and_acks() {
        let broker: Broker<u32> = Broker::new();
        broker.create_topic("t");
        let sub = broker
            .subscribe("t", SubscriptionConfig::default())
            .unwrap();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let stats_handle = sub.clone();
        let dispatcher = spawn_dispatcher(sub, move |m| {
            sink.lock().unwrap().push(m);
            Ok(())
        });
        for i in 0..50 {
            broker.publish("t", i).unwrap();
        }
        // Wait for drain.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while seen.lock().unwrap().len() < 50 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let processed = dispatcher.stop();
        assert_eq!(processed, 50);
        assert_eq!(seen.lock().unwrap().len(), 50);
        assert_eq!(stats_handle.stats().unwrap().acked, 50);
    }

    #[test]
    fn failing_handler_dead_letters() {
        let broker: Broker<&'static str> = Broker::new();
        broker.create_topic("t");
        let cfg = SubscriptionConfig {
            max_attempts: 2,
            ..Default::default()
        };
        let sub = broker.subscribe("t", cfg).unwrap();
        let dispatcher = spawn_dispatcher(sub, |_m| Err(()));
        broker.publish("t", "poison").unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while broker.dead_letters().is_empty() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        dispatcher.stop();
        let dlq = broker.dead_letters();
        assert_eq!(dlq.len(), 1);
        assert_eq!(dlq[0].attempts, 2);
    }

    #[test]
    fn drop_stops_the_worker() {
        let broker: Broker<u32> = Broker::new();
        broker.create_topic("t");
        let sub = broker
            .subscribe("t", SubscriptionConfig::default())
            .unwrap();
        {
            let _dispatcher = spawn_dispatcher(sub, |_m| Ok(()));
        } // dropped here; must not hang
        broker.publish("t", 1).unwrap();
    }

    #[test]
    fn worker_pool_splits_the_load() {
        let bus: Bus<u64> = Bus::in_memory();
        bus.create_topic("jobs");
        let count = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let sink = count.clone();
        let pool = spawn_worker_pool(&bus, "jobs", "workers", SubscriptionConfig::default(), 3, {
            move |_worker, _m| {
                sink.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
        })
        .unwrap();
        for i in 0..90u64 {
            bus.publish("jobs", i, None).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while count.load(Ordering::SeqCst) < 90 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let total: u64 = pool.into_iter().map(|d| d.stop()).sum();
        // Competing consumers: 90 messages processed once each, not 270.
        assert_eq!(total, 90);
        assert_eq!(bus.stats().fanned_out, 90);
    }

    #[test]
    fn two_dispatchers_on_two_subscriptions() {
        let broker: Broker<u32> = Broker::new();
        broker.create_topic("t");
        let a = broker
            .subscribe("t", SubscriptionConfig::default())
            .unwrap();
        let b = broker
            .subscribe("t", SubscriptionConfig::default())
            .unwrap();
        let count = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let (ca, cb) = (count.clone(), count.clone());
        let da = spawn_dispatcher(a, move |_| {
            ca.fetch_add(1, Ordering::SeqCst);
            Ok(())
        });
        let db = spawn_dispatcher(b, move |_| {
            cb.fetch_add(1, Ordering::SeqCst);
            Ok(())
        });
        for i in 0..20 {
            broker.publish("t", i).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while count.load(Ordering::SeqCst) < 40 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(da.stop() + db.stop(), 40);
    }
}
