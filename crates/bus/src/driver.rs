//! The pluggable broker contract: [`BusDriver`] and the [`Bus`] facade.
//!
//! The platform's delivery substrate is defined as a trait so the
//! in-memory broker, a recording wrapper, or (later) a networked
//! multi-site driver can slot in behind the same surface. Two rules
//! shape the contract:
//!
//! - **sync / std-only**: every method is a plain blocking call, so a
//!   driver can be backed by a mutex, a socket, or a file without
//!   dragging an async runtime into the platform;
//! - **payload-blind**: the trait is generic over the message type `M`
//!   and a driver can only clone and move payloads — it has no way to
//!   name `DetailMessage` or any other concrete event type, so detail
//!   confinement holds by construction (enforced by css-lint's
//!   `detail-confinement` rule over this crate).
//!
//! Delivery follows the competing-consumer model: a subscription
//! attaches to a *delivery group* (solo by default, shared when a group
//! name is given), each message is delivered to exactly one member of
//! each group, and an unacknowledged delivery returns to the queue —
//! via nack, visibility timeout, or member detach — until its attempt
//! budget is spent and it dead-letters.

use std::sync::Arc;
use std::time::Duration;

use css_trace::TraceContext;
use css_types::{CssResult, SubscriptionId};

use crate::broker::{Broker, SubscriptionConfig};
use crate::stats::{BrokerStats, SubscriptionStats};
use crate::subscription::{DeadLetter, Delivery, SubscriberHandle};

/// Per-publish options: an idempotency key and an optional trace.
///
/// Borrowed and `Copy`, so hot paths build one on the stack per call.
#[derive(Default, Clone, Copy)]
pub struct PublishOptions<'a> {
    /// Producer-chosen idempotency key. A publish whose key was already
    /// seen within the topic's dedup window is dropped, not routed.
    pub dedup_key: Option<&'a str>,
    /// Trace to continue: routing and delivery record spans under it.
    pub trace: Option<&'a TraceContext>,
}

impl<'a> PublishOptions<'a> {
    /// Options with no dedup key and no trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach an idempotency key.
    pub fn dedup_key(mut self, key: &'a str) -> Self {
        self.dedup_key = Some(key);
        self
    }

    /// Continue `ctx`'s trace through routing and delivery.
    pub fn traced(mut self, ctx: &'a TraceContext) -> Self {
        self.trace = Some(ctx);
        self
    }

    /// [`PublishOptions::traced`] for optionally-traced call sites.
    pub fn traced_opt(mut self, ctx: Option<&'a TraceContext>) -> Self {
        self.trace = ctx;
        self
    }
}

/// What happened to a publish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublishOutcome {
    /// Enqueued for this many delivery groups (0 = no subscribers).
    Routed(usize),
    /// Dropped: the dedup key was already seen in the topic's window.
    DuplicateDropped,
}

impl PublishOutcome {
    /// Delivery groups the message was enqueued for (0 for a duplicate).
    pub fn routed(&self) -> usize {
        match self {
            PublishOutcome::Routed(n) => *n,
            PublishOutcome::DuplicateDropped => 0,
        }
    }

    /// Whether the publish was dropped as a duplicate.
    pub fn is_duplicate(&self) -> bool {
        matches!(self, PublishOutcome::DuplicateDropped)
    }
}

/// The broker contract every delivery substrate implements.
///
/// Object-safe and generic over the payload `M`: implementors move
/// opaque values around and can never inspect or name event types. All
/// methods are synchronous; blocking behaviour is explicit
/// ([`BusDriver::poll_wait`]) and everything else returns immediately.
///
/// Subscriptions attach to **delivery groups**. `attach(topic, None,
/// ..)` creates a private group (classic fan-out: every such
/// subscription sees every message); `attach(topic, Some("workers"),
/// ..)` joins the named group on that topic, whose members *compete*:
/// each message goes to exactly one member, load-balanced by pull.
///
/// Delivery state machine, per message and group:
///
/// ```text
///   queued --poll--> in-flight --ack-----------------> done
///     ^                  |
///     |                  +--nack (attempts left)-----> queued (after backoff)
///     |                  +--visibility timeout-------> queued
///     |                  +--member detach------------> queued
///     |                  +--nack/timeout, no attempts
///     |                         left ----------------> dead-letter queue
///     +--replay_from (retained log) — fresh attempt counter
/// ```
pub trait BusDriver<M: Clone + Send + 'static>: Send + Sync {
    /// Declare a topic. Idempotent.
    fn create_topic(&self, name: &str);

    /// Whether the topic exists.
    fn has_topic(&self, name: &str) -> bool;

    /// All declared topics, sorted.
    fn topics(&self) -> Vec<String>;

    /// Attach a subscription to `topic`, joining the named delivery
    /// `group` (or a private group when `None`). The first member's
    /// `config` fixes the group's queueing behaviour; later members
    /// share it.
    fn attach(
        &self,
        topic: &str,
        group: Option<&str>,
        config: SubscriptionConfig,
    ) -> CssResult<SubscriptionId>;

    /// Remove a subscription. Its in-flight deliveries return to the
    /// queue for the remaining group members; when the last member
    /// leaves, the group and its queue are discarded.
    fn detach(&self, id: SubscriptionId) -> CssResult<()>;

    /// Publish a message to every delivery group of `topic`.
    ///
    /// With [`crate::OverflowPolicy::Reject`], a single full group
    /// queue fails the whole publish *before* any enqueue
    /// (all-or-nothing back-pressure); a rejected publish does not
    /// consume its dedup key.
    fn publish_opts(
        &self,
        topic: &str,
        message: M,
        opts: PublishOptions<'_>,
    ) -> CssResult<PublishOutcome>;

    /// Take the next available message for this member. Non-blocking.
    /// Also sweeps the group's visibility timeouts.
    fn poll(&self, id: SubscriptionId) -> CssResult<Option<Delivery<M>>>;

    /// [`BusDriver::poll`], waiting up to `timeout` for a message —
    /// including one becoming redeliverable via backoff expiry or a
    /// visibility timeout.
    fn poll_wait(&self, id: SubscriptionId, timeout: Duration) -> CssResult<Option<Delivery<M>>>;

    /// Acknowledge a delivery held by this member, retiring it.
    fn ack(&self, id: SubscriptionId, delivery_id: u64) -> CssResult<()>;

    /// Negatively acknowledge a delivery held by this member: requeue
    /// for another attempt (after the group's redelivery backoff), or
    /// dead-letter once attempts are exhausted.
    fn nack(&self, id: SubscriptionId, delivery_id: u64) -> CssResult<()>;

    /// Messages queued for the member's group (excluding in-flight).
    fn backlog(&self, id: SubscriptionId) -> CssResult<usize>;

    /// Deliveries of the member's group currently awaiting ack/nack.
    fn in_flight(&self, id: SubscriptionId) -> CssResult<usize>;

    /// Statistics of the member's delivery group.
    fn sub_stats(&self, id: SubscriptionId) -> CssResult<SubscriptionStats>;

    /// Re-enqueue retained messages with offset ≥ `offset` for the
    /// member's group, oldest first, with fresh attempt counters.
    /// Returns how many were replayed. Errors unless the group was
    /// configured with `retain > 0`.
    fn replay_from(&self, id: SubscriptionId, offset: u64) -> CssResult<usize>;

    /// Requeue (or dead-letter) every delivery whose visibility timeout
    /// has expired, across all groups. Returns how many moved. Polling
    /// sweeps lazily; this forces a pass for tests and ops tooling.
    fn sweep(&self) -> usize;

    /// Broker-wide statistics.
    fn stats(&self) -> BrokerStats;

    /// Snapshot of the dead-letter queue.
    fn dead_letters(&self) -> Vec<DeadLetter<M>>;

    /// Active member subscriptions across all groups of a topic.
    fn subscriber_count(&self, topic: &str) -> usize;
}

/// Handle to a broker behind some [`BusDriver`].
///
/// This is what the platform wires through: cheap to clone, driver
/// chosen at construction ([`Bus::in_memory`] by default, anything else
/// via [`Bus::from_driver`]). It adds the ergonomic layer the trait
/// deliberately lacks: typed [`SubscriberHandle`]s and convenience
/// publish methods.
pub struct Bus<M: Clone + Send + 'static> {
    driver: Arc<dyn BusDriver<M>>,
}

impl<M: Clone + Send + 'static> Clone for Bus<M> {
    fn clone(&self) -> Self {
        Bus {
            driver: Arc::clone(&self.driver),
        }
    }
}

impl<M: Clone + Send + 'static> Default for Bus<M> {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl<M: Clone + Send + 'static> Bus<M> {
    /// A bus over the built-in in-memory driver ([`Broker`]).
    pub fn in_memory() -> Self {
        Bus {
            driver: Arc::new(Broker::new()),
        }
    }

    /// An in-memory bus recording `bus.*` telemetry into `registry`.
    pub fn in_memory_with_telemetry(registry: &css_telemetry::MetricsRegistry) -> Self {
        Bus {
            driver: Arc::new(Broker::with_telemetry(registry)),
        }
    }

    /// A bus over a caller-supplied driver.
    pub fn from_driver(driver: Arc<dyn BusDriver<M>>) -> Self {
        Bus { driver }
    }

    /// The underlying driver.
    pub fn driver(&self) -> &Arc<dyn BusDriver<M>> {
        &self.driver
    }

    /// Declare a topic. Idempotent.
    pub fn create_topic(&self, name: &str) {
        self.driver.create_topic(name);
    }

    /// Whether the topic exists.
    pub fn has_topic(&self, name: &str) -> bool {
        self.driver.has_topic(name)
    }

    /// All declared topics, sorted.
    pub fn topics(&self) -> Vec<String> {
        self.driver.topics()
    }

    /// Subscribe to a topic in a private delivery group (fan-out).
    pub fn subscribe(
        &self,
        topic: &str,
        config: SubscriptionConfig,
    ) -> CssResult<SubscriberHandle<M>> {
        let id = self.driver.attach(topic, None, config)?;
        Ok(SubscriberHandle::new(Arc::clone(&self.driver), id))
    }

    /// Join the named competing-consumer group on `topic`.
    pub fn subscribe_group(
        &self,
        topic: &str,
        group: &str,
        config: SubscriptionConfig,
    ) -> CssResult<SubscriberHandle<M>> {
        let id = self.driver.attach(topic, Some(group), config)?;
        Ok(SubscriberHandle::new(Arc::clone(&self.driver), id))
    }

    /// Publish with full options (dedup key, trace).
    pub fn publish_opts(
        &self,
        topic: &str,
        message: M,
        opts: PublishOptions<'_>,
    ) -> CssResult<PublishOutcome> {
        self.driver.publish_opts(topic, message, opts)
    }

    /// Publish a message, returning the number of delivery groups it
    /// was enqueued for. Optionally continues `ctx`'s trace.
    pub fn publish(&self, topic: &str, message: M, ctx: Option<&TraceContext>) -> CssResult<usize> {
        self.driver
            .publish_opts(topic, message, PublishOptions::new().traced_opt(ctx))
            .map(|o| o.routed())
    }

    /// Broker-wide statistics.
    pub fn stats(&self) -> BrokerStats {
        self.driver.stats()
    }

    /// Snapshot of the dead-letter queue.
    pub fn dead_letters(&self) -> Vec<DeadLetter<M>> {
        self.driver.dead_letters()
    }

    /// Active member subscriptions across all groups of a topic.
    pub fn subscriber_count(&self, topic: &str) -> usize {
        self.driver.subscriber_count(topic)
    }

    /// Force a visibility-timeout sweep across all groups.
    pub fn sweep(&self) -> usize {
        self.driver.sweep()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_options_builder_composes() {
        let opts = PublishOptions::new().dedup_key("k");
        assert_eq!(opts.dedup_key, Some("k"));
        assert!(opts.trace.is_none());
        assert!(PublishOptions::new().traced_opt(None).trace.is_none());
    }

    #[test]
    fn outcome_accessors() {
        assert_eq!(PublishOutcome::Routed(3).routed(), 3);
        assert!(!PublishOutcome::Routed(3).is_duplicate());
        assert_eq!(PublishOutcome::DuplicateDropped.routed(), 0);
        assert!(PublishOutcome::DuplicateDropped.is_duplicate());
    }

    #[test]
    fn bus_facade_routes_through_the_driver() {
        let bus: Bus<u32> = Bus::in_memory();
        bus.create_topic("t");
        assert!(bus.has_topic("t"));
        let sub = bus.subscribe("t", SubscriptionConfig::default()).unwrap();
        assert_eq!(bus.publish("t", 7, None).unwrap(), 1);
        assert_eq!(bus.subscriber_count("t"), 1);
        let d = sub.poll().unwrap().unwrap();
        assert_eq!(d.message, 7);
        sub.ack(d.delivery_id).unwrap();
        assert_eq!(bus.stats().published, 1);
    }

    #[test]
    fn group_subscribers_compete() {
        let bus: Bus<u32> = Bus::in_memory();
        bus.create_topic("t");
        let a = bus
            .subscribe_group("t", "workers", SubscriptionConfig::default())
            .unwrap();
        let b = bus
            .subscribe_group("t", "workers", SubscriptionConfig::default())
            .unwrap();
        // One group → each message routed once, delivered to one member.
        assert_eq!(bus.publish("t", 1, None).unwrap(), 1);
        assert_eq!(bus.publish("t", 2, None).unwrap(), 1);
        let da = a.poll().unwrap().unwrap();
        let db = b.poll().unwrap().unwrap();
        assert_ne!(da.message, db.message);
        assert!(a.poll().unwrap().is_none());
        a.ack(da.delivery_id).unwrap();
        b.ack(db.delivery_id).unwrap();
    }
}
