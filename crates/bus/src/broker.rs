//! The broker: topics, fan-out, queues, acknowledgement protocol.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use css_telemetry::{Counter, Gauge, Histogram, MetricsRegistry};
use css_trace::{SpanGuard, SpanStatus, TraceContext, TraceId};
use css_types::{CssError, CssResult, SubscriptionId};

use crate::stats::{BrokerStats, SubscriptionStats};
use crate::subscription::{DeadLetter, Delivery, SubscriberHandle};

/// Cached telemetry handles for the broker hot paths (resolved once at
/// construction; recording is lock-free).
struct BusInstruments {
    /// `bus.publish` — duration of each publish call.
    publish_latency: Histogram,
    /// `bus.deliver` — enqueue-to-delivery latency per message.
    deliver_latency: Histogram,
    /// `bus.ack` — delivery-to-acknowledgement latency per message.
    ack_latency: Histogram,
    /// `bus.published` — successful publish calls.
    published: Counter,
    /// `bus.fanned_out` — per-subscription enqueues.
    fanned_out: Counter,
    /// `bus.queue_depth` — messages currently queued (all topics).
    queue_depth: Gauge,
}

impl BusInstruments {
    fn resolve(registry: &MetricsRegistry) -> Self {
        BusInstruments {
            publish_latency: registry.histogram("bus.publish"),
            deliver_latency: registry.histogram("bus.deliver"),
            ack_latency: registry.histogram("bus.ack"),
            published: registry.counter("bus.published"),
            fanned_out: registry.counter("bus.fanned_out"),
            queue_depth: registry.gauge("bus.queue_depth"),
        }
    }
}

/// What to do when a subscription's queue is full at publish time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Fail the publish with a bus error (back-pressure to producers).
    Reject,
    /// Drop the oldest queued message to make room (monitoring-grade
    /// delivery: newest data wins).
    DropOldest,
}

/// Per-subscription configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscriptionConfig {
    /// Maximum queued (undelivered) messages.
    pub capacity: usize,
    /// Delivery attempts before a message is dead-lettered.
    pub max_attempts: u32,
    /// Overflow behaviour.
    pub overflow: OverflowPolicy,
}

impl Default for SubscriptionConfig {
    fn default() -> Self {
        SubscriptionConfig {
            capacity: 1024,
            max_attempts: 3,
            overflow: OverflowPolicy::Reject,
        }
    }
}

struct Pending<M> {
    message: M,
    attempts: u32,
    /// When queued this timestamps the enqueue; once in flight it is
    /// re-stamped at delivery, so ack latency measures from delivery.
    since: Instant,
    /// The trace of the publish that enqueued this message, if traced.
    trace: Option<TraceId>,
    /// Open `bus.deliver` span covering enqueue-to-delivery; finished
    /// at first poll (or on drop if the message never gets delivered).
    deliver_span: Option<SpanGuard>,
}

struct SubState<M> {
    topic: String,
    config: SubscriptionConfig,
    queue: VecDeque<Pending<M>>,
    in_flight: HashMap<u64, Pending<M>>,
    stats: SubscriptionStats,
}

struct State<M> {
    topics: HashMap<String, Vec<SubscriptionId>>,
    subs: HashMap<SubscriptionId, SubState<M>>,
    dlq: Vec<DeadLetter<M>>,
    stats: BrokerStats,
    next_sub: u64,
    next_delivery: u64,
}

pub(crate) struct Inner<M> {
    state: Mutex<State<M>>,
    arrivals: Condvar,
    telemetry: Option<BusInstruments>,
}

/// A publish/subscribe broker over named topics.
///
/// Cheaply cloneable; clones share the same broker state.
pub struct Broker<M: Clone + Send> {
    inner: Arc<Inner<M>>,
}

impl<M: Clone + Send> Clone for Broker<M> {
    fn clone(&self) -> Self {
        Broker {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<M: Clone + Send> Default for Broker<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Clone + Send> Broker<M> {
    /// A broker with no topics.
    pub fn new() -> Self {
        Self::build(None)
    }

    /// A broker recording latency histograms, throughput counters and a
    /// queue-depth gauge into `registry` under `bus.*` names.
    pub fn with_telemetry(registry: &MetricsRegistry) -> Self {
        Self::build(Some(BusInstruments::resolve(registry)))
    }

    fn build(telemetry: Option<BusInstruments>) -> Self {
        Broker {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    topics: HashMap::new(),
                    subs: HashMap::new(),
                    dlq: Vec::new(),
                    stats: BrokerStats::default(),
                    next_sub: 1,
                    next_delivery: 1,
                }),
                arrivals: Condvar::new(),
                telemetry,
            }),
        }
    }

    /// Declare a topic. Idempotent.
    pub fn create_topic(&self, name: impl Into<String>) {
        let mut st = self.inner.state.lock();
        st.topics.entry(name.into()).or_default();
    }

    /// Whether the topic exists.
    pub fn has_topic(&self, name: &str) -> bool {
        self.inner.state.lock().topics.contains_key(name)
    }

    /// All declared topics, sorted.
    pub fn topics(&self) -> Vec<String> {
        let st = self.inner.state.lock();
        let mut out: Vec<String> = st.topics.keys().cloned().collect();
        out.sort();
        out
    }

    /// Subscribe to a topic.
    pub fn subscribe(
        &self,
        topic: &str,
        config: SubscriptionConfig,
    ) -> CssResult<SubscriberHandle<M>> {
        let mut st = self.inner.state.lock();
        let state = &mut *st;
        let Some(ids) = state.topics.get_mut(topic) else {
            return Err(CssError::Bus(format!("no such topic {topic:?}")));
        };
        let id = SubscriptionId(state.next_sub);
        state.next_sub += 1;
        state.subs.insert(
            id,
            SubState {
                topic: topic.to_string(),
                config,
                queue: VecDeque::new(),
                in_flight: HashMap::new(),
                stats: SubscriptionStats::default(),
            },
        );
        ids.push(id);
        Ok(SubscriberHandle {
            inner: Arc::clone(&self.inner),
            id,
        })
    }

    /// Publish a message to every subscription of `topic`.
    ///
    /// Returns the number of subscriptions the message was enqueued for.
    /// With [`OverflowPolicy::Reject`], a single full queue fails the
    /// whole publish *before* any enqueue (all-or-nothing), so producers
    /// see consistent back-pressure.
    pub fn publish(&self, topic: &str, message: M) -> CssResult<usize> {
        self.publish_traced(topic, message, None)
    }

    /// [`Broker::publish`], continuing the caller's trace: the fan-out
    /// runs under a `bus.route` span, and each enqueued copy carries an
    /// open `bus.deliver` span that closes when the subscriber polls it
    /// — so a trace tree shows routing and per-subscriber queue time as
    /// separate children of the publish.
    pub fn publish_traced(
        &self,
        topic: &str,
        message: M,
        ctx: Option<&TraceContext>,
    ) -> CssResult<usize> {
        let started = Instant::now();
        let mut route = TraceContext::child_opt(ctx, "bus.route");
        let mut st = self.inner.state.lock();
        let sub_ids = match st.topics.get(topic) {
            Some(ids) => ids.clone(),
            None => {
                st.stats.rejected += 1;
                route.set_status(SpanStatus::Error);
                return Err(CssError::Bus(format!("no such topic {topic:?}")));
            }
        };
        // Pre-flight: with Reject overflow, check all queues first.
        let overflowing = sub_ids.iter().find_map(|id| {
            let sub = st.subs.get(id)?;
            (sub.config.overflow == OverflowPolicy::Reject
                && sub.queue.len() >= sub.config.capacity)
                .then_some((*id, sub.config.capacity))
        });
        if let Some((id, capacity)) = overflowing {
            st.stats.rejected += 1;
            route.set_status(SpanStatus::Error);
            return Err(CssError::Bus(format!(
                "subscription {id} queue full ({capacity} messages)"
            )));
        }
        let route_ctx = route.context();
        let mut fanout = 0usize;
        let mut dropped = 0i64;
        for id in &sub_ids {
            // The topic list and the subscription map are kept in sync;
            // a missing entry means the subscription raced away — skip.
            let Some(sub) = st.subs.get_mut(id) else {
                continue;
            };
            if sub.queue.len() >= sub.config.capacity {
                // Only reachable under DropOldest.
                sub.queue.pop_front();
                sub.stats.dropped += 1;
                dropped += 1;
            }
            sub.queue.push_back(Pending {
                message: message.clone(),
                attempts: 0,
                since: started,
                trace: route_ctx.trace_id(),
                deliver_span: route_ctx.trace_id().map(|_| route_ctx.child("bus.deliver")),
            });
            sub.stats.enqueued += 1;
            fanout += 1;
        }
        st.stats.published += 1;
        st.stats.fanned_out += fanout as u64;
        drop(st);
        route.finish();
        if let Some(t) = &self.inner.telemetry {
            t.published.inc();
            t.fanned_out.add(fanout as u64);
            t.queue_depth.add(fanout as i64 - dropped);
            t.publish_latency.record_duration(started.elapsed());
        }
        self.inner.arrivals.notify_all();
        Ok(fanout)
    }

    /// Broker-wide statistics.
    pub fn stats(&self) -> BrokerStats {
        self.inner.state.lock().stats
    }

    /// Snapshot of the dead-letter queue.
    pub fn dead_letters(&self) -> Vec<DeadLetter<M>> {
        self.inner.state.lock().dlq.clone()
    }

    /// Number of active subscriptions on a topic.
    pub fn subscriber_count(&self, topic: &str) -> usize {
        self.inner
            .state
            .lock()
            .topics
            .get(topic)
            .map(Vec::len)
            .unwrap_or(0)
    }
}

impl<M: Clone + Send> Inner<M> {
    fn with_sub<R>(
        &self,
        id: SubscriptionId,
        f: impl FnOnce(&mut State<M>, &mut SubState<M>) -> R,
    ) -> CssResult<R> {
        let mut st = self.state.lock();
        let mut sub = match st.subs.remove(&id) {
            Some(s) => s,
            None => return Err(CssError::Bus(format!("unknown subscription {id}"))),
        };
        let out = f(&mut st, &mut sub);
        st.subs.insert(id, sub);
        Ok(out)
    }

    pub(crate) fn poll(&self, id: SubscriptionId) -> CssResult<Option<Delivery<M>>> {
        self.with_sub(id, |st, sub| match sub.queue.pop_front() {
            None => None,
            Some(mut pending) => {
                pending.attempts += 1;
                let delivery_id = st.next_delivery;
                st.next_delivery += 1;
                if let Some(span) = pending.deliver_span.take() {
                    span.finish();
                }
                let delivery = Delivery {
                    delivery_id,
                    attempt: pending.attempts,
                    trace: pending.trace,
                    message: pending.message.clone(),
                };
                if pending.attempts > 1 {
                    sub.stats.redelivered += 1;
                }
                sub.stats.delivered += 1;
                if let Some(t) = &self.telemetry {
                    let now = Instant::now();
                    t.deliver_latency
                        .record_duration(now.duration_since(pending.since));
                    t.queue_depth.dec();
                    // Re-stamp: from here `since` means "delivered at".
                    pending.since = now;
                }
                sub.in_flight.insert(delivery_id, pending);
                Some(delivery)
            }
        })
    }

    pub(crate) fn poll_wait(
        &self,
        id: SubscriptionId,
        timeout: Duration,
    ) -> CssResult<Option<Delivery<M>>> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(d) = self.poll(id)? {
                return Ok(Some(d));
            }
            let mut st = self.state.lock();
            if !st.subs.contains_key(&id) {
                return Err(CssError::Bus(format!("unknown subscription {id}")));
            }
            // Re-check emptiness under the lock to avoid a lost wakeup.
            if !st.subs[&id].queue.is_empty() {
                continue;
            }
            let timed_out = self.arrivals.wait_until(&mut st, deadline).timed_out();
            if timed_out {
                drop(st);
                return self.poll(id);
            }
        }
    }

    pub(crate) fn ack(&self, id: SubscriptionId, delivery_id: u64) -> CssResult<()> {
        self.with_sub(id, |_st, sub| {
            if let Some(pending) = sub.in_flight.remove(&delivery_id) {
                sub.stats.acked += 1;
                if let Some(t) = &self.telemetry {
                    t.ack_latency.record_duration(pending.since.elapsed());
                }
                Ok(())
            } else {
                Err(CssError::Bus(format!(
                    "no in-flight delivery {delivery_id}"
                )))
            }
        })?
    }

    pub(crate) fn nack(&self, id: SubscriptionId, delivery_id: u64) -> CssResult<()> {
        self.with_sub(id, |st, sub| {
            let pending = match sub.in_flight.remove(&delivery_id) {
                Some(p) => p,
                None => {
                    return Err(CssError::Bus(format!(
                        "no in-flight delivery {delivery_id}"
                    )))
                }
            };
            if pending.attempts >= sub.config.max_attempts {
                sub.stats.dead_lettered += 1;
                st.dlq.push(DeadLetter {
                    subscription: id,
                    topic: sub.topic.clone(),
                    attempts: pending.attempts,
                    message: pending.message,
                });
            } else {
                sub.queue.push_front(pending);
                if let Some(t) = &self.telemetry {
                    t.queue_depth.inc();
                }
            }
            Ok(())
        })?
    }

    pub(crate) fn backlog(&self, id: SubscriptionId) -> CssResult<usize> {
        self.with_sub(id, |_st, sub| sub.queue.len())
    }

    pub(crate) fn sub_stats(&self, id: SubscriptionId) -> CssResult<SubscriptionStats> {
        self.with_sub(id, |_st, sub| sub.stats)
    }

    pub(crate) fn unsubscribe(&self, id: SubscriptionId) -> CssResult<()> {
        let mut st = self.state.lock();
        let sub = st
            .subs
            .remove(&id)
            .ok_or_else(|| CssError::Bus(format!("unknown subscription {id}")))?;
        if let Some(ids) = st.topics.get_mut(&sub.topic) {
            ids.retain(|s| *s != id);
        }
        if let Some(t) = &self.telemetry {
            t.queue_depth.sub(sub.queue.len() as i64);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn broker() -> Broker<String> {
        let b = Broker::new();
        b.create_topic("blood-test");
        b
    }

    #[test]
    fn publish_without_topic_fails() {
        let b: Broker<String> = Broker::new();
        assert!(b.publish("nope", "m".into()).is_err());
        assert_eq!(b.stats().rejected, 1);
    }

    #[test]
    fn subscribe_unknown_topic_fails() {
        let b: Broker<String> = Broker::new();
        assert!(b.subscribe("nope", SubscriptionConfig::default()).is_err());
    }

    #[test]
    fn fan_out_to_all_subscribers() {
        let b = broker();
        let s1 = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        let s2 = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        let n = b.publish("blood-test", "hello".into()).unwrap();
        assert_eq!(n, 2);
        assert_eq!(s1.drain().unwrap(), vec!["hello"]);
        assert_eq!(s2.drain().unwrap(), vec!["hello"]);
        assert_eq!(b.stats().fanned_out, 2);
    }

    #[test]
    fn publish_with_no_subscribers_is_ok() {
        let b = broker();
        assert_eq!(b.publish("blood-test", "m".into()).unwrap(), 0);
    }

    #[test]
    fn fifo_order_preserved() {
        let b = broker();
        let s = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        for i in 0..5 {
            b.publish("blood-test", format!("m{i}")).unwrap();
        }
        assert_eq!(s.drain().unwrap(), vec!["m0", "m1", "m2", "m3", "m4"]);
    }

    #[test]
    fn unacked_message_stays_in_flight() {
        let b = broker();
        let s = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        b.publish("blood-test", "m".into()).unwrap();
        let d = s.poll().unwrap().unwrap();
        // Queue is drained but message not acked.
        assert!(s.poll().unwrap().is_none());
        s.ack(d.delivery_id).unwrap();
        assert!(s.ack(d.delivery_id).is_err(), "double ack");
    }

    #[test]
    fn nack_redelivers_at_front() {
        let b = broker();
        let s = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        b.publish("blood-test", "first".into()).unwrap();
        b.publish("blood-test", "second".into()).unwrap();
        let d = s.poll().unwrap().unwrap();
        assert_eq!(d.message, "first");
        s.nack(d.delivery_id).unwrap();
        let d2 = s.poll().unwrap().unwrap();
        assert_eq!(d2.message, "first");
        assert_eq!(d2.attempt, 2);
        assert_eq!(s.stats().unwrap().redelivered, 1);
    }

    #[test]
    fn exhausted_attempts_dead_letter() {
        let b = broker();
        let cfg = SubscriptionConfig {
            max_attempts: 2,
            ..Default::default()
        };
        let s = b.subscribe("blood-test", cfg).unwrap();
        b.publish("blood-test", "poison".into()).unwrap();
        for _ in 0..2 {
            let d = s.poll().unwrap().unwrap();
            s.nack(d.delivery_id).unwrap();
        }
        assert!(s.poll().unwrap().is_none());
        let dlq = b.dead_letters();
        assert_eq!(dlq.len(), 1);
        assert_eq!(dlq[0].message, "poison");
        assert_eq!(dlq[0].attempts, 2);
        assert_eq!(s.stats().unwrap().dead_lettered, 1);
    }

    #[test]
    fn reject_overflow_fails_publish_atomically() {
        let b = broker();
        let tiny = SubscriptionConfig {
            capacity: 1,
            ..Default::default()
        };
        let full = b.subscribe("blood-test", tiny).unwrap();
        let roomy = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        b.publish("blood-test", "m1".into()).unwrap();
        // full's queue is at capacity → next publish must fail and NOT
        // enqueue for roomy either.
        assert!(b.publish("blood-test", "m2".into()).is_err());
        assert_eq!(roomy.backlog().unwrap(), 1);
        assert_eq!(full.backlog().unwrap(), 1);
    }

    #[test]
    fn drop_oldest_overflow_keeps_newest() {
        let b = broker();
        let cfg = SubscriptionConfig {
            capacity: 2,
            overflow: OverflowPolicy::DropOldest,
            ..Default::default()
        };
        let s = b.subscribe("blood-test", cfg).unwrap();
        for i in 0..4 {
            b.publish("blood-test", format!("m{i}")).unwrap();
        }
        assert_eq!(s.drain().unwrap(), vec!["m2", "m3"]);
        assert_eq!(s.stats().unwrap().dropped, 2);
    }

    #[test]
    fn unsubscribe_stops_fanout() {
        let b = broker();
        let s = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        assert_eq!(b.subscriber_count("blood-test"), 1);
        s.unsubscribe().unwrap();
        assert_eq!(b.subscriber_count("blood-test"), 0);
        assert_eq!(b.publish("blood-test", "m".into()).unwrap(), 0);
    }

    #[test]
    fn operations_on_dead_handle_fail() {
        let b = broker();
        let s = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        let dup = s.clone();
        s.unsubscribe().unwrap();
        assert!(dup.poll().is_err());
        assert!(dup.stats().is_err());
    }

    #[test]
    fn poll_wait_times_out_empty() {
        let b = broker();
        let s = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        let start = std::time::Instant::now();
        let out = s.poll_wait(Duration::from_millis(30)).unwrap();
        assert!(out.is_none());
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn poll_wait_wakes_on_publish_from_thread() {
        let b = broker();
        let s = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        let publisher = b.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            publisher.publish("blood-test", "wake".into()).unwrap();
        });
        let d = s.poll_wait(Duration::from_secs(5)).unwrap().unwrap();
        assert_eq!(d.message, "wake");
        t.join().unwrap();
    }

    #[test]
    fn concurrent_publishers_and_consumers() {
        let b = broker();
        let s = b
            .subscribe(
                "blood-test",
                SubscriptionConfig {
                    capacity: 100_000,
                    ..Default::default()
                },
            )
            .unwrap();
        let mut handles = Vec::new();
        for t in 0..4 {
            let publisher = b.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    publisher
                        .publish("blood-test", format!("t{t}-m{i}"))
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let all = s.drain().unwrap();
        assert_eq!(all.len(), 1000);
        assert_eq!(b.stats().published, 1000);
        assert_eq!(s.stats().unwrap().acked, 1000);
    }

    #[test]
    fn telemetry_tracks_lifecycle() {
        let registry = MetricsRegistry::new();
        let b: Broker<String> = Broker::with_telemetry(&registry);
        b.create_topic("t");
        let s1 = b.subscribe("t", SubscriptionConfig::default()).unwrap();
        let s2 = b.subscribe("t", SubscriptionConfig::default()).unwrap();
        for i in 0..3 {
            b.publish("t", format!("m{i}")).unwrap();
        }
        assert_eq!(registry.snapshot().gauge("bus.queue_depth"), 6);

        // Deliver and ack everything on s1; s2 keeps its backlog.
        while let Some(d) = s1.poll().unwrap() {
            s1.ack(d.delivery_id).unwrap();
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("bus.published"), 3);
        assert_eq!(snap.counter("bus.fanned_out"), 6);
        assert_eq!(snap.gauge("bus.queue_depth"), 3);
        assert_eq!(snap.histogram("bus.publish").unwrap().count, 3);
        assert_eq!(snap.histogram("bus.deliver").unwrap().count, 3);
        assert_eq!(snap.histogram("bus.ack").unwrap().count, 3);

        // A nack re-queues (depth up), dropping the sub clears it.
        let d = s2.poll().unwrap().unwrap();
        s2.nack(d.delivery_id).unwrap();
        assert_eq!(registry.snapshot().gauge("bus.queue_depth"), 3);
        s2.unsubscribe().unwrap();
        assert_eq!(registry.snapshot().gauge("bus.queue_depth"), 0);
    }

    #[test]
    fn traced_publish_produces_route_and_deliver_spans() {
        use css_trace::Tracer;
        use css_types::Timestamp;

        let b = broker();
        let s = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        let tracer = Tracer::new(64);
        let root = tracer.root("publish", Timestamp(7));
        let ctx = root.context();
        b.publish_traced("blood-test", "m".into(), Some(&ctx))
            .unwrap();
        root.finish();

        let d = s.poll().unwrap().unwrap();
        assert_eq!(d.trace, ctx.trace_id());
        s.ack(d.delivery_id).unwrap();

        let spans = tracer.finished_spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        assert!(names.contains(&"bus.route"), "{names:?}");
        assert!(names.contains(&"bus.deliver"), "{names:?}");
        let route = spans.iter().find(|s| s.name == "bus.route").unwrap();
        let deliver = spans.iter().find(|s| s.name == "bus.deliver").unwrap();
        assert_eq!(deliver.parent, Some(route.id));
        assert!(spans.iter().all(|s| Some(s.trace) == ctx.trace_id()));
    }

    #[test]
    fn untraced_publish_leaves_delivery_trace_empty() {
        let b = broker();
        let s = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        b.publish("blood-test", "m".into()).unwrap();
        let d = s.poll().unwrap().unwrap();
        assert_eq!(d.trace, None);
    }

    #[test]
    fn uninstrumented_broker_records_nothing() {
        let b = broker();
        let s = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        b.publish("blood-test", "m".into()).unwrap();
        let d = s.poll().unwrap().unwrap();
        s.ack(d.delivery_id).unwrap();
        // No registry was attached; nothing to assert beyond "works".
        assert_eq!(b.stats().published, 1);
    }

    #[test]
    fn create_topic_idempotent() {
        let b = broker();
        b.create_topic("blood-test");
        let s = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        b.publish("blood-test", "still there".into()).unwrap();
        assert_eq!(s.drain().unwrap().len(), 1);
        assert_eq!(b.topics(), vec!["blood-test"]);
    }
}

#[cfg(test)]
mod race_tests {
    use super::*;

    #[test]
    fn poll_wait_errors_after_concurrent_unsubscribe() {
        let b: Broker<String> = Broker::new();
        b.create_topic("t");
        let s = b.subscribe("t", SubscriptionConfig::default()).unwrap();
        let waiter = s.clone();
        let t = std::thread::spawn(move || waiter.poll_wait(Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(30));
        s.unsubscribe().unwrap();
        // The waiter must terminate promptly with an error, not block
        // for the full timeout. Publishing wakes the condvar so the
        // waiter re-checks and notices the subscription is gone.
        b.publish("t", "wake".into()).unwrap();
        let result = t.join().unwrap();
        assert!(result.is_err());
    }

    #[test]
    fn nack_of_foreign_delivery_id_rejected() {
        let b: Broker<u32> = Broker::new();
        b.create_topic("t");
        let s1 = b.subscribe("t", SubscriptionConfig::default()).unwrap();
        let s2 = b.subscribe("t", SubscriptionConfig::default()).unwrap();
        b.publish("t", 1).unwrap();
        let d1 = s1.poll().unwrap().unwrap();
        // s2 cannot ack or nack s1's delivery.
        assert!(s2.ack(d1.delivery_id).is_err());
        assert!(s2.nack(d1.delivery_id).is_err());
        s1.ack(d1.delivery_id).unwrap();
    }
}
