//! The in-memory [`BusDriver`]: topics, delivery groups, queues, the
//! acknowledgement protocol, publish dedup, visibility timeouts,
//! bounded redelivery with backoff, and replay from a retained log.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use css_telemetry::{Counter, Gauge, Histogram, MetricsRegistry};
use css_trace::{SpanGuard, SpanStatus, TraceContext, TraceId};
use css_types::{CssError, CssResult, SubscriptionId};

use crate::driver::{BusDriver, PublishOptions, PublishOutcome};
use crate::stats::{BrokerStats, SubscriptionStats};
use crate::subscription::{DeadLetter, Delivery, SubscriberHandle};

/// Publish dedup keys remembered per topic before the oldest is forgotten.
const DEDUP_WINDOW: usize = 4096;

/// Cap on the redelivery backoff exponent (base × 2^10 at most).
const MAX_BACKOFF_EXP: u32 = 10;

/// Cached telemetry handles for the broker hot paths (resolved once at
/// construction; recording is lock-free).
struct BusInstruments {
    /// `bus.publish` — duration of each publish call.
    publish_latency: Histogram,
    /// `bus.deliver` — enqueue-to-delivery latency per message.
    deliver_latency: Histogram,
    /// `bus.ack` — delivery-to-acknowledgement latency per message.
    ack_latency: Histogram,
    /// `bus.published` — successful publish calls.
    published: Counter,
    /// `bus.fanned_out` — per-group enqueues.
    fanned_out: Counter,
    /// `bus.redelivered` — deliveries that were retries (attempt > 1).
    redelivered: Counter,
    /// `bus.dedup_dropped` — publishes dropped by the dedup window.
    dedup_dropped: Counter,
    /// `bus.queue_depth` — messages currently queued (all groups).
    queue_depth: Gauge,
    /// `bus.inflight` — deliveries awaiting ack/nack (all groups).
    inflight: Gauge,
}

impl BusInstruments {
    fn resolve(registry: &MetricsRegistry) -> Self {
        BusInstruments {
            publish_latency: registry.histogram("bus.publish"),
            deliver_latency: registry.histogram("bus.deliver"),
            ack_latency: registry.histogram("bus.ack"),
            published: registry.counter("bus.published"),
            fanned_out: registry.counter("bus.fanned_out"),
            redelivered: registry.counter("bus.redelivered"),
            dedup_dropped: registry.counter("bus.dedup_dropped"),
            queue_depth: registry.gauge("bus.queue_depth"),
            inflight: registry.gauge("bus.inflight"),
        }
    }
}

/// What to do when a group's queue is full at publish time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Fail the publish with a bus error (back-pressure to producers).
    Reject,
    /// Drop the oldest queued message to make room (monitoring-grade
    /// delivery: newest data wins).
    DropOldest,
}

/// Per-group configuration, fixed by the first member to attach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscriptionConfig {
    /// Maximum queued (undelivered) messages.
    pub capacity: usize,
    /// Delivery attempts before a message is dead-lettered.
    pub max_attempts: u32,
    /// Overflow behaviour.
    pub overflow: OverflowPolicy,
    /// How long a delivery may stay unacknowledged before it returns to
    /// the queue for another member. `None` = held until ack/nack.
    pub visibility_timeout: Option<Duration>,
    /// Base delay before a nacked message becomes deliverable again,
    /// doubling per failed attempt (capped). Zero = immediate.
    pub redelivery_backoff: Duration,
    /// Messages retained per group for [`SubscriberHandle::replay_from`].
    /// Zero disables replay.
    pub retain: usize,
}

impl Default for SubscriptionConfig {
    fn default() -> Self {
        SubscriptionConfig {
            capacity: 1024,
            max_attempts: 3,
            overflow: OverflowPolicy::Reject,
            visibility_timeout: None,
            redelivery_backoff: Duration::ZERO,
            retain: 0,
        }
    }
}

/// A message waiting in a group queue.
struct Pending<M> {
    message: M,
    attempts: u32,
    /// When queued this timestamps the enqueue; once in flight it is
    /// re-stamped at delivery, so ack latency measures from delivery.
    since: Instant,
    /// Group-local offset assigned at first enqueue; stable across
    /// redeliveries and replay.
    offset: u64,
    /// Earliest instant the message may be delivered (redelivery
    /// backoff). `None` = deliverable now.
    not_before: Option<Instant>,
    /// The trace of the publish that enqueued this message, if traced.
    trace: Option<TraceId>,
    /// Routing context kept so redelivery hops can open `bus.redeliver`
    /// spans under the *original* trace.
    ctx: Option<TraceContext>,
    /// Open `bus.deliver` (or `bus.redeliver`) span covering
    /// queue-to-delivery; finished at poll, or on drop if never polled.
    deliver_span: Option<SpanGuard>,
}

/// A delivery handed to a member, not yet acknowledged.
struct InFlight<M> {
    pending: Pending<M>,
    /// The member holding the delivery; only it may ack/nack.
    holder: SubscriptionId,
    /// When the visibility timeout expires, if one is configured.
    expires: Option<Instant>,
}

/// A message kept for replay after retirement.
struct Retained<M> {
    offset: u64,
    message: M,
    trace: Option<TraceId>,
}

type GroupId = u64;

/// One delivery group: a queue plus the members competing over it.
struct GroupState<M> {
    topic: String,
    /// Group name; `None` for a private (fan-out) group.
    name: Option<String>,
    config: SubscriptionConfig,
    members: Vec<SubscriptionId>,
    queue: VecDeque<Pending<M>>,
    in_flight: HashMap<u64, InFlight<M>>,
    /// Retained log for replay (bounded by `config.retain`).
    log: VecDeque<Retained<M>>,
    next_offset: u64,
    stats: SubscriptionStats,
}

struct TopicState {
    groups: Vec<GroupId>,
    /// Publish dedup window: keys seen recently, with eviction order.
    dedup_recent: HashSet<String>,
    dedup_order: VecDeque<String>,
}

impl TopicState {
    fn new() -> Self {
        TopicState {
            groups: Vec::new(),
            dedup_recent: HashSet::new(),
            dedup_order: VecDeque::new(),
        }
    }
}

struct State<M> {
    topics: HashMap<String, TopicState>,
    groups: HashMap<GroupId, GroupState<M>>,
    /// (topic, group name) → group, for named-group joins.
    named: HashMap<(String, String), GroupId>,
    /// Member subscription → its group.
    members: HashMap<SubscriptionId, GroupId>,
    dlq: Vec<DeadLetter<M>>,
    stats: BrokerStats,
    next_group: u64,
    next_sub: u64,
    next_delivery: u64,
}

pub(crate) struct Inner<M> {
    state: Mutex<State<M>>,
    arrivals: Condvar,
    telemetry: Option<BusInstruments>,
}

/// The in-memory publish/subscribe broker over named topics.
///
/// Cheaply cloneable; clones share the same broker state. This is the
/// default [`BusDriver`] — the platform talks to it through
/// [`crate::Bus`], and its inherent methods mirror the trait for tests
/// and callers that hold the concrete type.
pub struct Broker<M: Clone + Send + 'static> {
    inner: Arc<Inner<M>>,
}

impl<M: Clone + Send + 'static> Clone for Broker<M> {
    fn clone(&self) -> Self {
        Broker {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<M: Clone + Send + 'static> Default for Broker<M> {
    fn default() -> Self {
        Self::new()
    }
}

fn unknown_sub(id: SubscriptionId) -> CssError {
    CssError::Bus(format!("unknown subscription {id}"))
}

impl<M: Clone + Send + 'static> Broker<M> {
    /// A broker with no topics.
    pub fn new() -> Self {
        Self::build(None)
    }

    /// A broker recording latency histograms, throughput counters and
    /// depth gauges into `registry` under `bus.*` names.
    pub fn with_telemetry(registry: &MetricsRegistry) -> Self {
        Self::build(Some(BusInstruments::resolve(registry)))
    }

    fn build(telemetry: Option<BusInstruments>) -> Self {
        Broker {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    topics: HashMap::new(),
                    groups: HashMap::new(),
                    named: HashMap::new(),
                    members: HashMap::new(),
                    dlq: Vec::new(),
                    stats: BrokerStats::default(),
                    next_group: 1,
                    next_sub: 1,
                    next_delivery: 1,
                }),
                arrivals: Condvar::new(),
                telemetry,
            }),
        }
    }

    fn as_driver(&self) -> Arc<dyn BusDriver<M>> {
        Arc::new(self.clone())
    }

    /// Declare a topic. Idempotent.
    pub fn create_topic(&self, name: impl Into<String>) {
        let mut st = self.inner.state.lock();
        st.topics.entry(name.into()).or_insert_with(TopicState::new);
    }

    /// Whether the topic exists.
    pub fn has_topic(&self, name: &str) -> bool {
        self.inner.state.lock().topics.contains_key(name)
    }

    /// All declared topics, sorted.
    pub fn topics(&self) -> Vec<String> {
        let st = self.inner.state.lock();
        let mut out: Vec<String> = st.topics.keys().cloned().collect();
        out.sort();
        out
    }

    /// Subscribe to a topic in a private delivery group (fan-out).
    pub fn subscribe(
        &self,
        topic: &str,
        config: SubscriptionConfig,
    ) -> CssResult<SubscriberHandle<M>> {
        let id = self.inner.attach(topic, None, config)?;
        Ok(SubscriberHandle::new(self.as_driver(), id))
    }

    /// Join the named competing-consumer group on `topic`: members
    /// share one queue and each message is delivered to exactly one of
    /// them.
    pub fn subscribe_group(
        &self,
        topic: &str,
        group: &str,
        config: SubscriptionConfig,
    ) -> CssResult<SubscriberHandle<M>> {
        let id = self.inner.attach(topic, Some(group), config)?;
        Ok(SubscriberHandle::new(self.as_driver(), id))
    }

    /// Publish a message to every delivery group of `topic`.
    ///
    /// Returns the number of groups the message was enqueued for. With
    /// [`OverflowPolicy::Reject`], a single full queue fails the whole
    /// publish *before* any enqueue (all-or-nothing), so producers see
    /// consistent back-pressure.
    pub fn publish(&self, topic: &str, message: M) -> CssResult<usize> {
        self.inner
            .publish_opts(topic, message, PublishOptions::new())
            .map(|o| o.routed())
    }

    /// Publish with full options (dedup key, trace).
    pub fn publish_opts(
        &self,
        topic: &str,
        message: M,
        opts: PublishOptions<'_>,
    ) -> CssResult<PublishOutcome> {
        self.inner.publish_opts(topic, message, opts)
    }

    /// [`Broker::publish`], continuing the caller's trace.
    #[deprecated(note = "use publish_opts with PublishOptions::traced")]
    pub fn publish_traced(
        &self,
        topic: &str,
        message: M,
        ctx: Option<&TraceContext>,
    ) -> CssResult<usize> {
        self.inner
            .publish_opts(topic, message, PublishOptions::new().traced_opt(ctx))
            .map(|o| o.routed())
    }

    /// Broker-wide statistics.
    pub fn stats(&self) -> BrokerStats {
        self.inner.state.lock().stats
    }

    /// Snapshot of the dead-letter queue.
    pub fn dead_letters(&self) -> Vec<DeadLetter<M>> {
        self.inner.state.lock().dlq.clone()
    }

    /// Active member subscriptions across all groups of a topic.
    pub fn subscriber_count(&self, topic: &str) -> usize {
        let st = self.inner.state.lock();
        let Some(topic) = st.topics.get(topic) else {
            return 0;
        };
        topic
            .groups
            .iter()
            .filter_map(|gid| st.groups.get(gid))
            .map(|g| g.members.len())
            .sum()
    }

    /// Delivery groups on a topic (private and named).
    pub fn group_count(&self, topic: &str) -> usize {
        let st = self.inner.state.lock();
        st.topics.get(topic).map(|t| t.groups.len()).unwrap_or(0)
    }

    /// Force a visibility-timeout sweep across all groups.
    pub fn sweep(&self) -> usize {
        self.inner.sweep_all()
    }
}

/// The driver contract, implemented by delegation to the same
/// internals the inherent methods use.
impl<M: Clone + Send + 'static> BusDriver<M> for Broker<M> {
    fn create_topic(&self, name: &str) {
        Broker::create_topic(self, name);
    }

    fn has_topic(&self, name: &str) -> bool {
        Broker::has_topic(self, name)
    }

    fn topics(&self) -> Vec<String> {
        Broker::topics(self)
    }

    fn attach(
        &self,
        topic: &str,
        group: Option<&str>,
        config: SubscriptionConfig,
    ) -> CssResult<SubscriptionId> {
        self.inner.attach(topic, group, config)
    }

    fn detach(&self, id: SubscriptionId) -> CssResult<()> {
        self.inner.detach(id)
    }

    fn publish_opts(
        &self,
        topic: &str,
        message: M,
        opts: PublishOptions<'_>,
    ) -> CssResult<PublishOutcome> {
        self.inner.publish_opts(topic, message, opts)
    }

    fn poll(&self, id: SubscriptionId) -> CssResult<Option<Delivery<M>>> {
        self.inner.poll(id)
    }

    fn poll_wait(&self, id: SubscriptionId, timeout: Duration) -> CssResult<Option<Delivery<M>>> {
        self.inner.poll_wait(id, timeout)
    }

    fn ack(&self, id: SubscriptionId, delivery_id: u64) -> CssResult<()> {
        self.inner.ack(id, delivery_id)
    }

    fn nack(&self, id: SubscriptionId, delivery_id: u64) -> CssResult<()> {
        self.inner.nack(id, delivery_id)
    }

    fn backlog(&self, id: SubscriptionId) -> CssResult<usize> {
        self.inner.with_member(id, |_st, g| Ok(g.queue.len()))
    }

    fn in_flight(&self, id: SubscriptionId) -> CssResult<usize> {
        self.inner.with_member(id, |_st, g| Ok(g.in_flight.len()))
    }

    fn sub_stats(&self, id: SubscriptionId) -> CssResult<SubscriptionStats> {
        self.inner.with_member(id, |_st, g| Ok(g.stats))
    }

    fn replay_from(&self, id: SubscriptionId, offset: u64) -> CssResult<usize> {
        self.inner.replay_from(id, offset)
    }

    fn sweep(&self) -> usize {
        self.inner.sweep_all()
    }

    fn stats(&self) -> BrokerStats {
        Broker::stats(self)
    }

    fn dead_letters(&self) -> Vec<DeadLetter<M>> {
        Broker::dead_letters(self)
    }

    fn subscriber_count(&self, topic: &str) -> usize {
        Broker::subscriber_count(self, topic)
    }
}

impl<M: Clone + Send + 'static> Inner<M> {
    fn attach(
        &self,
        topic: &str,
        group: Option<&str>,
        config: SubscriptionConfig,
    ) -> CssResult<SubscriptionId> {
        let mut st = self.state.lock();
        if !st.topics.contains_key(topic) {
            return Err(CssError::Bus(format!("no such topic {topic:?}")));
        }
        let id = SubscriptionId(st.next_sub);
        st.next_sub += 1;
        let gid = match group {
            Some(name) => {
                let key = (topic.to_string(), name.to_string());
                match st.named.get(&key) {
                    Some(gid) => *gid,
                    None => {
                        let gid = new_group(&mut st, topic, Some(name.to_string()), config);
                        st.named.insert(key, gid);
                        gid
                    }
                }
            }
            None => new_group(&mut st, topic, None, config),
        };
        if let Some(g) = st.groups.get_mut(&gid) {
            g.members.push(id);
        }
        st.members.insert(id, gid);
        Ok(id)
    }

    fn detach(&self, id: SubscriptionId) -> CssResult<()> {
        let mut st = self.state.lock();
        let gid = st.members.remove(&id).ok_or_else(|| unknown_sub(id))?;
        let Some(mut group) = st.groups.remove(&gid) else {
            return Err(unknown_sub(id));
        };
        group.members.retain(|m| *m != id);
        if group.members.is_empty() {
            // Last member out: drop the whole group.
            if let Some(t) = &self.telemetry {
                t.queue_depth.sub(group.queue.len() as i64);
                t.inflight.sub(group.in_flight.len() as i64);
            }
            if let Some(topic) = st.topics.get_mut(&group.topic) {
                topic.groups.retain(|g| *g != gid);
            }
            if let Some(name) = &group.name {
                st.named.remove(&(group.topic.clone(), name.clone()));
            }
        } else {
            // Return the leaver's in-flight deliveries to the peers.
            let held: Vec<u64> = group
                .in_flight
                .iter()
                .filter(|(_, f)| f.holder == id)
                .map(|(d, _)| *d)
                .collect();
            for delivery_id in held {
                if let Some(mut f) = group.in_flight.remove(&delivery_id) {
                    f.pending.deliver_span = redeliver_span(&f.pending);
                    f.pending.not_before = None;
                    group.queue.push_front(f.pending);
                    if let Some(t) = &self.telemetry {
                        t.inflight.dec();
                        t.queue_depth.inc();
                    }
                }
            }
            st.groups.insert(gid, group);
        }
        drop(st);
        // Wake any member blocked in poll_wait so it re-checks state.
        self.arrivals.notify_all();
        Ok(())
    }

    fn publish_opts(
        &self,
        topic: &str,
        message: M,
        opts: PublishOptions<'_>,
    ) -> CssResult<PublishOutcome> {
        let started = Instant::now();
        let mut route = TraceContext::child_opt(opts.trace, "bus.route");
        let mut st = self.state.lock();
        let Some(topic_state) = st.topics.get(topic) else {
            st.stats.rejected += 1;
            route.set_status(SpanStatus::Error);
            return Err(CssError::Bus(format!("no such topic {topic:?}")));
        };
        // Dedup first: a duplicate is dropped regardless of queue state.
        if let Some(key) = opts.dedup_key {
            if topic_state.dedup_recent.contains(key) {
                st.stats.dedup_dropped += 1;
                drop(st);
                route.finish();
                if let Some(t) = &self.telemetry {
                    t.dedup_dropped.inc();
                }
                return Ok(PublishOutcome::DuplicateDropped);
            }
        }
        let group_ids = topic_state.groups.clone();
        // Pre-flight: with Reject overflow, check all queues first.
        let overflowing = group_ids.iter().find_map(|gid| {
            let g = st.groups.get(gid)?;
            (g.config.overflow == OverflowPolicy::Reject && g.queue.len() >= g.config.capacity)
                .then_some((*gid, g.config.capacity))
        });
        if let Some((gid, capacity)) = overflowing {
            st.stats.rejected += 1;
            route.set_status(SpanStatus::Error);
            // The key was NOT recorded, so a retry after back-pressure
            // clears is not treated as a duplicate.
            return Err(CssError::Bus(format!(
                "delivery group {gid} queue full ({capacity} messages)"
            )));
        }
        if let Some(key) = opts.dedup_key {
            if let Some(topic_state) = st.topics.get_mut(topic) {
                topic_state.dedup_recent.insert(key.to_string());
                topic_state.dedup_order.push_back(key.to_string());
                while topic_state.dedup_order.len() > DEDUP_WINDOW {
                    if let Some(old) = topic_state.dedup_order.pop_front() {
                        topic_state.dedup_recent.remove(&old);
                    }
                }
            }
        }
        let route_ctx = route.context();
        let keep_ctx = route_ctx.trace_id().is_some();
        let mut fanout = 0usize;
        let mut dropped = 0i64;
        for gid in &group_ids {
            // The topic list and the group map are kept in sync; a
            // missing entry means the group raced away — skip.
            let Some(g) = st.groups.get_mut(gid) else {
                continue;
            };
            if g.queue.len() >= g.config.capacity {
                // Only reachable under DropOldest.
                g.queue.pop_front();
                g.stats.dropped += 1;
                dropped += 1;
            }
            let offset = g.next_offset;
            g.next_offset += 1;
            if g.config.retain > 0 {
                g.log.push_back(Retained {
                    offset,
                    message: message.clone(),
                    trace: route_ctx.trace_id(),
                });
                while g.log.len() > g.config.retain {
                    g.log.pop_front();
                }
            }
            g.queue.push_back(Pending {
                message: message.clone(),
                attempts: 0,
                since: started,
                offset,
                not_before: None,
                trace: route_ctx.trace_id(),
                ctx: keep_ctx.then(|| route_ctx.clone()),
                deliver_span: keep_ctx.then(|| route_ctx.child("bus.deliver")),
            });
            g.stats.enqueued += 1;
            fanout += 1;
        }
        st.stats.published += 1;
        st.stats.fanned_out += fanout as u64;
        drop(st);
        route.finish();
        if let Some(t) = &self.telemetry {
            t.published.inc();
            t.fanned_out.add(fanout as u64);
            t.queue_depth.add(fanout as i64 - dropped);
            t.publish_latency.record_duration(started.elapsed());
        }
        self.arrivals.notify_all();
        Ok(PublishOutcome::Routed(fanout))
    }

    /// Run `f` with the member's group temporarily removed from the
    /// map, so the closure can touch both group and broker state.
    fn with_member<R>(
        &self,
        id: SubscriptionId,
        f: impl FnOnce(&mut State<M>, &mut GroupState<M>) -> CssResult<R>,
    ) -> CssResult<R> {
        let mut st = self.state.lock();
        let Some(&gid) = st.members.get(&id) else {
            return Err(unknown_sub(id));
        };
        let Some(mut group) = st.groups.remove(&gid) else {
            return Err(unknown_sub(id));
        };
        let out = f(&mut st, &mut group);
        st.groups.insert(gid, group);
        out
    }

    /// Requeue or dead-letter every expired in-flight delivery of one
    /// group. Returns how many moved.
    fn sweep_group(&self, st: &mut State<M>, group: &mut GroupState<M>, now: Instant) -> usize {
        let expired: Vec<u64> = group
            .in_flight
            .iter()
            .filter(|(_, f)| f.expires.is_some_and(|e| e <= now))
            .map(|(d, _)| *d)
            .collect();
        let mut moved = 0usize;
        for delivery_id in expired {
            let Some(f) = group.in_flight.remove(&delivery_id) else {
                continue;
            };
            group.stats.timed_out += 1;
            if let Some(t) = &self.telemetry {
                t.inflight.dec();
            }
            self.retire_or_requeue(st, group, f.holder, f.pending, None);
            moved += 1;
        }
        moved
    }

    /// A message leaving in-flight without an ack: back to the queue
    /// for another attempt, or to the dead-letter queue when the
    /// attempt budget is spent.
    fn retire_or_requeue(
        &self,
        st: &mut State<M>,
        group: &mut GroupState<M>,
        holder: SubscriptionId,
        mut pending: Pending<M>,
        not_before: Option<Instant>,
    ) {
        if pending.attempts >= group.config.max_attempts {
            group.stats.dead_lettered += 1;
            st.dlq.push(DeadLetter {
                subscription: holder,
                topic: group.topic.clone(),
                group: group.name.clone(),
                attempts: pending.attempts,
                trace: pending.trace,
                message: pending.message,
            });
        } else {
            pending.deliver_span = redeliver_span(&pending);
            pending.not_before = not_before;
            group.queue.push_front(pending);
            if let Some(t) = &self.telemetry {
                t.queue_depth.inc();
            }
        }
    }

    pub(crate) fn poll(&self, id: SubscriptionId) -> CssResult<Option<Delivery<M>>> {
        let now = Instant::now();
        self.with_member(id, |st, group| {
            self.sweep_group(st, group, now);
            // First queued message past its backoff; later entries may
            // be ready while a freshly-nacked head still backs off.
            let ready = group
                .queue
                .iter()
                .position(|p| p.not_before.is_none_or(|t| t <= now));
            let Some(idx) = ready else {
                return Ok(None);
            };
            let Some(mut pending) = group.queue.remove(idx) else {
                return Ok(None);
            };
            pending.attempts += 1;
            let delivery_id = st.next_delivery;
            st.next_delivery += 1;
            if let Some(span) = pending.deliver_span.take() {
                span.finish();
            }
            let delivery = Delivery {
                delivery_id,
                attempt: pending.attempts,
                offset: pending.offset,
                trace: pending.trace,
                message: pending.message.clone(),
            };
            if pending.attempts > 1 {
                group.stats.redelivered += 1;
                if let Some(t) = &self.telemetry {
                    t.redelivered.inc();
                }
            }
            group.stats.delivered += 1;
            if let Some(t) = &self.telemetry {
                t.deliver_latency
                    .record_duration(now.saturating_duration_since(pending.since));
                t.queue_depth.dec();
                t.inflight.inc();
            }
            // Re-stamp: from here `since` means "delivered at".
            pending.since = now;
            let expires = group.config.visibility_timeout.map(|d| now + d);
            group.in_flight.insert(
                delivery_id,
                InFlight {
                    pending,
                    holder: id,
                    expires,
                },
            );
            Ok(Some(delivery))
        })
    }

    pub(crate) fn poll_wait(
        &self,
        id: SubscriptionId,
        timeout: Duration,
    ) -> CssResult<Option<Delivery<M>>> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(d) = self.poll(id)? {
                return Ok(Some(d));
            }
            let mut st = self.state.lock();
            let Some(&gid) = st.members.get(&id) else {
                return Err(unknown_sub(id));
            };
            // Re-check readiness under the lock to avoid a lost wakeup,
            // and find the earliest backoff/visibility deadline so the
            // wait wakes when a message becomes redeliverable.
            let now = Instant::now();
            let mut ready = false;
            let mut next_event: Option<Instant> = None;
            if let Some(group) = st.groups.get(&gid) {
                for p in &group.queue {
                    match p.not_before {
                        None => ready = true,
                        Some(t) if t <= now => ready = true,
                        Some(t) => next_event = Some(next_event.map_or(t, |n| n.min(t))),
                    }
                }
                for f in group.in_flight.values() {
                    if let Some(t) = f.expires {
                        if t <= now {
                            ready = true;
                        } else {
                            next_event = Some(next_event.map_or(t, |n| n.min(t)));
                        }
                    }
                }
            }
            if ready {
                continue;
            }
            let target = next_event.map_or(deadline, |n| n.min(deadline));
            let timed_out = self.arrivals.wait_until(&mut st, target).timed_out();
            drop(st);
            if timed_out && Instant::now() >= deadline {
                return self.poll(id);
            }
        }
    }

    pub(crate) fn ack(&self, id: SubscriptionId, delivery_id: u64) -> CssResult<()> {
        self.with_member(id, |_st, group| {
            match group.in_flight.get(&delivery_id) {
                Some(f) if f.holder == id => {}
                Some(_) => {
                    return Err(CssError::Bus(format!(
                        "delivery {delivery_id} is held by another group member"
                    )))
                }
                None => {
                    return Err(CssError::Bus(format!(
                        "no in-flight delivery {delivery_id}"
                    )))
                }
            }
            let Some(f) = group.in_flight.remove(&delivery_id) else {
                return Err(CssError::Bus(format!(
                    "no in-flight delivery {delivery_id}"
                )));
            };
            group.stats.acked += 1;
            if let Some(t) = &self.telemetry {
                t.ack_latency.record_duration(f.pending.since.elapsed());
                t.inflight.dec();
            }
            Ok(())
        })?;
        Ok(())
    }

    pub(crate) fn nack(&self, id: SubscriptionId, delivery_id: u64) -> CssResult<()> {
        let now = Instant::now();
        self.with_member(id, |st, group| {
            match group.in_flight.get(&delivery_id) {
                Some(f) if f.holder == id => {}
                Some(_) => {
                    return Err(CssError::Bus(format!(
                        "delivery {delivery_id} is held by another group member"
                    )))
                }
                None => {
                    return Err(CssError::Bus(format!(
                        "no in-flight delivery {delivery_id}"
                    )))
                }
            }
            let Some(f) = group.in_flight.remove(&delivery_id) else {
                return Err(CssError::Bus(format!(
                    "no in-flight delivery {delivery_id}"
                )));
            };
            if let Some(t) = &self.telemetry {
                t.inflight.dec();
            }
            let not_before = backoff_until(&group.config, f.pending.attempts, now);
            self.retire_or_requeue(st, group, id, f.pending, not_before);
            Ok(())
        })?;
        self.arrivals.notify_all();
        Ok(())
    }

    fn replay_from(&self, id: SubscriptionId, offset: u64) -> CssResult<usize> {
        let now = Instant::now();
        let replayed = self.with_member(id, |_st, group| {
            if group.config.retain == 0 {
                return Err(CssError::Bus(
                    "replay requires a subscription with retain > 0".into(),
                ));
            }
            let mut n = 0usize;
            for r in group.log.iter().filter(|r| r.offset >= offset) {
                group.queue.push_back(Pending {
                    message: r.message.clone(),
                    attempts: 0,
                    since: now,
                    offset: r.offset,
                    not_before: None,
                    trace: r.trace,
                    ctx: None,
                    deliver_span: None,
                });
                n += 1;
            }
            group.stats.replayed += n as u64;
            if let Some(t) = &self.telemetry {
                t.queue_depth.add(n as i64);
            }
            Ok(n)
        })?;
        self.arrivals.notify_all();
        Ok(replayed)
    }

    fn sweep_all(&self) -> usize {
        let now = Instant::now();
        let mut st = self.state.lock();
        let gids: Vec<GroupId> = st.groups.keys().copied().collect();
        let mut moved = 0usize;
        for gid in gids {
            let Some(mut group) = st.groups.remove(&gid) else {
                continue;
            };
            moved += self.sweep_group(&mut st, &mut group, now);
            st.groups.insert(gid, group);
        }
        drop(st);
        if moved > 0 {
            self.arrivals.notify_all();
        }
        moved
    }
}

/// A `bus.redeliver` span under the message's original trace, opened
/// when a delivery returns to the queue; closes at the next poll so the
/// trace tree shows each redelivery hop and its queue time.
fn redeliver_span<M>(pending: &Pending<M>) -> Option<SpanGuard> {
    pending.ctx.as_ref().map(|c| c.child("bus.redeliver"))
}

/// Exponential redelivery backoff: base × 2^(attempts-1), capped.
fn backoff_until(config: &SubscriptionConfig, attempts: u32, now: Instant) -> Option<Instant> {
    if config.redelivery_backoff.is_zero() {
        return None;
    }
    let exp = attempts.saturating_sub(1).min(MAX_BACKOFF_EXP);
    Some(now + config.redelivery_backoff.saturating_mul(1u32 << exp))
}

fn new_group<M>(
    st: &mut State<M>,
    topic: &str,
    name: Option<String>,
    config: SubscriptionConfig,
) -> GroupId {
    let gid = st.next_group;
    st.next_group += 1;
    st.groups.insert(
        gid,
        GroupState {
            topic: topic.to_string(),
            name,
            config,
            members: Vec::new(),
            queue: VecDeque::new(),
            in_flight: HashMap::new(),
            log: VecDeque::new(),
            next_offset: 0,
            stats: SubscriptionStats::default(),
        },
    );
    if let Some(topic_state) = st.topics.get_mut(topic) {
        topic_state.groups.push(gid);
    }
    gid
}

#[cfg(test)]
mod tests {
    use super::*;

    fn broker() -> Broker<String> {
        let b = Broker::new();
        b.create_topic("blood-test");
        b
    }

    #[test]
    fn publish_without_topic_fails() {
        let b: Broker<String> = Broker::new();
        assert!(b.publish("nope", "m".into()).is_err());
        assert_eq!(b.stats().rejected, 1);
    }

    #[test]
    fn subscribe_unknown_topic_fails() {
        let b: Broker<String> = Broker::new();
        assert!(b.subscribe("nope", SubscriptionConfig::default()).is_err());
    }

    #[test]
    fn fan_out_to_all_subscribers() {
        let b = broker();
        let s1 = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        let s2 = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        let n = b.publish("blood-test", "hello".into()).unwrap();
        assert_eq!(n, 2);
        assert_eq!(s1.drain().unwrap(), vec!["hello"]);
        assert_eq!(s2.drain().unwrap(), vec!["hello"]);
        assert_eq!(b.stats().fanned_out, 2);
    }

    #[test]
    fn publish_with_no_subscribers_is_ok() {
        let b = broker();
        assert_eq!(b.publish("blood-test", "m".into()).unwrap(), 0);
    }

    #[test]
    fn fifo_order_preserved() {
        let b = broker();
        let s = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        for i in 0..5 {
            b.publish("blood-test", format!("m{i}")).unwrap();
        }
        assert_eq!(s.drain().unwrap(), vec!["m0", "m1", "m2", "m3", "m4"]);
    }

    #[test]
    fn unacked_message_stays_in_flight() {
        let b = broker();
        let s = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        b.publish("blood-test", "m".into()).unwrap();
        let d = s.poll().unwrap().unwrap();
        // Queue is drained but message not acked.
        assert!(s.poll().unwrap().is_none());
        assert_eq!(s.in_flight().unwrap(), 1);
        s.ack(d.delivery_id).unwrap();
        assert!(s.ack(d.delivery_id).is_err(), "double ack");
        assert_eq!(s.in_flight().unwrap(), 0);
    }

    #[test]
    fn nack_redelivers_at_front() {
        let b = broker();
        let s = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        b.publish("blood-test", "first".into()).unwrap();
        b.publish("blood-test", "second".into()).unwrap();
        let d = s.poll().unwrap().unwrap();
        assert_eq!(d.message, "first");
        s.nack(d.delivery_id).unwrap();
        let d2 = s.poll().unwrap().unwrap();
        assert_eq!(d2.message, "first");
        assert_eq!(d2.attempt, 2);
        assert_eq!(s.stats().unwrap().redelivered, 1);
    }

    #[test]
    fn exhausted_attempts_dead_letter() {
        let b = broker();
        let cfg = SubscriptionConfig {
            max_attempts: 2,
            ..Default::default()
        };
        let s = b.subscribe("blood-test", cfg).unwrap();
        b.publish("blood-test", "poison".into()).unwrap();
        for _ in 0..2 {
            let d = s.poll().unwrap().unwrap();
            s.nack(d.delivery_id).unwrap();
        }
        assert!(s.poll().unwrap().is_none());
        let dlq = b.dead_letters();
        assert_eq!(dlq.len(), 1);
        assert_eq!(dlq[0].message, "poison");
        assert_eq!(dlq[0].attempts, 2);
        assert_eq!(s.stats().unwrap().dead_lettered, 1);
    }

    #[test]
    fn reject_overflow_fails_publish_atomically() {
        let b = broker();
        let tiny = SubscriptionConfig {
            capacity: 1,
            ..Default::default()
        };
        let full = b.subscribe("blood-test", tiny).unwrap();
        let roomy = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        b.publish("blood-test", "m1".into()).unwrap();
        // full's queue is at capacity → next publish must fail and NOT
        // enqueue for roomy either.
        assert!(b.publish("blood-test", "m2".into()).is_err());
        assert_eq!(roomy.backlog().unwrap(), 1);
        assert_eq!(full.backlog().unwrap(), 1);
    }

    #[test]
    fn drop_oldest_overflow_keeps_newest() {
        let b = broker();
        let cfg = SubscriptionConfig {
            capacity: 2,
            overflow: OverflowPolicy::DropOldest,
            ..Default::default()
        };
        let s = b.subscribe("blood-test", cfg).unwrap();
        for i in 0..4 {
            b.publish("blood-test", format!("m{i}")).unwrap();
        }
        assert_eq!(s.drain().unwrap(), vec!["m2", "m3"]);
        assert_eq!(s.stats().unwrap().dropped, 2);
    }

    #[test]
    fn unsubscribe_stops_fanout() {
        let b = broker();
        let s = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        assert_eq!(b.subscriber_count("blood-test"), 1);
        s.unsubscribe().unwrap();
        assert_eq!(b.subscriber_count("blood-test"), 0);
        assert_eq!(b.publish("blood-test", "m".into()).unwrap(), 0);
    }

    #[test]
    fn operations_on_dead_handle_fail() {
        let b = broker();
        let s = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        let dup = s.clone();
        s.unsubscribe().unwrap();
        assert!(dup.poll().is_err());
        assert!(dup.stats().is_err());
    }

    #[test]
    fn poll_wait_times_out_empty() {
        let b = broker();
        let s = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        let start = std::time::Instant::now();
        let out = s.poll_wait(Duration::from_millis(30)).unwrap();
        assert!(out.is_none());
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn poll_wait_wakes_on_publish_from_thread() {
        let b = broker();
        let s = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        let publisher = b.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            publisher.publish("blood-test", "wake".into()).unwrap();
        });
        let d = s.poll_wait(Duration::from_secs(5)).unwrap().unwrap();
        assert_eq!(d.message, "wake");
        t.join().unwrap();
    }

    #[test]
    fn concurrent_publishers_and_consumers() {
        let b = broker();
        let s = b
            .subscribe(
                "blood-test",
                SubscriptionConfig {
                    capacity: 100_000,
                    ..Default::default()
                },
            )
            .unwrap();
        let mut handles = Vec::new();
        for t in 0..4 {
            let publisher = b.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    publisher
                        .publish("blood-test", format!("t{t}-m{i}"))
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let all = s.drain().unwrap();
        assert_eq!(all.len(), 1000);
        assert_eq!(b.stats().published, 1000);
        assert_eq!(s.stats().unwrap().acked, 1000);
    }

    #[test]
    fn telemetry_tracks_lifecycle() {
        let registry = MetricsRegistry::new();
        let b: Broker<String> = Broker::with_telemetry(&registry);
        b.create_topic("t");
        let s1 = b.subscribe("t", SubscriptionConfig::default()).unwrap();
        let s2 = b.subscribe("t", SubscriptionConfig::default()).unwrap();
        for i in 0..3 {
            b.publish("t", format!("m{i}")).unwrap();
        }
        assert_eq!(registry.snapshot().gauge("bus.queue_depth"), 6);

        // Deliver and ack everything on s1; s2 keeps its backlog.
        while let Some(d) = s1.poll().unwrap() {
            s1.ack(d.delivery_id).unwrap();
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("bus.published"), 3);
        assert_eq!(snap.counter("bus.fanned_out"), 6);
        assert_eq!(snap.gauge("bus.queue_depth"), 3);
        assert_eq!(snap.gauge("bus.inflight"), 0);
        assert_eq!(snap.histogram("bus.publish").unwrap().count, 3);
        assert_eq!(snap.histogram("bus.deliver").unwrap().count, 3);
        assert_eq!(snap.histogram("bus.ack").unwrap().count, 3);

        // A poll moves depth to in-flight; a nack moves it back.
        let d = s2.poll().unwrap().unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("bus.queue_depth"), 2);
        assert_eq!(snap.gauge("bus.inflight"), 1);
        s2.nack(d.delivery_id).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("bus.queue_depth"), 3);
        assert_eq!(snap.gauge("bus.inflight"), 0);
        s2.unsubscribe().unwrap();
        assert_eq!(registry.snapshot().gauge("bus.queue_depth"), 0);
    }

    #[test]
    fn traced_publish_produces_route_and_deliver_spans() {
        use css_trace::Tracer;
        use css_types::Timestamp;

        let b = broker();
        let s = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        let tracer = Tracer::new(64);
        let root = tracer.root("publish", Timestamp(7));
        let ctx = root.context();
        b.publish_opts("blood-test", "m".into(), PublishOptions::new().traced(&ctx))
            .unwrap();
        root.finish();

        let d = s.poll().unwrap().unwrap();
        assert_eq!(d.trace, ctx.trace_id());
        s.ack(d.delivery_id).unwrap();

        let spans = tracer.finished_spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        assert!(names.contains(&"bus.route"), "{names:?}");
        assert!(names.contains(&"bus.deliver"), "{names:?}");
        let route = spans.iter().find(|s| s.name == "bus.route").unwrap();
        let deliver = spans.iter().find(|s| s.name == "bus.deliver").unwrap();
        assert_eq!(deliver.parent, Some(route.id));
        assert!(spans.iter().all(|s| Some(s.trace) == ctx.trace_id()));
    }

    #[test]
    fn deprecated_publish_traced_still_delegates() {
        let b = broker();
        let s = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        #[allow(deprecated)]
        let n = b.publish_traced("blood-test", "m".into(), None).unwrap();
        assert_eq!(n, 1);
        assert_eq!(s.drain().unwrap(), vec!["m"]);
    }

    #[test]
    fn untraced_publish_leaves_delivery_trace_empty() {
        let b = broker();
        let s = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        b.publish("blood-test", "m".into()).unwrap();
        let d = s.poll().unwrap().unwrap();
        assert_eq!(d.trace, None);
    }

    #[test]
    fn uninstrumented_broker_records_nothing() {
        let b = broker();
        let s = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        b.publish("blood-test", "m".into()).unwrap();
        let d = s.poll().unwrap().unwrap();
        s.ack(d.delivery_id).unwrap();
        // No registry was attached; nothing to assert beyond "works".
        assert_eq!(b.stats().published, 1);
    }

    #[test]
    fn create_topic_idempotent() {
        let b = broker();
        b.create_topic("blood-test");
        let s = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        b.publish("blood-test", "still there".into()).unwrap();
        assert_eq!(s.drain().unwrap().len(), 1);
        assert_eq!(b.topics(), vec!["blood-test"]);
    }

    // ------------------------------------------------------------------
    // Delivery groups
    // ------------------------------------------------------------------

    #[test]
    fn group_members_share_one_queue() {
        let b = broker();
        let a = b
            .subscribe_group("blood-test", "workers", SubscriptionConfig::default())
            .unwrap();
        let c = b
            .subscribe_group("blood-test", "workers", SubscriptionConfig::default())
            .unwrap();
        assert_eq!(b.group_count("blood-test"), 1);
        assert_eq!(b.subscriber_count("blood-test"), 2);
        // One group → fan-out of 1 per publish.
        assert_eq!(b.publish("blood-test", "m0".into()).unwrap(), 1);
        assert_eq!(b.publish("blood-test", "m1".into()).unwrap(), 1);
        let da = a.poll().unwrap().unwrap();
        let dc = c.poll().unwrap().unwrap();
        assert_ne!(da.message, dc.message);
        assert!(a.poll().unwrap().is_none());
        assert!(c.poll().unwrap().is_none());
        a.ack(da.delivery_id).unwrap();
        c.ack(dc.delivery_id).unwrap();
        assert_eq!(a.stats().unwrap().acked, 2); // shared group stats
    }

    #[test]
    fn same_group_name_on_other_topic_is_distinct() {
        let b = broker();
        b.create_topic("other");
        let a = b
            .subscribe_group("blood-test", "workers", SubscriptionConfig::default())
            .unwrap();
        let c = b
            .subscribe_group("other", "workers", SubscriptionConfig::default())
            .unwrap();
        b.publish("blood-test", "m".into()).unwrap();
        assert_eq!(a.backlog().unwrap(), 1);
        assert_eq!(c.backlog().unwrap(), 0);
    }

    #[test]
    fn nacked_group_delivery_moves_to_another_member() {
        let b = broker();
        let a = b
            .subscribe_group("blood-test", "workers", SubscriptionConfig::default())
            .unwrap();
        let c = b
            .subscribe_group("blood-test", "workers", SubscriptionConfig::default())
            .unwrap();
        b.publish("blood-test", "job".into()).unwrap();
        let da = a.poll().unwrap().unwrap();
        assert_eq!(da.attempt, 1);
        a.nack(da.delivery_id).unwrap();
        let dc = c.poll().unwrap().unwrap();
        assert_eq!(dc.message, "job");
        assert_eq!(dc.attempt, 2);
        c.ack(dc.delivery_id).unwrap();
    }

    #[test]
    fn member_cannot_ack_anothers_delivery() {
        let b = broker();
        let a = b
            .subscribe_group("blood-test", "workers", SubscriptionConfig::default())
            .unwrap();
        let c = b
            .subscribe_group("blood-test", "workers", SubscriptionConfig::default())
            .unwrap();
        b.publish("blood-test", "job".into()).unwrap();
        let da = a.poll().unwrap().unwrap();
        assert!(c.ack(da.delivery_id).is_err());
        assert!(c.nack(da.delivery_id).is_err());
        a.ack(da.delivery_id).unwrap();
    }

    #[test]
    fn detaching_member_requeues_its_in_flight_for_peers() {
        let b = broker();
        let a = b
            .subscribe_group("blood-test", "workers", SubscriptionConfig::default())
            .unwrap();
        let c = b
            .subscribe_group("blood-test", "workers", SubscriptionConfig::default())
            .unwrap();
        b.publish("blood-test", "job".into()).unwrap();
        let da = a.poll().unwrap().unwrap();
        assert_eq!(da.message, "job");
        a.unsubscribe().unwrap();
        // The delivery a was holding is now available to c.
        let dc = c.poll().unwrap().unwrap();
        assert_eq!(dc.message, "job");
        assert_eq!(dc.attempt, 2);
        c.ack(dc.delivery_id).unwrap();
    }

    #[test]
    fn last_member_detach_drops_group_and_name() {
        let b = broker();
        let a = b
            .subscribe_group("blood-test", "workers", SubscriptionConfig::default())
            .unwrap();
        b.publish("blood-test", "m".into()).unwrap();
        a.unsubscribe().unwrap();
        assert_eq!(b.group_count("blood-test"), 0);
        // Re-joining the same name creates a fresh group (empty queue).
        let c = b
            .subscribe_group("blood-test", "workers", SubscriptionConfig::default())
            .unwrap();
        assert_eq!(c.backlog().unwrap(), 0);
    }

    // ------------------------------------------------------------------
    // Dedup
    // ------------------------------------------------------------------

    #[test]
    fn duplicate_dedup_key_is_dropped() {
        let b = broker();
        let s = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        let first = b
            .publish_opts(
                "blood-test",
                "m".into(),
                PublishOptions::new().dedup_key("k1"),
            )
            .unwrap();
        assert_eq!(first, PublishOutcome::Routed(1));
        let second = b
            .publish_opts(
                "blood-test",
                "m-again".into(),
                PublishOptions::new().dedup_key("k1"),
            )
            .unwrap();
        assert!(second.is_duplicate());
        assert_eq!(s.drain().unwrap(), vec!["m"]);
        assert_eq!(b.stats().dedup_dropped, 1);
        assert_eq!(b.stats().published, 1);
    }

    #[test]
    fn distinct_dedup_keys_pass() {
        let b = broker();
        let s = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        for k in ["a", "b", "c"] {
            let out = b
                .publish_opts("blood-test", k.into(), PublishOptions::new().dedup_key(k))
                .unwrap();
            assert!(!out.is_duplicate());
        }
        assert_eq!(s.drain().unwrap().len(), 3);
    }

    #[test]
    fn dedup_window_evicts_oldest_keys() {
        let b: Broker<u32> = Broker::new();
        b.create_topic("t");
        for i in 0..(DEDUP_WINDOW + 1) {
            let key = format!("k{i}");
            b.publish_opts("t", i as u32, PublishOptions::new().dedup_key(&key))
                .unwrap();
        }
        // k0 fell out of the window → republishing it is not a duplicate.
        let out = b
            .publish_opts("t", 0, PublishOptions::new().dedup_key("k0"))
            .unwrap();
        assert!(!out.is_duplicate());
    }

    #[test]
    fn rejected_publish_does_not_consume_dedup_key() {
        let b = broker();
        let _s = b
            .subscribe(
                "blood-test",
                SubscriptionConfig {
                    capacity: 1,
                    ..Default::default()
                },
            )
            .unwrap();
        b.publish("blood-test", "fill".into()).unwrap();
        let err = b.publish_opts(
            "blood-test",
            "m".into(),
            PublishOptions::new().dedup_key("k"),
        );
        assert!(err.is_err());
        // Retry after draining must not be treated as a duplicate.
        _s.drain().unwrap();
        let out = b
            .publish_opts(
                "blood-test",
                "m".into(),
                PublishOptions::new().dedup_key("k"),
            )
            .unwrap();
        assert!(!out.is_duplicate());
    }

    // ------------------------------------------------------------------
    // Visibility timeout and backoff
    // ------------------------------------------------------------------

    #[test]
    fn expired_visibility_timeout_requeues() {
        let b = broker();
        let cfg = SubscriptionConfig {
            visibility_timeout: Some(Duration::from_millis(20)),
            ..Default::default()
        };
        let s = b.subscribe("blood-test", cfg).unwrap();
        b.publish("blood-test", "m".into()).unwrap();
        let d = s.poll().unwrap().unwrap();
        assert_eq!(d.attempt, 1);
        std::thread::sleep(Duration::from_millis(30));
        // The next poll sweeps the expired delivery back first.
        let d2 = s.poll().unwrap().unwrap();
        assert_eq!(d2.message, "m");
        assert_eq!(d2.attempt, 2);
        assert_eq!(s.stats().unwrap().timed_out, 1);
        // The original delivery id is gone.
        assert!(s.ack(d.delivery_id).is_err());
        s.ack(d2.delivery_id).unwrap();
    }

    #[test]
    fn visibility_timeout_exhaustion_dead_letters() {
        let b = broker();
        let cfg = SubscriptionConfig {
            max_attempts: 1,
            visibility_timeout: Some(Duration::from_millis(10)),
            ..Default::default()
        };
        let s = b.subscribe("blood-test", cfg).unwrap();
        b.publish("blood-test", "slow".into()).unwrap();
        let _d = s.poll().unwrap().unwrap();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(b.sweep(), 1);
        let dlq = b.dead_letters();
        assert_eq!(dlq.len(), 1);
        assert_eq!(dlq[0].message, "slow");
    }

    #[test]
    fn nack_backoff_delays_redelivery() {
        let b = broker();
        let cfg = SubscriptionConfig {
            redelivery_backoff: Duration::from_millis(40),
            ..Default::default()
        };
        let s = b.subscribe("blood-test", cfg).unwrap();
        b.publish("blood-test", "m".into()).unwrap();
        let d = s.poll().unwrap().unwrap();
        s.nack(d.delivery_id).unwrap();
        // Immediately after the nack the message is still backing off.
        assert!(s.poll().unwrap().is_none());
        // poll_wait wakes itself when the backoff expires.
        let d2 = s.poll_wait(Duration::from_secs(5)).unwrap().unwrap();
        assert_eq!(d2.attempt, 2);
        s.ack(d2.delivery_id).unwrap();
    }

    #[test]
    fn backoff_head_does_not_block_ready_messages() {
        let b = broker();
        let cfg = SubscriptionConfig {
            redelivery_backoff: Duration::from_secs(60),
            ..Default::default()
        };
        let s = b.subscribe("blood-test", cfg).unwrap();
        b.publish("blood-test", "poison".into()).unwrap();
        b.publish("blood-test", "fine".into()).unwrap();
        let d = s.poll().unwrap().unwrap();
        assert_eq!(d.message, "poison");
        s.nack(d.delivery_id).unwrap();
        // "poison" backs off at the front, but "fine" is deliverable.
        let d2 = s.poll().unwrap().unwrap();
        assert_eq!(d2.message, "fine");
        s.ack(d2.delivery_id).unwrap();
    }

    #[test]
    fn backoff_grows_exponentially() {
        let cfg = SubscriptionConfig {
            redelivery_backoff: Duration::from_millis(10),
            ..Default::default()
        };
        let now = Instant::now();
        let b1 = backoff_until(&cfg, 1, now).unwrap();
        let b3 = backoff_until(&cfg, 3, now).unwrap();
        assert_eq!(b1 - now, Duration::from_millis(10));
        assert_eq!(b3 - now, Duration::from_millis(40));
        // Capped exponent.
        let b99 = backoff_until(&cfg, 99, now).unwrap();
        assert_eq!(
            b99 - now,
            Duration::from_millis(10) * (1 << MAX_BACKOFF_EXP)
        );
        assert!(backoff_until(&SubscriptionConfig::default(), 5, now).is_none());
    }

    // ------------------------------------------------------------------
    // Replay
    // ------------------------------------------------------------------

    #[test]
    fn replay_requires_retention() {
        let b = broker();
        let s = b
            .subscribe("blood-test", SubscriptionConfig::default())
            .unwrap();
        assert!(s.replay_from(0).is_err());
    }

    #[test]
    fn replay_from_offset_re_enqueues_suffix() {
        let b = broker();
        let cfg = SubscriptionConfig {
            retain: 16,
            ..Default::default()
        };
        let s = b.subscribe("blood-test", cfg).unwrap();
        for i in 0..4 {
            b.publish("blood-test", format!("m{i}")).unwrap();
        }
        let first = s.drain().unwrap();
        assert_eq!(first, vec!["m0", "m1", "m2", "m3"]);
        let n = s.replay_from(2).unwrap();
        assert_eq!(n, 2);
        let replayed = s.drain().unwrap();
        assert_eq!(replayed, vec!["m2", "m3"]);
        assert_eq!(s.stats().unwrap().replayed, 2);
    }

    #[test]
    fn replay_log_is_bounded() {
        let b = broker();
        let cfg = SubscriptionConfig {
            retain: 2,
            ..Default::default()
        };
        let s = b.subscribe("blood-test", cfg).unwrap();
        for i in 0..5 {
            b.publish("blood-test", format!("m{i}")).unwrap();
        }
        s.drain().unwrap();
        // Only the newest 2 are retained.
        assert_eq!(s.replay_from(0).unwrap(), 2);
        assert_eq!(s.drain().unwrap(), vec!["m3", "m4"]);
    }
}

#[cfg(test)]
mod race_tests {
    use super::*;

    #[test]
    fn poll_wait_errors_after_concurrent_unsubscribe() {
        let b: Broker<String> = Broker::new();
        b.create_topic("t");
        let s = b.subscribe("t", SubscriptionConfig::default()).unwrap();
        let waiter = s.clone();
        let t = std::thread::spawn(move || waiter.poll_wait(Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(30));
        s.unsubscribe().unwrap();
        // The waiter must terminate promptly with an error, not block
        // for the full timeout: detach wakes the condvar so the waiter
        // re-checks and notices the subscription is gone.
        let result = t.join().unwrap();
        assert!(result.is_err());
    }

    #[test]
    fn nack_of_foreign_delivery_id_rejected() {
        let b: Broker<u32> = Broker::new();
        b.create_topic("t");
        let s1 = b.subscribe("t", SubscriptionConfig::default()).unwrap();
        let s2 = b.subscribe("t", SubscriptionConfig::default()).unwrap();
        b.publish("t", 1).unwrap();
        let d1 = s1.poll().unwrap().unwrap();
        // s2 cannot ack or nack s1's delivery.
        assert!(s2.ack(d1.delivery_id).is_err());
        assert!(s2.nack(d1.delivery_id).is_err());
        s1.ack(d1.delivery_id).unwrap();
    }

    #[test]
    fn competing_pollers_never_share_a_delivery() {
        let b: Broker<u64> = Broker::new();
        b.create_topic("t");
        let cfg = SubscriptionConfig {
            capacity: 10_000,
            ..Default::default()
        };
        let subs: Vec<_> = (0..4)
            .map(|_| b.subscribe_group("t", "workers", cfg).unwrap())
            .collect();
        for i in 0..1_000u64 {
            b.publish("t", i).unwrap();
        }
        let mut threads = Vec::new();
        for s in subs {
            threads.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(d) = s.poll().unwrap() {
                    s.ack(d.delivery_id).unwrap();
                    got.push(d.message);
                }
                got
            }));
        }
        let mut all: Vec<u64> = threads
            .into_iter()
            .flat_map(|t| t.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<u64> = (0..1_000).collect();
        assert_eq!(all, expected, "every message delivered exactly once");
    }
}
