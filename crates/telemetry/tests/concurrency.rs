//! Instruments must stay consistent under concurrent recording.

use css_telemetry::MetricsRegistry;
use std::thread;

#[test]
fn counters_are_exact_across_threads() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;

    let registry = MetricsRegistry::new();
    thread::scope(|scope| {
        for _ in 0..THREADS {
            let registry = registry.clone();
            scope.spawn(move || {
                let counter = registry.counter("hits");
                for _ in 0..PER_THREAD {
                    counter.inc();
                }
            });
        }
    });
    assert_eq!(
        registry.snapshot().counter("hits"),
        THREADS as u64 * PER_THREAD
    );
}

#[test]
fn histograms_lose_no_observations_across_threads() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 5_000;

    let registry = MetricsRegistry::new();
    thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = registry.clone();
            scope.spawn(move || {
                let h = registry.histogram("lat");
                for i in 0..PER_THREAD {
                    // Spread across several buckets.
                    h.record((t + 1) * 1_000 + i % 7);
                }
            });
        }
    });
    let snap = registry.snapshot();
    let h = snap.histogram("lat").unwrap();
    assert_eq!(h.count, THREADS * PER_THREAD);
    assert!(h.max_ns >= THREADS * 1_000);
    assert!(h.p50_ns <= h.p90_ns && h.p90_ns <= h.p99_ns);
}

#[test]
fn gauges_balance_across_threads() {
    let registry = MetricsRegistry::new();
    thread::scope(|scope| {
        for _ in 0..6 {
            let registry = registry.clone();
            scope.spawn(move || {
                let g = registry.gauge("depth");
                for _ in 0..1_000 {
                    g.inc();
                    g.dec();
                }
            });
        }
    });
    assert_eq!(registry.snapshot().gauge("depth"), 0);
}
