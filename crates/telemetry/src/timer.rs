//! Multi-stage pipeline timing.

use crate::MetricsRegistry;
use std::time::{Duration, Instant};

/// Splits one pass through a pipeline into per-stage histograms.
///
/// Each [`stage`](StageTimer::stage) call records the time since the
/// previous boundary into `"{prefix}.{stage}"` — one clock read per
/// boundary, so an N-stage pipeline costs N+1 `Instant::now()` calls
/// total. A pass that bails early (a deny, an error) simply records
/// the stages it reached, which is exactly the truth.
///
/// ```
/// use css_telemetry::{MetricsRegistry, StageTimer};
///
/// let registry = MetricsRegistry::new();
/// let mut timer = StageTimer::start(&registry, "stage");
/// // ... resolve the event source ...
/// timer.stage("pip_resolve");
/// // ... evaluate policy ...
/// timer.stage("pdp_evaluate");
/// timer.finish();
///
/// let snap = registry.snapshot();
/// assert_eq!(snap.histogram("stage.pip_resolve").unwrap().count, 1);
/// assert_eq!(snap.histogram("stage.total").unwrap().count, 1);
/// ```
#[derive(Debug)]
pub struct StageTimer<'a> {
    registry: &'a MetricsRegistry,
    prefix: &'a str,
    started: Instant,
    last: Instant,
}

impl<'a> StageTimer<'a> {
    /// Start timing; the first `stage` call measures from here.
    pub fn start(registry: &'a MetricsRegistry, prefix: &'a str) -> Self {
        let now = Instant::now();
        StageTimer {
            registry,
            prefix,
            started: now,
            last: now,
        }
    }

    /// Close the current stage: record the time since the previous
    /// boundary into `"{prefix}.{stage}"` and start the next stage.
    pub fn stage(&mut self, stage: &str) {
        let now = Instant::now();
        self.registry
            .histogram(&format!("{}.{stage}", self.prefix))
            .record_duration(now.duration_since(self.last));
        self.last = now;
    }

    /// Time since `start`, across all stages so far.
    pub fn elapsed_total(&self) -> Duration {
        self.started.elapsed()
    }

    /// Record the whole pass into `"{prefix}.total"` and consume the
    /// timer. Optional — drop the timer to skip the total histogram.
    pub fn finish(self) {
        self.registry
            .histogram(&format!("{}.total", self.prefix))
            .record_duration(self.started.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_record_into_prefixed_histograms() {
        let registry = MetricsRegistry::new();
        let mut timer = StageTimer::start(&registry, "pipeline");
        timer.stage("first");
        std::thread::sleep(Duration::from_millis(2));
        timer.stage("second");
        timer.finish();

        let snap = registry.snapshot();
        assert_eq!(snap.histogram("pipeline.first").unwrap().count, 1);
        let second = snap.histogram("pipeline.second").unwrap();
        assert_eq!(second.count, 1);
        assert!(
            second.max_ns >= 2_000_000,
            "slept 2ms, saw {}",
            second.max_ns
        );
        let total = snap.histogram("pipeline.total").unwrap();
        assert!(total.max_ns >= second.max_ns);
    }

    #[test]
    fn early_exit_records_only_reached_stages() {
        let registry = MetricsRegistry::new();
        {
            let mut timer = StageTimer::start(&registry, "p");
            timer.stage("reached");
        }
        let snap = registry.snapshot();
        assert_eq!(snap.histogram("p.reached").unwrap().count, 1);
        assert!(snap.histogram("p.total").is_none());
    }

    #[test]
    fn repeated_passes_accumulate() {
        let registry = MetricsRegistry::new();
        for _ in 0..10 {
            let mut timer = StageTimer::start(&registry, "p");
            timer.stage("only");
            timer.finish();
        }
        let snap = registry.snapshot();
        assert_eq!(snap.histogram("p.only").unwrap().count, 10);
        assert_eq!(snap.histogram("p.total").unwrap().count, 10);
    }
}
