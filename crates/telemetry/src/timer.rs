//! Multi-stage pipeline timing.

use crate::MetricsRegistry;
use std::time::{Duration, Instant};

/// Splits one pass through a pipeline into per-stage histograms.
///
/// Each [`stage`](StageTimer::stage) call records the time since the
/// previous boundary into `"{prefix}.{stage}"` — one clock read per
/// boundary, so an N-stage pipeline costs N+1 `Instant::now()` calls
/// total. A pass that bails early (a deny, an error, a panic) records
/// the stages it reached, and on `Drop` the remainder lands in
/// `"{prefix}.partial"` plus the whole pass in `"{prefix}.total"` — so
/// denied requests are never invisible in the latency record.
///
/// ```
/// use css_telemetry::{MetricsRegistry, StageTimer};
///
/// let registry = MetricsRegistry::new();
/// let mut timer = StageTimer::start(&registry, "stage");
/// // ... resolve the event source ...
/// timer.stage("pip_resolve");
/// // ... evaluate policy ...
/// timer.stage("pdp_evaluate");
/// timer.finish();
///
/// let snap = registry.snapshot();
/// assert_eq!(snap.histogram("stage.pip_resolve").unwrap().count, 1);
/// assert_eq!(snap.histogram("stage.total").unwrap().count, 1);
/// ```
#[derive(Debug)]
pub struct StageTimer<'a> {
    registry: &'a MetricsRegistry,
    prefix: &'a str,
    started: Instant,
    last: Instant,
    finished: bool,
    exemplar: Option<(u64, u64)>,
}

impl<'a> StageTimer<'a> {
    /// Start timing; the first `stage` call measures from here.
    pub fn start(registry: &'a MetricsRegistry, prefix: &'a str) -> Self {
        let now = Instant::now();
        StageTimer {
            registry,
            prefix,
            started: now,
            last: now,
            finished: false,
            exemplar: None,
        }
    }

    /// Attach an exemplar `(trace_id, at_ms)` to this pass: every
    /// stage/total/partial record from here on carries it, so the
    /// bucket an outlier lands in retains a link back to the span tree
    /// that produced it. A zero trace id is ignored (0 marks "no
    /// exemplar" in the histogram slots).
    pub fn exemplar(&mut self, trace_id: u64, at_ms: u64) {
        if trace_id != 0 {
            self.exemplar = Some((trace_id, at_ms));
        }
    }

    /// Close the current stage: record the time since the previous
    /// boundary into `"{prefix}.{stage}"` and start the next stage.
    pub fn stage(&mut self, stage: &str) {
        let now = Instant::now();
        let histogram = self.registry.histogram(&format!("{}.{stage}", self.prefix));
        match self.exemplar {
            Some((trace_id, at_ms)) => histogram.record_duration_with_exemplar(
                now.duration_since(self.last),
                trace_id,
                at_ms,
            ),
            None => histogram.record_duration(now.duration_since(self.last)),
        }
        self.last = now;
    }

    /// Time since `start`, across all stages so far.
    pub fn elapsed_total(&self) -> Duration {
        self.started.elapsed()
    }

    /// Record the whole pass into `"{prefix}.total"` and consume the
    /// timer. A timer dropped without `finish` (early return, `?`,
    /// panic unwind) records the open stage into `"{prefix}.partial"`
    /// and still contributes to `"{prefix}.total"`.
    pub fn finish(mut self) {
        self.finished = true;
        let histogram = self.registry.histogram(&format!("{}.total", self.prefix));
        match self.exemplar {
            Some((trace_id, at_ms)) => {
                histogram.record_duration_with_exemplar(self.started.elapsed(), trace_id, at_ms)
            }
            None => histogram.record_duration(self.started.elapsed()),
        }
    }
}

impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        if self.finished {
            return;
        }
        let now = Instant::now();
        let (partial, total) = (
            self.registry.histogram(&format!("{}.partial", self.prefix)),
            self.registry.histogram(&format!("{}.total", self.prefix)),
        );
        match self.exemplar {
            Some((trace_id, at_ms)) => {
                partial.record_duration_with_exemplar(
                    now.duration_since(self.last),
                    trace_id,
                    at_ms,
                );
                total.record_duration_with_exemplar(
                    now.duration_since(self.started),
                    trace_id,
                    at_ms,
                );
            }
            None => {
                partial.record_duration(now.duration_since(self.last));
                total.record_duration(now.duration_since(self.started));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_record_into_prefixed_histograms() {
        let registry = MetricsRegistry::new();
        let mut timer = StageTimer::start(&registry, "pipeline");
        timer.stage("first");
        std::thread::sleep(Duration::from_millis(2));
        timer.stage("second");
        timer.finish();

        let snap = registry.snapshot();
        assert_eq!(snap.histogram("pipeline.first").unwrap().count, 1);
        let second = snap.histogram("pipeline.second").unwrap();
        assert_eq!(second.count, 1);
        assert!(
            second.max_ns >= 2_000_000,
            "slept 2ms, saw {}",
            second.max_ns
        );
        let total = snap.histogram("pipeline.total").unwrap();
        assert!(total.max_ns >= second.max_ns);
    }

    #[test]
    fn early_exit_still_records_partial_and_total() {
        let registry = MetricsRegistry::new();
        {
            let mut timer = StageTimer::start(&registry, "p");
            timer.stage("reached");
            // early return: timer dropped without finish()
        }
        let snap = registry.snapshot();
        assert_eq!(snap.histogram("p.reached").unwrap().count, 1);
        assert_eq!(snap.histogram("p.partial").unwrap().count, 1);
        assert_eq!(snap.histogram("p.total").unwrap().count, 1);
    }

    #[test]
    fn panic_unwind_records_partial_and_total() {
        let registry = MetricsRegistry::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut timer = StageTimer::start(&registry, "p");
            timer.stage("reached");
            panic!("boom");
        }));
        assert!(result.is_err());
        let snap = registry.snapshot();
        assert_eq!(snap.histogram("p.reached").unwrap().count, 1);
        assert_eq!(snap.histogram("p.partial").unwrap().count, 1);
        assert_eq!(snap.histogram("p.total").unwrap().count, 1);
    }

    #[test]
    fn finish_does_not_record_partial() {
        let registry = MetricsRegistry::new();
        let mut timer = StageTimer::start(&registry, "p");
        timer.stage("only");
        timer.finish();
        let snap = registry.snapshot();
        assert!(snap.histogram("p.partial").is_none());
        assert_eq!(snap.histogram("p.total").unwrap().count, 1);
    }

    #[test]
    fn exemplar_rides_every_boundary_of_the_pass() {
        let registry = MetricsRegistry::new();
        let mut timer = StageTimer::start(&registry, "p");
        timer.exemplar(0xBEEF, 42);
        timer.stage("only");
        timer.finish();

        let snap = registry.snapshot();
        for name in ["p.only", "p.total"] {
            let h = snap.histogram(name).unwrap();
            assert_eq!(h.exemplars.len(), 1, "{name}");
            assert_eq!(h.exemplars[0].trace_id, 0xBEEF, "{name}");
            assert_eq!(h.exemplars[0].at_ms, 42, "{name}");
        }
    }

    #[test]
    fn zero_trace_id_never_becomes_an_exemplar() {
        let registry = MetricsRegistry::new();
        let mut timer = StageTimer::start(&registry, "p");
        timer.exemplar(0, 42);
        timer.stage("only");
        timer.finish();
        let snap = registry.snapshot();
        assert!(snap.histogram("p.total").unwrap().exemplars.is_empty());
    }

    #[test]
    fn repeated_passes_accumulate() {
        let registry = MetricsRegistry::new();
        for _ in 0..10 {
            let mut timer = StageTimer::start(&registry, "p");
            timer.stage("only");
            timer.finish();
        }
        let snap = registry.snapshot();
        assert_eq!(snap.histogram("p.only").unwrap().count, 10);
        assert_eq!(snap.histogram("p.total").unwrap().count, 10);
    }
}
