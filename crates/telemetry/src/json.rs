//! A tiny JSON writer — just enough for the ops endpoints, offline.
//!
//! No parser, no value tree: endpoints build their documents directly,
//! and the only invariant this module owns is *escaping* (a reason
//! string with quotes or newlines must never corrupt the document).

use std::fmt::Write as _;

/// An append-only JSON string builder with correct escaping.
#[derive(Debug, Default)]
pub struct JsonBuf {
    out: String,
    /// Whether the next element at the current nesting level needs a
    /// leading comma.
    needs_comma: Vec<bool>,
}

impl JsonBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    fn elem(&mut self) {
        if let Some(last) = self.needs_comma.last_mut() {
            if *last {
                self.out.push(',');
            }
            *last = true;
        }
    }

    /// Open an object (`{`).
    pub fn begin_object(&mut self) -> &mut Self {
        self.elem();
        self.out.push('{');
        self.needs_comma.push(false);
        self
    }

    /// Close an object (`}`).
    pub fn end_object(&mut self) -> &mut Self {
        self.needs_comma.pop();
        self.out.push('}');
        self
    }

    /// Open an array (`[`).
    pub fn begin_array(&mut self) -> &mut Self {
        self.elem();
        self.out.push('[');
        self.needs_comma.push(false);
        self
    }

    /// Close an array (`]`).
    pub fn end_array(&mut self) -> &mut Self {
        self.needs_comma.pop();
        self.out.push(']');
        self
    }

    /// Emit an object key (caller follows with exactly one value).
    pub fn key(&mut self, key: &str) -> &mut Self {
        self.elem();
        self.escaped(key);
        self.out.push(':');
        // The value that follows is part of this key, not a new element.
        if let Some(last) = self.needs_comma.last_mut() {
            *last = false;
        }
        self
    }

    /// Emit a string value.
    pub fn string(&mut self, value: &str) -> &mut Self {
        self.elem();
        self.escaped(value);
        self
    }

    /// Emit an unsigned integer value.
    pub fn u64(&mut self, value: u64) -> &mut Self {
        self.elem();
        let _ = write!(self.out, "{value}");
        self
    }

    /// Emit a signed integer value.
    pub fn i64(&mut self, value: i64) -> &mut Self {
        self.elem();
        let _ = write!(self.out, "{value}");
        self
    }

    /// Emit a finite float with fixed precision (JSON has no NaN/inf —
    /// those render as `null`).
    pub fn f64(&mut self, value: f64) -> &mut Self {
        self.elem();
        if value.is_finite() {
            let _ = write!(self.out, "{value:.4}");
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Emit a boolean value.
    pub fn bool(&mut self, value: bool) -> &mut Self {
        self.elem();
        self.out.push_str(if value { "true" } else { "false" });
        self
    }

    /// Embed an already-serialized JSON value verbatim (for nesting a
    /// document another subsystem rendered — e.g. a chronicle history
    /// window inside an incident bundle). The caller owns its validity;
    /// no escaping is applied.
    pub fn raw(&mut self, json: &str) -> &mut Self {
        self.elem();
        self.out.push_str(json);
        self
    }

    fn escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.out, "\\u{:04x}", c as u32);
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_documents_with_commas() {
        let mut j = JsonBuf::new();
        j.begin_object();
        j.key("status").string("ok");
        j.key("count").u64(3);
        j.key("items").begin_array();
        j.u64(1).u64(2);
        j.begin_object();
        j.key("nested").bool(true);
        j.end_object();
        j.end_array();
        j.end_object();
        assert_eq!(
            j.finish(),
            r#"{"status":"ok","count":3,"items":[1,2,{"nested":true}]}"#
        );
    }

    #[test]
    fn escapes_reason_strings() {
        let mut j = JsonBuf::new();
        j.begin_object();
        j.key("reason").string("probe \"failed\"\nline2");
        j.end_object();
        assert_eq!(j.finish(), r#"{"reason":"probe \"failed\"\nline2"}"#);
    }

    #[test]
    fn non_finite_floats_render_null() {
        let mut j = JsonBuf::new();
        j.begin_array();
        j.f64(1.5).f64(f64::NAN).f64(f64::INFINITY);
        j.end_array();
        assert_eq!(j.finish(), "[1.5000,null,null]");
    }

    #[test]
    fn raw_embeds_a_prebuilt_value() {
        let inner = {
            let mut j = JsonBuf::new();
            j.begin_object();
            j.key("points").begin_array().u64(1).u64(2).end_array();
            j.end_object();
            j.finish()
        };
        let mut j = JsonBuf::new();
        j.begin_object();
        j.key("seq").u64(9);
        j.key("history").raw(&inner);
        j.key("after").bool(true);
        j.end_object();
        assert_eq!(
            j.finish(),
            r#"{"seq":9,"history":{"points":[1,2]},"after":true}"#
        );
    }

    #[test]
    fn negative_numbers_render() {
        let mut j = JsonBuf::new();
        j.begin_array();
        j.i64(-7);
        j.end_array();
        assert_eq!(j.finish(), "[-7]");
    }
}
