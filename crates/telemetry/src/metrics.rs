//! The three instrument kinds: counters, gauges, histograms.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A monotonically increasing event count.
///
/// Cloning shares the underlying cell, so a component can cache its
/// handle while the registry retains another for snapshots.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one event.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Count `n` events at once.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A level that moves in both directions, e.g. a queue depth.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the level.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raise the level by `n`.
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Lower the level by `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Raise by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Lower by one.
    pub fn dec(&self) {
        self.sub(1);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets; bucket 63 absorbs everything ≥ 2⁶² ns.
const BUCKETS: usize = 64;

/// A latency distribution over nanoseconds in log₂ buckets.
///
/// Recording is one `fetch_add` per bucket plus count/sum updates and a
/// CAS loop for the max — no allocation, no lock, no stored samples.
/// Quantiles are read from bucket boundaries, so a reported pXX is an
/// upper bound within a factor of two of the true value; that is
/// deliberate — the platform needs latency *shape*, not microsecond
/// exactness, on paths that run millions of times.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    /// Most recent exemplar per bucket: the trace id (0 = none; trace
    /// ids are minted from a counter starting at 1, so a real id is
    /// never 0) and the platform-clock millisecond it was observed.
    /// Written only by [`Histogram::record_with_exemplar`] — plain
    /// `record` never touches these, so un-exemplared paths pay
    /// nothing. The id/timestamp pair is two relaxed stores; a racing
    /// writer can interleave them, which at worst pairs an exemplar id
    /// with a timestamp a few microseconds off — fine for a debugging
    /// breadcrumb.
    ex_trace: [AtomicU64; BUCKETS],
    ex_at_ms: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: [const { AtomicU64::new(0) }; BUCKETS],
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
                ex_trace: [const { AtomicU64::new(0) }; BUCKETS],
                ex_at_ms: [const { AtomicU64::new(0) }; BUCKETS],
            }),
        }
    }
}

/// Bucket index for a nanosecond value: 0 for 0, otherwise the bit
/// length, clamped to the last bucket.
fn bucket_index(ns: u64) -> usize {
    ((u64::BITS - ns.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of a bucket, used as the quantile estimate.
fn bucket_upper_bound(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation in nanoseconds.
    pub fn record(&self, ns: u64) {
        let inner = &self.inner;
        inner.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(ns, Ordering::Relaxed);
        inner.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Record one observation from a [`Duration`].
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record one observation and remember `(trace_id, at_ms)` as the
    /// bucket's **exemplar** — the most recent trace that landed there.
    /// A later snapshot exposes the exemplar next to the bucket, so a
    /// p99 outlier links straight to the span tree that caused it.
    ///
    /// The trace id is a raw `u64` (the value of a `css-trace`
    /// `TraceId`) because this crate sits below the trace layer; ids of
    /// 0 are treated as "no exemplar" and recorded as a plain
    /// observation.
    pub fn record_with_exemplar(&self, ns: u64, trace_id: u64, at_ms: u64) {
        self.record(ns);
        if trace_id == 0 {
            return;
        }
        let idx = bucket_index(ns);
        self.inner.ex_trace[idx].store(trace_id, Ordering::Relaxed);
        self.inner.ex_at_ms[idx].store(at_ms, Ordering::Relaxed);
    }

    /// Record a [`Duration`] with an exemplar; see
    /// [`record_with_exemplar`](Histogram::record_with_exemplar).
    pub fn record_duration_with_exemplar(&self, d: Duration, trace_id: u64, at_ms: u64) {
        self.record_with_exemplar(d.as_nanos().min(u64::MAX as u128) as u64, trace_id, at_ms);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations so far, nanoseconds — with
    /// [`count`](Histogram::count), the live pair behind a Prometheus
    /// histogram's `_sum`/`_count` series.
    pub fn sum_ns(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Freeze the current distribution into plain data.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.inner;
        let buckets: Vec<u64> = inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // Derive the count from the bucket sum so quantile ranks are
        // consistent even if a `record` is racing the snapshot.
        let count: u64 = buckets.iter().sum();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (idx, n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    return bucket_upper_bound(idx);
                }
            }
            bucket_upper_bound(BUCKETS - 1)
        };
        let max = inner.max.load(Ordering::Relaxed);
        let occupied = buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(idx, n)| (bucket_upper_bound(idx), *n))
            .collect();
        let exemplars = (0..BUCKETS)
            .filter_map(|idx| {
                let trace_id = inner.ex_trace[idx].load(Ordering::Relaxed);
                (trace_id != 0).then(|| Exemplar {
                    bucket_ns: bucket_upper_bound(idx),
                    trace_id,
                    at_ms: inner.ex_at_ms[idx].load(Ordering::Relaxed),
                })
            })
            .collect();
        HistogramSnapshot {
            count,
            sum_ns: inner.sum.load(Ordering::Relaxed),
            max_ns: max,
            p50_ns: quantile(0.50).min(max),
            p90_ns: quantile(0.90).min(max),
            p99_ns: quantile(0.99).min(max),
            buckets: occupied,
            exemplars,
        }
    }
}

/// One bucket's most recent exemplar: which trace last observed a
/// latency in this bucket, and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// Inclusive upper bound of the bucket the observation landed in,
    /// nanoseconds (`u64::MAX` for the overflow bucket).
    pub bucket_ns: u64,
    /// Raw trace id (a `css-trace` `TraceId` value); never 0.
    pub trace_id: u64,
    /// Platform-clock milliseconds when the exemplar was recorded.
    pub at_ms: u64,
}

/// Plain-data summary of a [`Histogram`] at one instant.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations, nanoseconds.
    pub sum_ns: u64,
    /// Largest observation, nanoseconds (exact, not bucketed).
    pub max_ns: u64,
    /// Median upper-bound estimate, nanoseconds.
    pub p50_ns: u64,
    /// 90th-percentile upper-bound estimate, nanoseconds.
    pub p90_ns: u64,
    /// 99th-percentile upper-bound estimate, nanoseconds.
    pub p99_ns: u64,
    /// Occupied log₂ buckets as `(inclusive upper bound, count)`, in
    /// ascending bound order; empty buckets are omitted.
    pub buckets: Vec<(u64, u64)>,
    /// Per-bucket most-recent exemplars, in ascending bound order;
    /// buckets that never saw an exemplared observation are omitted.
    /// Empty unless the workload records through
    /// [`Histogram::record_with_exemplar`].
    pub exemplars: Vec<Exemplar>,
}

impl HistogramSnapshot {
    /// Arithmetic mean in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// The exemplar of the bucket the p99 estimate falls in (the
    /// slowest-bucket exemplar at or above `p99_ns`), if any bucket up
    /// there retained one — the trace to pull when the p99 regresses.
    pub fn p99_exemplar(&self) -> Option<&Exemplar> {
        self.exemplars
            .iter()
            .rev()
            .find(|e| e.bucket_ns >= self.p99_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let shared = c.clone();
        shared.inc();
        assert_eq!(c.get(), 43, "clones share state");
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(10);
        g.dec();
        g.sub(4);
        assert_eq!(g.get(), 5);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn bucket_indexing_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap, HistogramSnapshot::default());
        assert_eq!(snap.mean_ns(), 0);
    }

    #[test]
    fn quantiles_bound_the_distribution() {
        let h = Histogram::new();
        // 100 samples: 90 fast (~1µs), 10 slow (~1ms).
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.max_ns, 1_000_000);
        // p50 lands in the fast bucket: within [1000, 2048).
        assert!((1_000..2_048).contains(&snap.p50_ns), "p50={}", snap.p50_ns);
        // p99 lands in the slow bucket: within [1e6, 2^20).
        assert!(snap.p99_ns >= 1_000_000, "p99={}", snap.p99_ns);
        assert!(snap.p99_ns < (1 << 21), "p99={}", snap.p99_ns);
        assert!(snap.p50_ns <= snap.p90_ns && snap.p90_ns <= snap.p99_ns);
        assert_eq!(snap.mean_ns(), (90 * 1_000 + 10 * 1_000_000) / 100);
    }

    #[test]
    fn single_sample_quantiles_collapse_to_it() {
        let h = Histogram::new();
        h.record(12_345);
        let snap = h.snapshot();
        assert_eq!(snap.max_ns, 12_345);
        assert_eq!(snap.p50_ns, snap.p99_ns);
        assert!(snap.p50_ns >= 12_345 && snap.p50_ns <= 16_383);
    }

    #[test]
    fn max_is_exact_and_caps_quantiles() {
        let h = Histogram::new();
        h.record(5);
        let snap = h.snapshot();
        // Bucket upper bound would say 7; the exact max caps it to 5.
        assert_eq!(snap.p99_ns, 5);
    }

    #[test]
    fn snapshot_exposes_occupied_buckets() {
        let h = Histogram::new();
        h.record(0);
        h.record(5); // bucket le7
        h.record(5);
        h.record(1_000); // bucket le1023
        let snap = h.snapshot();
        assert_eq!(snap.buckets, vec![(0, 1), (7, 2), (1023, 1)]);
        assert_eq!(snap.buckets.iter().map(|(_, n)| n).sum::<u64>(), snap.count);
    }

    #[test]
    fn record_duration_converts() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(3));
        assert_eq!(h.snapshot().sum_ns, 3_000);
    }

    #[test]
    fn exemplar_lands_in_the_bucket_of_its_sample() {
        let h = Histogram::new();
        h.record_with_exemplar(5, 0xAAAA, 100); // bucket le7
        h.record_with_exemplar(1_000, 0xBBBB, 200); // bucket le1023
        let snap = h.snapshot();
        assert_eq!(
            snap.exemplars,
            vec![
                Exemplar {
                    bucket_ns: 7,
                    trace_id: 0xAAAA,
                    at_ms: 100
                },
                Exemplar {
                    bucket_ns: 1023,
                    trace_id: 0xBBBB,
                    at_ms: 200
                },
            ]
        );
    }

    #[test]
    fn most_recent_exemplar_wins_within_a_bucket() {
        let h = Histogram::new();
        h.record_with_exemplar(5, 0xAAAA, 100);
        h.record_with_exemplar(6, 0xBBBB, 200); // same le7 bucket
        let snap = h.snapshot();
        assert_eq!(snap.exemplars.len(), 1);
        assert_eq!(snap.exemplars[0].trace_id, 0xBBBB);
        assert_eq!(snap.exemplars[0].at_ms, 200);
    }

    #[test]
    fn zero_trace_id_records_the_sample_but_no_exemplar() {
        let h = Histogram::new();
        h.record_with_exemplar(5, 0, 100);
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert!(snap.exemplars.is_empty());
    }

    #[test]
    fn plain_records_do_not_disturb_exemplars() {
        let h = Histogram::new();
        h.record_with_exemplar(5, 0xAAAA, 100);
        h.record(6); // same bucket, no exemplar: slot must survive
        let snap = h.snapshot();
        assert_eq!(snap.exemplars.len(), 1);
        assert_eq!(snap.exemplars[0].trace_id, 0xAAAA);
    }

    #[test]
    fn p99_exemplar_picks_the_slow_bucket() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record_with_exemplar(1_000, 0xFAFA, 1);
        }
        for _ in 0..10 {
            h.record_with_exemplar(1_000_000, 0x5105, 2);
        }
        let snap = h.snapshot();
        let ex = snap.p99_exemplar().expect("slow bucket has an exemplar");
        assert_eq!(ex.trace_id, 0x5105, "p99 exemplar joins the slow trace");
        let fast_only = {
            let h = Histogram::new();
            h.record_with_exemplar(1_000, 0xFAFA, 1);
            h.snapshot()
        };
        assert_eq!(fast_only.p99_exemplar().unwrap().trace_id, 0xFAFA);
    }

    #[test]
    fn live_sum_and_count_match_snapshot() {
        let h = Histogram::new();
        h.record(100);
        h.record(250);
        assert_eq!(h.sum_ns(), 350);
        assert_eq!(h.count(), 2);
        let snap = h.snapshot();
        assert_eq!(snap.sum_ns, h.sum_ns());
        assert_eq!(snap.count, h.count());
    }
}
