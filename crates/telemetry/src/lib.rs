//! Zero-dependency telemetry for the CSS platform.
//!
//! Hot paths — broker publish/deliver, Algorithm 1 stages in the
//! policy enforcement point, gateway persistence, storage appends —
//! record into lock-free atomic instruments; aggregation only happens
//! when a snapshot is requested.
//!
//! Three instrument kinds, all `Clone`-shares-state handles:
//!
//! - [`Counter`] — monotonically increasing `u64`.
//! - [`Gauge`] — signed level that moves both ways (queue depths).
//! - [`Histogram`] — log₂-bucketed latency distribution over
//!   nanoseconds, answering p50/p90/p99/max without storing samples.
//!
//! Instruments live in a [`MetricsRegistry`]; the registry's only lock
//! is taken at get-or-create time, never on the record path. Handles
//! are meant to be resolved once and cached by the instrumented
//! component. [`StageTimer`] breaks a multi-stage pipeline into
//! per-stage histograms with one clock read per boundary.
//!
//! [`MetricsRegistry::snapshot`] renders everything into a plain-data
//! [`TelemetrySnapshot`]; [`TelemetrySnapshot::to_text`] gives a
//! stable line-oriented exposition format for logs and debugging.

mod json;
mod metrics;
mod registry;
mod timer;

pub use json::JsonBuf;
pub use metrics::{Counter, Exemplar, Gauge, Histogram, HistogramSnapshot};
pub use registry::{MetricsRegistry, TelemetrySnapshot};
pub use timer::StageTimer;
