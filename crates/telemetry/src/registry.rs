//! Named instrument registry and point-in-time snapshots.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, PoisonError};

/// A shared, named collection of instruments.
///
/// Cloning is cheap and shares state, so one registry can thread
/// through every subsystem of a platform instance. The internal mutex
/// guards only the name → handle maps: components resolve their
/// handles once (get-or-create) and then record lock-free.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter registered under `name`.
    ///
    /// The name-map locks recover from poisoning
    /// (`PoisonError::into_inner`): the maps hold only name → handle
    /// entries, and an insert that panicked mid-way leaves the map
    /// valid — so observability keeps working even after a panic
    /// elsewhere took a registry lock down with it.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self
            .inner
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        map.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the gauge registered under `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self
            .inner
            .gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        map.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the histogram registered under `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self
            .inner
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        map.entry(name.to_string()).or_default().clone()
    }

    /// Freeze every instrument into plain data.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();
        TelemetrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Every instrument's value at one instant, in stable name order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl TelemetrySnapshot {
    /// A counter's total, 0 if it was never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's level, 0 if it was never registered.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// A histogram's summary, if it was registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Line-oriented text exposition:
    ///
    /// ```text
    /// counter bus.published 42
    /// gauge bus.queue_depth 3
    /// histogram stage.consent count=42 mean_ns=810 p50_ns=1023 p90_ns=2047 p99_ns=4095 max_ns=3891 buckets=le1023:30,le2047:8,le4095:4
    /// ```
    ///
    /// One instrument per line, keys in stable order (the maps are
    /// `BTreeMap`s, so two snapshots of the same state render
    /// byte-identically) — greppable and diffable, which is the point.
    /// Each occupied log₂ bucket prints as `le{bound}:{count}`; the
    /// overflow bucket (bound `u64::MAX`) prints as `leinf`.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("counter {name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("gauge {name} {value}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "histogram {name} count={} mean_ns={} p50_ns={} p90_ns={} p99_ns={} max_ns={}",
                h.count,
                h.mean_ns(),
                h.p50_ns,
                h.p90_ns,
                h.p99_ns,
                h.max_ns,
            ));
            if !h.buckets.is_empty() {
                let rendered: Vec<String> = h
                    .buckets
                    .iter()
                    .map(|(bound, n)| {
                        if *bound == u64::MAX {
                            format!("leinf:{n}")
                        } else {
                            format!("le{bound}:{n}")
                        }
                    })
                    .collect();
                out.push_str(&format!(" buckets={}", rendered.join(",")));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TelemetrySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_shared_handles() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("hits");
        let b = reg.counter("hits");
        a.inc();
        b.inc();
        assert_eq!(reg.counter("hits").get(), 2);

        let g = reg.gauge("depth");
        g.add(7);
        assert_eq!(reg.gauge("depth").get(), 7);

        reg.histogram("lat").record(100);
        assert_eq!(reg.histogram("lat").count(), 1);
    }

    #[test]
    fn cloned_registry_shares_instruments() {
        let reg = MetricsRegistry::new();
        let clone = reg.clone();
        clone.counter("hits").add(3);
        assert_eq!(reg.snapshot().counter("hits"), 3);
    }

    #[test]
    fn snapshot_captures_all_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("a.count").add(5);
        reg.gauge("b.depth").set(-2);
        reg.histogram("c.lat").record(1_000);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a.count"), 5);
        assert_eq!(snap.gauge("b.depth"), -2);
        assert_eq!(snap.histogram("c.lat").unwrap().count, 1);
        assert_eq!(snap.counter("missing"), 0);
        assert!(snap.histogram("missing").is_none());
    }

    #[test]
    fn text_exposition_is_stable_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last").inc();
        reg.counter("a.first").inc();
        reg.gauge("depth").set(4);
        reg.histogram("lat").record(10);
        let text = reg.snapshot().to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "counter a.first 1");
        assert_eq!(lines[1], "counter z.last 1");
        assert_eq!(lines[2], "gauge depth 4");
        assert!(lines[3].starts_with("histogram lat count=1 "));
        assert_eq!(reg.snapshot().to_string(), text);
    }

    #[test]
    fn text_exposition_golden() {
        let reg = MetricsRegistry::new();
        reg.counter("bus.published").add(42);
        reg.gauge("bus.queue_depth").set(3);
        let h = reg.histogram("stage.consent");
        h.record(500); // bucket le511
        h.record(500);
        h.record(900); // bucket le1023
        assert_eq!(
            reg.snapshot().to_text(),
            "counter bus.published 42\n\
             gauge bus.queue_depth 3\n\
             histogram stage.consent count=3 mean_ns=633 p50_ns=511 p90_ns=900 \
             p99_ns=900 max_ns=900 buckets=le511:2,le1023:1\n"
        );
        // Deterministic: the same state renders byte-identically.
        assert_eq!(reg.snapshot().to_text(), reg.snapshot().to_text());
    }

    /// A panic while holding a registry lock must not take the ops
    /// plane down with it: the maps stay valid (get-or-create inserts
    /// are atomic from the map's perspective), so the registry recovers
    /// the poisoned lock and keeps serving instruments and snapshots.
    #[test]
    fn poisoned_lock_still_registers_and_snapshots() {
        let reg = MetricsRegistry::new();
        reg.counter("before.poison").add(5);
        // Poison all three name-map locks by panicking while each is
        // held (a handle resolution is in flight when the panic hits).
        let clone = reg.clone();
        std::thread::spawn(move || {
            let _counters = clone.inner.counters.lock().unwrap();
            let _gauges = clone.inner.gauges.lock().unwrap();
            let _histograms = clone.inner.histograms.lock().unwrap();
            panic!("poison the telemetry locks");
        })
        .join()
        .unwrap_err();
        assert!(reg.inner.counters.lock().is_err(), "lock must be poisoned");

        // Every operation still works.
        reg.counter("before.poison").inc();
        reg.counter("after.poison").add(2);
        reg.gauge("depth").set(3);
        reg.histogram("lat").record(100);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("before.poison"), 6);
        assert_eq!(snap.counter("after.poison"), 2);
        assert_eq!(snap.gauge("depth"), 3);
        assert_eq!(snap.histogram("lat").unwrap().count, 1);
    }

    #[test]
    fn text_exposition_renders_overflow_bucket_as_inf() {
        let reg = MetricsRegistry::new();
        reg.histogram("lat").record(u64::MAX);
        let text = reg.snapshot().to_text();
        assert!(text.contains("buckets=leinf:1"), "{text}");
    }
}
