//! End-to-end tests of the Data Controller pipeline: onboarding,
//! declaration, policy definition, subscription gating, publishing,
//! routing, detail requests (Algorithm 1), consent, and audit.

use std::sync::Arc;

use css_audit::{AuditAction, AuditQuery};
use css_controller::{
    ConsentDecision, ConsentScope, ControllerConfig, DataController, ParticipantRole, SharedGateway,
};
use css_event::{DetailMessage, EventDetails, EventSchema, FieldDef, FieldKind, FieldValue};
use css_gateway::LocalCooperationGateway;
use css_policy::PrivacyPolicy;
use css_storage::MemBackend;
use css_types::{
    Actor, ActorId, Clock, CssError, DenyReason, EventTypeId, PersonId, PersonIdentity, Purpose,
    SimClock, SourceEventId, Timestamp,
};
use parking_lot::Mutex;

const HOSPITAL: ActorId = ActorId(1);
const LABORATORY: ActorId = ActorId(2);
const DOCTOR: ActorId = ActorId(3);
const WELFARE: ActorId = ActorId(4);
const GOVERNANCE: ActorId = ActorId(5);

struct World {
    controller: DataController<MemBackend>,
    gateway: SharedGateway<MemBackend>,
    clock: SimClock,
}

fn blood_test_schema() -> EventSchema {
    EventSchema::new(EventTypeId::v1("blood-test"), "Blood Test", HOSPITAL)
        .field(FieldDef::required("PatientId", FieldKind::Integer))
        .field(FieldDef::required("Result", FieldKind::Text).sensitive())
        .field(FieldDef::optional("HivResult", FieldKind::Text).sensitive())
}

fn mario() -> PersonIdentity {
    PersonIdentity {
        id: PersonId(42),
        fiscal_code: "RSSMRA45C12L378Y".into(),
        name: "Mario".into(),
        surname: "Rossi".into(),
    }
}

fn setup() -> World {
    let clock = SimClock::starting_at(Timestamp(1_000_000));
    let config = ControllerConfig::with_clock(Arc::new(clock.clone()));
    let c = DataController::new(config, MemBackend::new()).unwrap();

    c.register_actor(Actor::organization(HOSPITAL, "Hospital S. Maria"))
        .unwrap();
    c.register_actor(Actor::unit(LABORATORY, "Laboratory", HOSPITAL))
        .unwrap();
    c.register_actor(Actor::organization(DOCTOR, "Family Doctor Bianchi"))
        .unwrap();
    c.register_actor(Actor::organization(WELFARE, "Social Welfare Dept"))
        .unwrap();
    c.register_actor(Actor::organization(GOVERNANCE, "Provincial Governance"))
        .unwrap();

    c.sign_contract(HOSPITAL, ParticipantRole::Producer)
        .unwrap();
    c.sign_contract(DOCTOR, ParticipantRole::Consumer).unwrap();
    c.sign_contract(WELFARE, ParticipantRole::Consumer).unwrap();

    let mut gw = LocalCooperationGateway::open(HOSPITAL, MemBackend::new()).unwrap();
    gw.register_schema(blood_test_schema()).unwrap();
    let gateway: SharedGateway<MemBackend> = Arc::new(Mutex::new(gw));
    c.register_gateway(HOSPITAL, Box::new(gateway.clone()));

    c.declare_event_class(&blood_test_schema(), Some("health/laboratory"))
        .unwrap();

    World {
        controller: c,
        gateway,
        clock,
    }
}

fn doctor_policy(w: &World) -> PrivacyPolicy {
    PrivacyPolicy::new(
        w.controller.next_policy_id(),
        HOSPITAL,
        DOCTOR,
        EventTypeId::v1("blood-test"),
        [Purpose::HealthcareTreatment],
        ["PatientId".to_string(), "Result".to_string()],
    )
    .labeled("doctor-bt", "family doctor access to blood tests")
}

/// Persist a detail message at the gateway and publish its notification.
fn publish_event(w: &mut World, src: u64) -> css_types::GlobalEventId {
    let details = EventDetails::new(EventTypeId::v1("blood-test"))
        .with("PatientId", FieldValue::Integer(42))
        .with("Result", FieldValue::Text("negative".into()))
        .with("HivResult", FieldValue::Text("negative".into()));
    w.gateway
        .lock()
        .persist(&DetailMessage {
            src_event_id: SourceEventId(src),
            producer: HOSPITAL,
            details,
        })
        .unwrap();
    let receipt = w
        .controller
        .publish(
            HOSPITAL,
            mario(),
            "blood test completed".into(),
            EventTypeId::v1("blood-test"),
            w.clock.now(),
            SourceEventId(src),
            None,
        )
        .unwrap();
    receipt.global_id
}

#[test]
fn subscription_denied_without_policy() {
    let w = setup();
    let err = w
        .controller
        .subscribe(DOCTOR, &EventTypeId::v1("blood-test"))
        .unwrap_err();
    assert_eq!(err, CssError::AccessDenied(DenyReason::NoMatchingPolicy));
    // The denial is audited.
    let denied = w.controller.audit_query(
        &AuditQuery::new()
            .action(AuditAction::Subscribe)
            .denied_only(),
    );
    assert_eq!(denied.len(), 1);
}

#[test]
fn full_two_phase_flow() {
    let mut w = setup();
    w.controller.define_policy(doctor_policy(&w)).unwrap();
    let sub = w
        .controller
        .subscribe(DOCTOR, &EventTypeId::v1("blood-test"))
        .unwrap();

    let eid = publish_event(&mut w, 1);

    // Phase 1: the doctor receives the notification (who/what/when/where).
    let notifications = sub.drain().unwrap();
    assert_eq!(notifications.len(), 1);
    let n = &notifications[0];
    assert_eq!(n.global_id, eid);
    assert_eq!(n.person.surname, "Rossi");

    // Phase 2: months later, the doctor requests the details.
    w.clock.advance(css_types::Duration::days(60));
    let response = w
        .controller
        .request_details(
            DOCTOR,
            EventTypeId::v1("blood-test"),
            eid,
            Purpose::HealthcareTreatment,
        )
        .unwrap();
    assert!(response.is_privacy_safe());
    assert_eq!(
        response.details.get("Result").unwrap(),
        &FieldValue::Text("negative".into())
    );
    // The sensitive HIV field was never in F → blanked.
    assert_eq!(
        response.details.get("HivResult").unwrap(),
        &FieldValue::Empty
    );
}

#[test]
fn detail_request_denied_for_wrong_purpose() {
    let mut w = setup();
    w.controller.define_policy(doctor_policy(&w)).unwrap();
    let _sub = w
        .controller
        .subscribe(DOCTOR, &EventTypeId::v1("blood-test"))
        .unwrap();
    let eid = publish_event(&mut w, 1);
    let err = w
        .controller
        .request_details(
            DOCTOR,
            EventTypeId::v1("blood-test"),
            eid,
            Purpose::StatisticalAnalysis,
        )
        .unwrap_err();
    assert_eq!(err, CssError::AccessDenied(DenyReason::PurposeNotAllowed));
}

#[test]
fn detail_request_denied_without_notification() {
    let mut w = setup();
    w.controller.define_policy(doctor_policy(&w)).unwrap();
    // Doctor is authorized but never subscribed nor inquired: publishing
    // happens before any notification reaches them.
    let eid = publish_event(&mut w, 1);
    let err = w
        .controller
        .request_details(
            DOCTOR,
            EventTypeId::v1("blood-test"),
            eid,
            Purpose::HealthcareTreatment,
        )
        .unwrap_err();
    assert_eq!(err, CssError::AccessDenied(DenyReason::NotNotified));
}

#[test]
fn index_inquiry_counts_as_notification() {
    let mut w = setup();
    w.controller.define_policy(doctor_policy(&w)).unwrap();
    let eid = publish_event(&mut w, 1);
    // The doctor inquires the index instead of subscribing.
    let found = w
        .controller
        .inquire_by_person(DOCTOR, PersonId(42))
        .unwrap();
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].global_id, eid);
    // Now the detail request is allowed.
    let response = w
        .controller
        .request_details(
            DOCTOR,
            EventTypeId::v1("blood-test"),
            eid,
            Purpose::HealthcareTreatment,
        )
        .unwrap();
    assert!(response.is_privacy_safe());
}

#[test]
fn inquiry_filters_unauthorized_consumers() {
    let mut w = setup();
    w.controller.define_policy(doctor_policy(&w)).unwrap();
    publish_event(&mut w, 1);
    // Welfare has a contract but no policy for blood tests.
    let found = w
        .controller
        .inquire_by_person(WELFARE, PersonId(42))
        .unwrap();
    assert!(found.is_empty());
}

#[test]
fn expired_policy_blocks_new_requests() {
    let mut w = setup();
    let policy = doctor_policy(&w).valid(css_policy::ValidityWindow::until(
        w.clock.now().plus(css_types::Duration::days(30)),
    ));
    w.controller.define_policy(policy).unwrap();
    let _sub = w
        .controller
        .subscribe(DOCTOR, &EventTypeId::v1("blood-test"))
        .unwrap();
    let eid = publish_event(&mut w, 1);
    // Within validity: permitted.
    assert!(w
        .controller
        .request_details(
            DOCTOR,
            EventTypeId::v1("blood-test"),
            eid,
            Purpose::HealthcareTreatment
        )
        .is_ok());
    // After expiry: denied.
    w.clock.advance(css_types::Duration::days(31));
    let err = w
        .controller
        .request_details(
            DOCTOR,
            EventTypeId::v1("blood-test"),
            eid,
            Purpose::HealthcareTreatment,
        )
        .unwrap_err();
    assert_eq!(err, CssError::AccessDenied(DenyReason::PolicyExpired));
}

#[test]
fn revoked_policy_blocks_requests() {
    let mut w = setup();
    let policy = doctor_policy(&w);
    let pid = policy.id;
    w.controller.define_policy(policy).unwrap();
    let _sub = w
        .controller
        .subscribe(DOCTOR, &EventTypeId::v1("blood-test"))
        .unwrap();
    let eid = publish_event(&mut w, 1);
    w.controller.revoke_policy(HOSPITAL, pid).unwrap();
    let err = w
        .controller
        .request_details(
            DOCTOR,
            EventTypeId::v1("blood-test"),
            eid,
            Purpose::HealthcareTreatment,
        )
        .unwrap_err();
    assert!(matches!(err, CssError::AccessDenied(_)));
}

#[test]
fn opt_out_blocks_publication() {
    let w = setup();
    w.controller.define_policy(doctor_policy(&w)).unwrap();
    w.controller
        .record_consent(PersonId(42), ConsentScope::All, ConsentDecision::OptOut)
        .unwrap();
    let details = EventDetails::new(EventTypeId::v1("blood-test"))
        .with("PatientId", FieldValue::Integer(42))
        .with("Result", FieldValue::Text("negative".into()));
    w.gateway
        .lock()
        .persist(&DetailMessage {
            src_event_id: SourceEventId(1),
            producer: HOSPITAL,
            details,
        })
        .unwrap();
    let err = w
        .controller
        .publish(
            HOSPITAL,
            mario(),
            "blood test".into(),
            EventTypeId::v1("blood-test"),
            w.clock.now(),
            SourceEventId(1),
            None,
        )
        .unwrap_err();
    assert!(matches!(err, CssError::ConsentWithheld(_)));
    assert_eq!(w.controller.index_len(), 0);
}

#[test]
fn opt_out_after_publication_blocks_details() {
    let mut w = setup();
    w.controller.define_policy(doctor_policy(&w)).unwrap();
    let _sub = w
        .controller
        .subscribe(DOCTOR, &EventTypeId::v1("blood-test"))
        .unwrap();
    let eid = publish_event(&mut w, 1);
    w.controller
        .record_consent(
            PersonId(42),
            ConsentScope::Producer(HOSPITAL),
            ConsentDecision::OptOut,
        )
        .unwrap();
    let err = w
        .controller
        .request_details(
            DOCTOR,
            EventTypeId::v1("blood-test"),
            eid,
            Purpose::HealthcareTreatment,
        )
        .unwrap_err();
    assert_eq!(err, CssError::AccessDenied(DenyReason::ConsentWithheld));
}

#[test]
fn laboratory_covered_by_hospital_grant() {
    let mut w = setup();
    // Policy granted to the governance covering a consumer hierarchy:
    // here grant DOCTOR's events? Instead grant to HOSPITAL-side: use
    // WELFARE with a unit.
    let unit = ActorId(40);
    w.controller
        .register_actor(Actor::unit(unit, "Elderly Care Office", WELFARE))
        .unwrap();
    let policy = PrivacyPolicy::new(
        w.controller.next_policy_id(),
        HOSPITAL,
        WELFARE, // granted at the organization level
        EventTypeId::v1("blood-test"),
        [Purpose::SocialAssistance],
        ["PatientId".to_string()],
    );
    w.controller.define_policy(policy).unwrap();
    // The *unit* subscribes: covered by the organization grant.
    let sub = w
        .controller
        .subscribe(unit, &EventTypeId::v1("blood-test"))
        .unwrap();
    let eid = publish_event(&mut w, 1);
    assert_eq!(sub.drain().unwrap().len(), 1);
    let response = w
        .controller
        .request_details(
            unit,
            EventTypeId::v1("blood-test"),
            eid,
            Purpose::SocialAssistance,
        )
        .unwrap();
    assert_eq!(
        response.details.get("PatientId").unwrap(),
        &FieldValue::Integer(42)
    );
    // Result was not granted to welfare: blanked.
    assert_eq!(response.details.get("Result").unwrap(), &FieldValue::Empty);
}

#[test]
fn policy_validation_rejects_bad_definitions() {
    let w = setup();
    // Unknown field.
    let bad_field = PrivacyPolicy::new(
        w.controller.next_policy_id(),
        HOSPITAL,
        DOCTOR,
        EventTypeId::v1("blood-test"),
        [Purpose::HealthcareTreatment],
        ["Nonexistent".to_string()],
    );
    assert!(matches!(
        w.controller.define_policy(bad_field),
        Err(CssError::Invalid(_))
    ));
    // Foreign producer cannot protect the hospital's class.
    w.controller
        .sign_contract(WELFARE, ParticipantRole::Both)
        .unwrap();
    let foreign = PrivacyPolicy::new(
        w.controller.next_policy_id(),
        WELFARE,
        DOCTOR,
        EventTypeId::v1("blood-test"),
        [Purpose::HealthcareTreatment],
        ["PatientId".to_string()],
    );
    assert!(matches!(
        w.controller.define_policy(foreign),
        Err(CssError::Invalid(_))
    ));
    // Undeclared event class.
    let unknown_type = PrivacyPolicy::new(
        w.controller.next_policy_id(),
        HOSPITAL,
        DOCTOR,
        EventTypeId::v1("urine-test"),
        [Purpose::HealthcareTreatment],
        [],
    );
    assert!(matches!(
        w.controller.define_policy(unknown_type),
        Err(CssError::NotFound(_))
    ));
}

#[test]
fn contracts_gate_every_role() {
    let w = setup();
    // Governance never signed a contract.
    assert!(matches!(
        w.controller
            .subscribe(GOVERNANCE, &EventTypeId::v1("blood-test")),
        Err(CssError::NoContract(_))
    ));
    // Doctor (consumer) cannot declare event classes.
    let schema = EventSchema::new(EventTypeId::v1("visit"), "Visit", DOCTOR);
    assert!(matches!(
        w.controller.declare_event_class(&schema, None),
        Err(CssError::NoContract(_))
    ));
}

#[test]
fn audit_trail_is_complete_and_verifiable() {
    let mut w = setup();
    w.controller.define_policy(doctor_policy(&w)).unwrap();
    let _sub = w
        .controller
        .subscribe(DOCTOR, &EventTypeId::v1("blood-test"))
        .unwrap();
    let eid = publish_event(&mut w, 1);
    let _ = w.controller.request_details(
        DOCTOR,
        EventTypeId::v1("blood-test"),
        eid,
        Purpose::HealthcareTreatment,
    );
    let _ = w.controller.request_details(
        DOCTOR,
        EventTypeId::v1("blood-test"),
        eid,
        Purpose::StatisticalAnalysis,
    );
    w.controller.verify_audit().unwrap();
    // Who accessed Mario's data and why?
    let about_mario = w
        .controller
        .audit_query(&AuditQuery::new().person(PersonId(42)));
    assert!(about_mario.len() >= 3); // publish, delivery, detail requests
    let report = w.controller.audit_report(&AuditQuery::new());
    assert_eq!(report.action_count(AuditAction::Publish), 1);
    assert_eq!(report.action_count(AuditAction::DetailRequest), 2);
    assert_eq!(report.denied, 1);
    // Chain head changes as records accrue.
    let head = w.controller.audit_head();
    w.controller
        .record_consent(PersonId(42), ConsentScope::All, ConsentDecision::OptIn)
        .unwrap();
    assert_ne!(w.controller.audit_head(), head);
}

#[test]
fn wrong_declared_type_rejected() {
    let mut w = setup();
    w.controller.define_policy(doctor_policy(&w)).unwrap();
    let _sub = w
        .controller
        .subscribe(DOCTOR, &EventTypeId::v1("blood-test"))
        .unwrap();
    // Declare a second class to use as the wrong type.
    let other = EventSchema::new(EventTypeId::v1("discharge"), "Discharge", HOSPITAL)
        .field(FieldDef::required("PatientId", FieldKind::Integer));
    w.controller.declare_event_class(&other, None).unwrap();
    let eid = publish_event(&mut w, 1);
    let err = w
        .controller
        .request_details(
            DOCTOR,
            EventTypeId::v1("discharge"),
            eid,
            Purpose::HealthcareTreatment,
        )
        .unwrap_err();
    assert!(matches!(err, CssError::Invalid(_)));
}

#[test]
fn multiple_subscribers_fan_out() {
    let mut w = setup();
    w.controller.define_policy(doctor_policy(&w)).unwrap();
    let welfare_policy = PrivacyPolicy::new(
        w.controller.next_policy_id(),
        HOSPITAL,
        WELFARE,
        EventTypeId::v1("blood-test"),
        [Purpose::SocialAssistance],
        ["PatientId".to_string()],
    );
    w.controller.define_policy(welfare_policy).unwrap();
    let doc_sub = w
        .controller
        .subscribe(DOCTOR, &EventTypeId::v1("blood-test"))
        .unwrap();
    let welfare_sub = w
        .controller
        .subscribe(WELFARE, &EventTypeId::v1("blood-test"))
        .unwrap();
    let receipt_id = publish_event(&mut w, 1);
    assert_eq!(doc_sub.drain().unwrap().len(), 1);
    assert_eq!(welfare_sub.drain().unwrap().len(), 1);
    // Both orgs may now request details; each sees only their fields.
    let doc_resp = w
        .controller
        .request_details(
            DOCTOR,
            EventTypeId::v1("blood-test"),
            receipt_id,
            Purpose::HealthcareTreatment,
        )
        .unwrap();
    let welfare_resp = w
        .controller
        .request_details(
            WELFARE,
            EventTypeId::v1("blood-test"),
            receipt_id,
            Purpose::SocialAssistance,
        )
        .unwrap();
    assert!(doc_resp.allowed_fields.contains("Result"));
    assert!(!welfare_resp.allowed_fields.contains("Result"));
}
