//! Shard-count transparency: a sharded controller must be
//! observationally equivalent to a single-shard one.
//!
//! The property drives the *same* random interleaving of publishes,
//! person inquiries, detail requests, and policy revocations/restores
//! against a 1-shard and an 8-shard controller and asserts that every
//! observable output matches step by step: publish receipts, inquiry
//! result sets (scatter-gather must preserve the single-index
//! ordering), allow/deny decisions on detail requests (the segmented
//! decision cache must honor the global revocation generation), the
//! full audit record stream (global sequencer order), and chain
//! verification.

use std::sync::Arc;

use css_audit::AuditQuery;
use css_controller::{ControllerConfig, DataController, ParticipantRole, SharedGateway};
use css_event::{DetailMessage, EventDetails, EventSchema, FieldDef, FieldKind, FieldValue};
use css_gateway::LocalCooperationGateway;
use css_policy::PrivacyPolicy;
use css_storage::MemBackend;
use css_types::{
    Actor, ActorId, EventTypeId, GlobalEventId, PersonId, PersonIdentity, PolicyId, Purpose,
    SimClock, SourceEventId, Timestamp,
};
use parking_lot::Mutex;
use proptest::prelude::*;

const HOSPITAL: ActorId = ActorId(1);
const DOCTOR: ActorId = ActorId(100);
const WELFARE: ActorId = ActorId(101);
const PERSONS: u64 = 20;

fn schema() -> EventSchema {
    EventSchema::new(EventTypeId::v1("blood-test"), "Blood Test", HOSPITAL)
        .field(FieldDef::required("PatientId", FieldKind::Integer))
        .field(FieldDef::required("Result", FieldKind::Text).sensitive())
}

fn details(person: u64) -> EventDetails {
    EventDetails::new(EventTypeId::v1("blood-test"))
        .with("PatientId", FieldValue::Integer(person as i64))
        .with("Result", FieldValue::Text("negative".into()))
}

fn person(id: u64) -> PersonIdentity {
    PersonIdentity {
        id: PersonId(id),
        fiscal_code: format!("FC{id:014}"),
        name: "Mario".into(),
        surname: "Rossi".into(),
    }
}

fn policy(id: u64, consumer: ActorId) -> PrivacyPolicy {
    PrivacyPolicy::new(
        PolicyId(id),
        HOSPITAL,
        consumer,
        EventTypeId::v1("blood-test"),
        [Purpose::HealthcareTreatment],
        ["PatientId", "Result"].map(String::from),
    )
}

struct World {
    controller: DataController<MemBackend>,
    gateway: SharedGateway<MemBackend>,
}

fn world(shards: usize) -> World {
    let clock = SimClock::starting_at(Timestamp(1_000_000));
    let config = ControllerConfig::with_clock(Arc::new(clock)).with_shards(shards);
    let controller = DataController::new(config, MemBackend::new()).unwrap();
    controller
        .register_actor(Actor::organization(HOSPITAL, "Hospital"))
        .unwrap();
    controller
        .register_actor(Actor::organization(DOCTOR, "Family Doctor"))
        .unwrap();
    controller
        .register_actor(Actor::organization(WELFARE, "Social Welfare"))
        .unwrap();
    controller
        .sign_contract(HOSPITAL, ParticipantRole::Producer)
        .unwrap();
    controller
        .sign_contract(DOCTOR, ParticipantRole::Consumer)
        .unwrap();
    controller
        .sign_contract(WELFARE, ParticipantRole::Consumer)
        .unwrap();
    let mut gw = LocalCooperationGateway::open(HOSPITAL, MemBackend::new()).unwrap();
    gw.register_schema(schema()).unwrap();
    let gateway: SharedGateway<MemBackend> = Arc::new(Mutex::new(gw));
    controller.register_gateway(HOSPITAL, Box::new(gateway.clone()));
    controller
        .declare_event_class(&schema(), Some("health/laboratory"))
        .unwrap();
    controller.define_policy(policy(1, DOCTOR)).unwrap();
    controller.define_policy(policy(2, WELFARE)).unwrap();
    World {
        controller,
        gateway,
    }
}

/// One interpreted step against a world; the return value is the
/// observation the two worlds must agree on.
fn step(w: &World, op: u8, x: u64, src: &mut u64, published: &mut Vec<GlobalEventId>) -> String {
    let ty = EventTypeId::v1("blood-test");
    match op {
        // Publish an event about citizen `x` (fresh source id).
        0 | 1 => {
            *src += 1;
            w.gateway
                .lock()
                .persist(&DetailMessage {
                    src_event_id: SourceEventId(*src),
                    producer: HOSPITAL,
                    details: details(x),
                })
                .unwrap();
            let r = w.controller.publish(
                HOSPITAL,
                person(x),
                "blood test completed".into(),
                ty,
                Timestamp(2_000_000 + *src),
                SourceEventId(*src),
                None,
            );
            if let Ok(receipt) = &r {
                published.push(receipt.global_id);
            }
            format!("{r:?}")
        }
        // Inquire citizen `x` as the doctor.
        2 => format!("{:?}", w.controller.inquire_by_person(DOCTOR, PersonId(x))),
        // Request details of a published event; consumer by parity, so
        // the revoke toggle below flips these between allow and deny.
        3 => {
            if published.is_empty() {
                return "skip".into();
            }
            let id = published[(x % published.len() as u64) as usize];
            let consumer = if x.is_multiple_of(2) { DOCTOR } else { WELFARE };
            format!(
                "{:?}",
                w.controller
                    .request_details(consumer, ty, id, Purpose::HealthcareTreatment)
            )
        }
        // Toggle the doctor's policy: revoke on even, restore on odd.
        _ => {
            if x.is_multiple_of(2) {
                format!("{:?}", w.controller.revoke_policy(HOSPITAL, PolicyId(1)))
            } else {
                w.controller.restore_policy(policy(1, DOCTOR));
                "restored".into()
            }
        }
    }
}

proptest! {
    /// Random publish / inquiry / detail-request / revoke interleavings
    /// observe identical behavior on 1-shard and 8-shard controllers.
    #[test]
    fn sharded_controller_is_observationally_equivalent(
        ops in proptest::collection::vec((0u8..5, 1u64..200), 1..80),
    ) {
        let single = world(1);
        let sharded = world(8);
        prop_assert_eq!(single.controller.shard_count(), 1);
        prop_assert_eq!(sharded.controller.shard_count(), 8);

        let (mut src_a, mut src_b) = (0u64, 0u64);
        let (mut pub_a, mut pub_b) = (Vec::new(), Vec::new());
        for (op, raw) in ops {
            let x = raw % PERSONS + 1;
            // `raw` (not `x`) picks detail-request targets and the
            // revoke/restore direction so they cover the full range.
            let arg = if op >= 3 { raw } else { x };
            let a = step(&single, op, arg, &mut src_a, &mut pub_a);
            let b = step(&sharded, op, arg, &mut src_b, &mut pub_b);
            prop_assert_eq!(a, b);
        }

        // Every citizen's inquiry comes back identical — scatter-gather
        // across shards must reproduce the single-index ordering.
        for p in 1..=PERSONS {
            let a = single.controller.inquire_by_person(DOCTOR, PersonId(p));
            let b = sharded.controller.inquire_by_person(DOCTOR, PersonId(p));
            prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }

        // The audit streams match record for record (global seq order),
        // and both sharded chains verify.
        let audit_a = single.controller.audit_query(&AuditQuery::new());
        let audit_b = sharded.controller.audit_query(&AuditQuery::new());
        prop_assert_eq!(format!("{audit_a:?}"), format!("{audit_b:?}"));
        prop_assert!(single.controller.verify_audit().is_ok());
        prop_assert!(sharded.controller.verify_audit().is_ok());
        prop_assert_eq!(single.controller.index_len(), sharded.controller.index_len());
        prop_assert_eq!(
            single.controller.index_len(),
            sharded.controller.index_shard_lens().iter().sum::<usize>()
        );
    }
}
