//! The controller-side view of a producer's gateway.
//!
//! In the deployed system the data controller reaches each Local
//! Cooperation Gateway through a web-service invocation; here the
//! boundary is a trait so the controller never holds producer data
//! structures directly — only the narrow `getResponse` interface of
//! Algorithm 2 crosses it.

use std::collections::BTreeSet;
use std::sync::Arc;

use css_event::EventDetails;
use css_gateway::LocalCooperationGateway;
use css_storage::LogBackend;
use css_trace::TraceContext;
use css_types::{CssResult, SourceEventId};
use parking_lot::Mutex;

/// What the data controller may ask of a producer's gateway.
///
/// `Send + Sync` because the controller shares registered gateways
/// across its data-plane threads (an `Arc<dyn GatewayClient>` is
/// cloned out of the registry before the unlocked network call).
pub trait GatewayClient: Send + Sync {
    /// Algorithm 2: the field-filtered details of one event. When `ctx`
    /// is given the endpoint continues the caller's trace; an endpoint
    /// that cannot carry spans may ignore it.
    fn get_response(
        &self,
        src_event_id: SourceEventId,
        allowed: &BTreeSet<String>,
        ctx: Option<&TraceContext>,
    ) -> CssResult<EventDetails>;

    /// [`GatewayClient::get_response`] under its pre-consolidation name.
    #[deprecated(note = "use get_response with an optional TraceContext")]
    fn get_response_traced(
        &self,
        src_event_id: SourceEventId,
        allowed: &BTreeSet<String>,
        ctx: Option<&TraceContext>,
    ) -> CssResult<EventDetails> {
        self.get_response(src_event_id, allowed, ctx)
    }
}

/// A shareable in-process gateway endpoint.
pub type SharedGateway<B> = Arc<Mutex<LocalCooperationGateway<B>>>;

impl<B: LogBackend> GatewayClient for SharedGateway<B> {
    fn get_response(
        &self,
        src_event_id: SourceEventId,
        allowed: &BTreeSet<String>,
        ctx: Option<&TraceContext>,
    ) -> CssResult<EventDetails> {
        self.lock().get_response(src_event_id, allowed, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use css_event::{DetailMessage, EventSchema, FieldDef, FieldKind, FieldValue};
    use css_storage::MemBackend;
    use css_types::{ActorId, EventTypeId};

    #[test]
    fn shared_gateway_implements_client() {
        let mut gw = LocalCooperationGateway::open(ActorId(1), MemBackend::new()).unwrap();
        let schema = EventSchema::new(EventTypeId::v1("x"), "X", ActorId(1))
            .field(FieldDef::required("A", FieldKind::Text))
            .field(FieldDef::required("B", FieldKind::Text));
        gw.register_schema(schema).unwrap();
        gw.persist(&DetailMessage {
            src_event_id: SourceEventId(1),
            producer: ActorId(1),
            details: css_event::EventDetails::new(EventTypeId::v1("x"))
                .with("A", FieldValue::Text("visible".into()))
                .with("B", FieldValue::Text("hidden".into())),
        })
        .unwrap();
        let shared: SharedGateway<MemBackend> = Arc::new(Mutex::new(gw));
        let client: &dyn GatewayClient = &shared;
        let allowed: BTreeSet<String> = ["A".to_string()].into_iter().collect();
        let details = client
            .get_response(SourceEventId(1), &allowed, None)
            .unwrap();
        assert_eq!(
            details.get("A").unwrap(),
            &FieldValue::Text("visible".into())
        );
        assert_eq!(details.get("B").unwrap(), &FieldValue::Empty);
    }
}
