//! The Policy Enforcement Point — Algorithm 1.
//!
//! `GETEVENTDETAILS(R) → e` with `R = {a, τ_e, eID, s}`:
//!
//! 1. `src_eID ← retrieveEventProducerId(eID)` — the PIP mapping,
//!    resolved against the events index;
//! 2. `⟨A, e_j, S, F⟩ ← matchingPolicy(R)` — the PDP finds matching
//!    policies;
//! 3. if the evaluation permits, ask the producer's gateway for
//!    `getResponse(src_eID, F)` — only the allowed fields ever leave
//!    the producer;
//! 4. otherwise return *deny* (an Access Denied message).
//!
//! On top of the literal algorithm the PEP enforces two deployment
//! preconditions: the requester must have **been notified** of the event
//! (the notification "is a pre-requisite to issue the request for
//! details"), and the data subject must not have **opted out**.
//! Every request — permitted or denied — is written to the audit log.
//!
//! The PEP borrows the controller's sharded planes and locked
//! registries; it takes each registry read guard only for the stage
//! that needs it (pdp before actors when both are held) and clones the
//! gateway handle out of its registry before the network call, so no
//! lock spans producer I/O.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use css_audit::{AuditAction, AuditRecord, AuditShards};
use css_event::PrivacyAwareEvent;
use css_policy::{Decision, DetailRequest, PolicyDecisionPoint};
use css_storage::LogBackend;
use css_telemetry::{MetricsRegistry, StageTimer};
use css_trace::{SpanAttr, SpanStatus, TraceContext};
use css_types::{ActorId, ActorRegistry, CssError, CssResult, DenyReason, Timestamp};

use crate::consent::ConsentRegistry;
use crate::gateway_client::GatewayClient;
use crate::shards::IndexShards;

/// A per-request enforcement context borrowing the controller's parts.
pub struct PolicyEnforcementPoint<'a, B: LogBackend> {
    /// Sharded events index (PIP + notified-set).
    pub index: &'a IndexShards<B>,
    /// Policy decision point.
    pub pdp: &'a RwLock<PolicyDecisionPoint>,
    /// Organizational hierarchy.
    pub actors: &'a RwLock<ActorRegistry>,
    /// Data-subject consent.
    pub consent: &'a RwLock<ConsentRegistry>,
    /// Sharded audit plane (every request is recorded).
    pub audit: &'a AuditShards<B>,
    /// Producer gateways, keyed by producer organization.
    pub gateways: &'a RwLock<HashMap<ActorId, Arc<dyn GatewayClient>>>,
    /// Per-stage latency histograms (`stage.*`) and request counters.
    pub telemetry: &'a MetricsRegistry,
    /// Causal trace of the enclosing detail request; each Algorithm 1
    /// stage becomes a child span, and the trace id is stamped into the
    /// audit record. Disabled context when tracing is off.
    pub trace: TraceContext,
    /// Evaluation instant.
    pub now: Timestamp,
}

impl<'a, B: LogBackend> PolicyEnforcementPoint<'a, B> {
    /// Algorithm 1. Returns the privacy-aware event on permit.
    ///
    /// Each stage records its latency into a `stage.*` histogram; a
    /// denied or failed request records only the stages it reached
    /// (plus the `controller.detail_denies` counter and, via the
    /// timer's drop guard, `stage.partial` and `stage.total`), a
    /// permitted one records all six and `stage.total`.
    pub fn get_event_details(&self, request: &DetailRequest) -> CssResult<PrivacyAwareEvent> {
        self.telemetry.counter("controller.detail_requests").inc();
        let denies = self.telemetry.counter("controller.detail_denies");
        let mut timer = StageTimer::start(self.telemetry, "stage");
        let trace_id = self.trace.trace_id();
        if let Some(t) = trace_id {
            // Exemplar: whichever bucket this pass lands in keeps the
            // trace id, so a p99 outlier joins back to its span tree.
            timer.exemplar(t.value(), self.now.0);
        }
        let audit_base = || {
            AuditRecord::new(self.now, request.actor, AuditAction::DetailRequest)
                .event(request.event_id)
                .event_type(request.event_type.clone())
                .purpose(request.purpose.clone())
                .request(request.request_id)
                .trace(trace_id)
        };

        // Step 1 — PIP: eID → (producer, src_eID, type).
        let mut span = self.trace.child("pep.pip_resolve");
        let (producer, src_event_id, indexed_type) =
            match self.index.resolve_source(request.event_id) {
                Ok(t) => t,
                Err(e) => {
                    timer.stage("pip_resolve");
                    span.set_status(SpanStatus::Error);
                    denies.inc();
                    self.audit
                        .append(audit_base().denied("event not found in index"))?;
                    return Err(e);
                }
            };
        if indexed_type != request.event_type {
            timer.stage("pip_resolve");
            span.set_status(SpanStatus::Denied);
            denies.inc();
            self.audit
                .append(audit_base().denied("declared event type mismatch"))?;
            return Err(CssError::Invalid(format!(
                "request declares type {} but event {} is a {}",
                request.event_type, request.event_id, indexed_type
            )));
        }
        timer.stage("pip_resolve");
        span.finish();

        // Precondition: the requester (or an enclosing organization)
        // received the notification. The ancestor chain is resolved
        // first so one shard probe covers the whole check.
        let mut span = self.trace.child("pep.notified_check");
        let ancestors = self.actors.read().ancestors(request.actor);
        let notified = self
            .index
            .was_notified_any(request.event_id, request.actor, &ancestors);
        timer.stage("notified_check");
        if !notified {
            span.set_status(SpanStatus::Denied);
            denies.inc();
            self.audit
                .append(audit_base().denied(DenyReason::NotNotified.to_string()))?;
            return Err(CssError::AccessDenied(DenyReason::NotNotified));
        }
        span.finish();

        // Precondition: data-subject consent (needs the person id, so
        // the controller unseals the identity it sealed at publish time).
        let mut span = self.trace.child("pep.consent_check");
        let notification = self.index.decrypt_notification(request.event_id)?;
        let consented =
            self.consent
                .read()
                .allows(notification.person.id, producer, &request.event_type);
        timer.stage("consent_check");
        if !consented {
            span.set_status(SpanStatus::Denied);
            denies.inc();
            self.audit.append(
                audit_base()
                    .person(notification.person.id)
                    .denied(DenyReason::ConsentWithheld.to_string()),
            )?;
            return Err(CssError::AccessDenied(DenyReason::ConsentWithheld));
        }
        span.finish();

        // Steps 2–3 — PDP: find and evaluate the matching policy. The
        // PDP answers repeat (actor, type, purpose) requests from its
        // segmented decision cache; hits and misses are counted
        // separately so the cache-hit rate is visible in a telemetry
        // snapshot.
        let mut span = self.trace.child("pep.pdp_evaluate");
        let (decision, cache_hit) = {
            let pdp = self.pdp.read();
            let actors = self.actors.read();
            pdp.evaluate_traced(request, &actors, self.now)
        };
        timer.stage("pdp_evaluate");
        span.attr(SpanAttr::cache_hit(cache_hit));
        span.attr(SpanAttr::decision(matches!(
            decision,
            Decision::Permit { .. }
        )));
        if cache_hit {
            self.telemetry.counter("pdp.cache_hit").inc();
        } else {
            self.telemetry.counter("pdp.cache_miss").inc();
        }
        match decision {
            Decision::Deny(reason) => {
                span.set_status(SpanStatus::Denied);
                drop(span);
                denies.inc();
                self.audit.append(
                    audit_base()
                        .person(notification.person.id)
                        .denied(reason.to_string()),
                )?;
                Err(CssError::AccessDenied(reason))
            }
            Decision::Permit {
                allowed_fields,
                matched_policies,
            } => {
                span.finish();
                // Step 4 — getResponse at the producer. Failures here
                // are infrastructure faults, not policy denials, but
                // they are audited all the same. The gateway continues
                // the trace with its own Algorithm 2 stage spans. The
                // handle is cloned out of the registry so no lock is
                // held across the call.
                let gateway = self.gateways.read().get(&producer).cloned();
                let gateway = match gateway {
                    Some(g) => g,
                    None => {
                        denies.inc();
                        self.audit.append(
                            audit_base()
                                .person(notification.person.id)
                                .denied("producer gateway not registered"),
                        )?;
                        return Err(CssError::NotFound(format!(
                            "no gateway registered for producer {producer}"
                        )));
                    }
                };
                let details =
                    match gateway.get_response(src_event_id, &allowed_fields, Some(&self.trace)) {
                        Ok(d) => d,
                        Err(e) => {
                            timer.stage("gateway_retrieve");
                            denies.inc();
                            self.audit.append(
                                audit_base()
                                    .person(notification.person.id)
                                    .denied(format!("gateway failure: {e}")),
                            )?;
                            return Err(e);
                        }
                    };
                timer.stage("gateway_retrieve");
                let span = self.trace.child("pep.obligation_filter");
                let response = PrivacyAwareEvent::release(
                    request.event_id,
                    producer,
                    &details,
                    allowed_fields,
                );
                timer.stage("obligation_filter");
                span.finish();
                let matched = matched_policies
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                self.audit.append(
                    audit_base()
                        .person(notification.person.id)
                        .with_detail(format!("matched: {matched}")),
                )?;
                timer.finish();
                self.telemetry.counter("controller.detail_permits").inc();
                Ok(response)
            }
        }
    }
}
