//! Data-subject consent (opt-in / opt-out).
//!
//! One of the platform's stated goals is "patient/citizen empowerment by
//! supporting consent collection at data source level (opt-in, opt-out
//! options to share the events and their content)" (Section 1). The
//! registry stores directives at three scopes; the most specific
//! directive decides, and among directives at the same scope the most
//! recent wins.

use std::collections::HashMap;

use css_types::{ActorId, EventTypeId, PersonId, Timestamp};

/// What a directive applies to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ConsentScope {
    /// Everything about the person.
    All,
    /// Events published by one producer.
    Producer(ActorId),
    /// Events of one class, from any producer.
    EventType(EventTypeId),
    /// Events of one class from one producer (most specific).
    ProducerEventType(ActorId, EventTypeId),
}

impl ConsentScope {
    fn specificity(&self) -> u8 {
        match self {
            ConsentScope::All => 0,
            ConsentScope::Producer(_) | ConsentScope::EventType(_) => 1,
            ConsentScope::ProducerEventType(..) => 2,
        }
    }

    fn applies(&self, producer: ActorId, event_type: &EventTypeId) -> bool {
        match self {
            ConsentScope::All => true,
            ConsentScope::Producer(p) => *p == producer,
            ConsentScope::EventType(t) => t == event_type,
            ConsentScope::ProducerEventType(p, t) => *p == producer && t == event_type,
        }
    }
}

/// Opt in or out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsentDecision {
    /// Sharing allowed.
    OptIn,
    /// Sharing forbidden.
    OptOut,
}

#[derive(Debug, Clone)]
struct Directive {
    scope: ConsentScope,
    decision: ConsentDecision,
    at: Timestamp,
}

/// Registry of consent directives per person.
///
/// The default (no directive) is **opt-in**: the paper's platform shares
/// events unless the citizen objects, with the fine-grained policies
/// limiting *what* is shared.
#[derive(Debug, Default)]
pub struct ConsentRegistry {
    directives: HashMap<PersonId, Vec<Directive>>,
}

impl ConsentRegistry {
    /// Empty registry (everyone defaults to opt-in).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a directive.
    pub fn record(
        &mut self,
        person: PersonId,
        scope: ConsentScope,
        decision: ConsentDecision,
        at: Timestamp,
    ) {
        self.directives.entry(person).or_default().push(Directive {
            scope,
            decision,
            at,
        });
    }

    /// Whether sharing an event of `event_type` from `producer` about
    /// `person` is permitted.
    pub fn allows(&self, person: PersonId, producer: ActorId, event_type: &EventTypeId) -> bool {
        let Some(directives) = self.directives.get(&person) else {
            return true;
        };
        let winner = directives
            .iter()
            .filter(|d| d.scope.applies(producer, event_type))
            // max_by_key takes the LAST maximal element, so ties in
            // (specificity, time) resolve to the most recently recorded.
            .max_by_key(|d| (d.scope.specificity(), d.at));
        match winner {
            None => true,
            Some(d) => d.decision == ConsentDecision::OptIn,
        }
    }

    /// Number of persons with at least one directive.
    pub fn persons_with_directives(&self) -> usize {
        self.directives.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: PersonId = PersonId(1);
    const HOSPITAL: ActorId = ActorId(10);
    const TELECARE: ActorId = ActorId(20);

    fn ty(code: &str) -> EventTypeId {
        EventTypeId::v1(code)
    }

    #[test]
    fn default_is_opt_in() {
        let reg = ConsentRegistry::new();
        assert!(reg.allows(P, HOSPITAL, &ty("blood-test")));
    }

    #[test]
    fn global_opt_out_blocks_everything() {
        let mut reg = ConsentRegistry::new();
        reg.record(P, ConsentScope::All, ConsentDecision::OptOut, Timestamp(1));
        assert!(!reg.allows(P, HOSPITAL, &ty("blood-test")));
        assert!(!reg.allows(P, TELECARE, &ty("telecare-alarm")));
        // Other persons unaffected.
        assert!(reg.allows(PersonId(2), HOSPITAL, &ty("blood-test")));
    }

    #[test]
    fn specific_opt_in_overrides_global_opt_out() {
        let mut reg = ConsentRegistry::new();
        reg.record(P, ConsentScope::All, ConsentDecision::OptOut, Timestamp(1));
        reg.record(
            P,
            ConsentScope::ProducerEventType(HOSPITAL, ty("blood-test")),
            ConsentDecision::OptIn,
            Timestamp(2),
        );
        assert!(reg.allows(P, HOSPITAL, &ty("blood-test")));
        assert!(!reg.allows(P, HOSPITAL, &ty("discharge")));
    }

    #[test]
    fn producer_scope_only_affects_that_producer() {
        let mut reg = ConsentRegistry::new();
        reg.record(
            P,
            ConsentScope::Producer(TELECARE),
            ConsentDecision::OptOut,
            Timestamp(1),
        );
        assert!(!reg.allows(P, TELECARE, &ty("telecare-alarm")));
        assert!(reg.allows(P, HOSPITAL, &ty("blood-test")));
    }

    #[test]
    fn event_type_scope_spans_producers() {
        let mut reg = ConsentRegistry::new();
        reg.record(
            P,
            ConsentScope::EventType(ty("psych-report")),
            ConsentDecision::OptOut,
            Timestamp(1),
        );
        assert!(!reg.allows(P, HOSPITAL, &ty("psych-report")));
        assert!(!reg.allows(P, TELECARE, &ty("psych-report")));
        assert!(reg.allows(P, HOSPITAL, &ty("blood-test")));
    }

    #[test]
    fn later_directive_wins_at_same_specificity() {
        let mut reg = ConsentRegistry::new();
        reg.record(P, ConsentScope::All, ConsentDecision::OptOut, Timestamp(1));
        reg.record(P, ConsentScope::All, ConsentDecision::OptIn, Timestamp(2));
        assert!(reg.allows(P, HOSPITAL, &ty("blood-test")));
        reg.record(P, ConsentScope::All, ConsentDecision::OptOut, Timestamp(3));
        assert!(!reg.allows(P, HOSPITAL, &ty("blood-test")));
    }

    #[test]
    fn specificity_beats_recency() {
        let mut reg = ConsentRegistry::new();
        reg.record(
            P,
            ConsentScope::ProducerEventType(HOSPITAL, ty("blood-test")),
            ConsentDecision::OptOut,
            Timestamp(1),
        );
        // A *later* but less specific opt-in does not override.
        reg.record(P, ConsentScope::All, ConsentDecision::OptIn, Timestamp(5));
        assert!(!reg.allows(P, HOSPITAL, &ty("blood-test")));
    }
}
