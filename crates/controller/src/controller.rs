//! The Data Controller facade.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use css_audit::{AuditAction, AuditLog, AuditQuery, AuditRecord, AuditReport};
use css_bus::{Bus, BusDriver, PublishOptions, SubscriberHandle, SubscriptionConfig};
use css_event::{EventSchema, NotificationMessage};
use css_policy::{DetailRequest, PolicyDecisionPoint, PrivacyPolicy};
use css_registry::EventCatalog;
use css_storage::LogBackend;
use css_telemetry::{MetricsRegistry, StageTimer};
use css_trace::{SpanAttr, SpanStatus, TraceContext, Tracer};
use css_types::{
    Actor, ActorId, ActorRegistry, Clock, CssError, CssResult, DenyReason, EventTypeId,
    GlobalEventId, IdGenerator, PersonId, PersonIdentity, PolicyId, Purpose, SourceEventId,
    SubscriptionId, Timestamp,
};

use crate::consent::{ConsentDecision, ConsentRegistry, ConsentScope};
use crate::contract::{ContractRegistry, ParticipantContract, ParticipantRole};
use crate::gateway_client::GatewayClient;
use crate::index::EventsIndex;
use crate::pep::PolicyEnforcementPoint;

/// Construction parameters for a controller.
pub struct ControllerConfig {
    /// Master key for sealing identifying data in the events index.
    pub master_key: Vec<u8>,
    /// Default subscription configuration used for consumer queues.
    pub subscription: SubscriptionConfig,
    /// Clock used for policy evaluation, notifications and audit.
    pub clock: Arc<dyn Clock>,
    /// Registry the controller and its bus record metrics into. Share
    /// one registry across subsystems to get a platform-wide snapshot.
    pub telemetry: MetricsRegistry,
    /// Tracer the controller mints causal spans into (publish → route →
    /// deliver, inquiry, detail request → PEP stages). Disabled by
    /// default, making every span a no-op.
    pub tracer: Tracer,
    /// Bus driver the controller routes notifications through. `None`
    /// (the default) builds a private in-memory broker instrumented
    /// against `telemetry`; supply a driver to swap the transport (e.g.
    /// a [`css_bus::RecordingDriver`] in tests, a networked broker in a
    /// multi-site deployment).
    pub bus_driver: Option<Arc<dyn BusDriver<NotificationMessage>>>,
}

impl ControllerConfig {
    /// A configuration with the given clock and a test-grade master key.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        ControllerConfig {
            master_key: b"css-demo-master-key".to_vec(),
            subscription: SubscriptionConfig::default(),
            clock,
            telemetry: MetricsRegistry::new(),
            tracer: Tracer::disabled(),
            bus_driver: None,
        }
    }

    /// Use an existing registry (e.g. the platform's) instead of a
    /// private one.
    pub fn with_telemetry(mut self, registry: MetricsRegistry) -> Self {
        self.telemetry = registry;
        self
    }

    /// Use an existing tracer (e.g. the platform's) so controller spans
    /// land in a shared collector.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Route notifications through the given driver instead of a
    /// private in-memory broker. The driver is payload-blind; detail
    /// confinement holds regardless of the transport chosen here.
    pub fn with_bus_driver(mut self, driver: Arc<dyn BusDriver<NotificationMessage>>) -> Self {
        self.bus_driver = Some(driver);
        self
    }
}

/// Outcome of a successful publish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishReceipt {
    /// The global event id the controller minted.
    pub global_id: GlobalEventId,
    /// Consumer organizations the notification was routed to.
    pub notified: Vec<ActorId>,
}

/// The central coordination node (Fig. 2).
///
/// Generic over the storage backend of its audit log so tests run in
/// memory and deployments on disk.
pub struct DataController<B: LogBackend> {
    actors: ActorRegistry,
    contracts: ContractRegistry,
    catalog: EventCatalog,
    bus: Bus<NotificationMessage>,
    index: EventsIndex<B>,
    pdp: PolicyDecisionPoint,
    consent: ConsentRegistry,
    audit: AuditLog<B>,
    gateways: HashMap<ActorId, Box<dyn GatewayClient>>,
    /// consumer org per live subscription, for routing bookkeeping.
    subscribers: HashMap<SubscriptionId, (ActorId, EventTypeId)>,
    clock: Arc<dyn Clock>,
    subscription_config: SubscriptionConfig,
    telemetry: MetricsRegistry,
    tracer: Tracer,
    eid_gen: IdGenerator,
    policy_gen: IdGenerator,
    request_gen: IdGenerator,
}

impl<B: LogBackend> DataController<B> {
    /// Create a controller whose audit log lives on `audit_backend`.
    pub fn new(config: ControllerConfig, audit_backend: B) -> CssResult<Self> {
        let index = EventsIndex::new(&config.master_key);
        Self::assemble(config, audit_backend, index)
    }

    /// Create a controller whose audit log AND events index are both
    /// disk-backed. The index replays persisted notifications on open,
    /// so a controller restart loses no events.
    pub fn with_backends(
        config: ControllerConfig,
        audit_backend: B,
        index_backend: B,
    ) -> CssResult<Self> {
        let index = EventsIndex::open(&config.master_key, index_backend)?;
        Self::assemble(config, audit_backend, index)
    }

    fn assemble(
        config: ControllerConfig,
        audit_backend: B,
        index: EventsIndex<B>,
    ) -> CssResult<Self> {
        // Continue minting global ids after the highest recovered one so
        // restarts never reuse an eID (nonce safety for the sealer).
        let next_eid = index.max_event_id().map(|m| m.value() + 1).unwrap_or(1);
        Ok(DataController {
            actors: ActorRegistry::new(),
            contracts: ContractRegistry::new(),
            catalog: EventCatalog::new(),
            bus: match config.bus_driver {
                Some(driver) => Bus::from_driver(driver),
                None => Bus::in_memory_with_telemetry(&config.telemetry),
            },
            index,
            pdp: PolicyDecisionPoint::new(),
            consent: ConsentRegistry::new(),
            audit: AuditLog::open(audit_backend)?,
            gateways: HashMap::new(),
            subscribers: HashMap::new(),
            clock: config.clock,
            subscription_config: config.subscription,
            telemetry: config.telemetry,
            tracer: config.tracer,
            eid_gen: IdGenerator::starting_at(next_eid),
            policy_gen: IdGenerator::default(),
            request_gen: IdGenerator::default(),
        })
    }

    /// The registry this controller (and its bus) records into.
    pub fn telemetry(&self) -> &MetricsRegistry {
        &self.telemetry
    }

    /// The tracer this controller mints spans into.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Current controller time.
    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    // ---- onboarding --------------------------------------------------

    /// Register an actor in the organizational registry.
    pub fn register_actor(&mut self, actor: Actor) -> CssResult<()> {
        self.actors.register(actor)?;
        // The hierarchy is an input to policy matching (a new unit under
        // an organization inherits its grants), so cached decisions are
        // no longer trustworthy.
        self.pdp.invalidate_cache();
        Ok(())
    }

    /// The actor registry (read-only).
    pub fn actors(&self) -> &ActorRegistry {
        &self.actors
    }

    /// Sign a participation contract for a (top-level) actor.
    pub fn sign_contract(&mut self, actor: ActorId, role: ParticipantRole) -> CssResult<()> {
        if self.actors.get(actor).is_none() {
            return Err(CssError::NotFound(format!("actor {actor} not registered")));
        }
        let now = self.now();
        self.contracts.sign(ParticipantContract {
            actor,
            role,
            signed_at: now,
        });
        self.audit
            .append(AuditRecord::new(now, actor, AuditAction::ContractSigned))?;
        Ok(())
    }

    /// Connect a producer's gateway endpoint.
    pub fn register_gateway(&mut self, producer: ActorId, client: Box<dyn GatewayClient>) {
        self.gateways.insert(producer, client);
    }

    /// Producer declares a class of events in the catalog; the bus topic
    /// is created alongside.
    pub fn declare_event_class(
        &mut self,
        schema: &EventSchema,
        domain: Option<&str>,
    ) -> CssResult<()> {
        self.contracts.require_producer(schema.producer)?;
        self.catalog.declare(schema, domain)?;
        self.bus.create_topic(&schema.id.to_string());
        Ok(())
    }

    /// The event catalog (visible to every contracted participant).
    pub fn catalog(&self) -> &EventCatalog {
        &self.catalog
    }

    // ---- policies -----------------------------------------------------

    /// Mint a fresh policy id (used by the elicitation tool).
    pub fn next_policy_id(&self) -> PolicyId {
        self.policy_gen.next_id()
    }

    /// Producer installs a privacy policy for one of its event classes.
    ///
    /// Validates ownership (only the declaring producer may protect its
    /// classes) and that `F` only names declared fields.
    pub fn define_policy(&mut self, policy: PrivacyPolicy) -> CssResult<()> {
        self.contracts.require_producer(policy.producer)?;
        let schema = self.catalog.schema(&policy.event_type)?;
        if schema.producer != policy.producer {
            return Err(CssError::Invalid(format!(
                "event class {} belongs to {}, not to {}",
                policy.event_type, schema.producer, policy.producer
            )));
        }
        for field in &policy.fields {
            if schema.field_def(field).is_none() {
                return Err(CssError::Invalid(format!(
                    "policy names unknown field {field:?} of {}",
                    policy.event_type
                )));
            }
        }
        if self.actors.get(policy.actor).is_none() {
            return Err(CssError::NotFound(format!(
                "policy subject {} not registered",
                policy.actor
            )));
        }
        let record = AuditRecord::new(self.now(), policy.producer, AuditAction::PolicyChange)
            .event_type(policy.event_type.clone())
            .with_detail(format!("defined {}", policy.id));
        self.pdp.install(policy);
        self.audit.append(record)?;
        Ok(())
    }

    /// Restore a policy from the certified repository after a restart.
    ///
    /// Skips the ownership/field validation of
    /// [`DataController::define_policy`] (the repository content was
    /// validated when first defined) and writes no audit record (the
    /// original definition is already on the log).
    pub fn restore_policy(&mut self, policy: PrivacyPolicy) {
        // Keep the id generator ahead of restored ids.
        self.policy_gen.advance_past(policy.id.value());
        self.pdp.install(policy);
    }

    /// Producer revokes one of its policies.
    pub fn revoke_policy(&mut self, producer: ActorId, id: PolicyId) -> CssResult<()> {
        let owned = self
            .pdp
            .iter()
            .any(|p| p.id == id && p.producer == producer);
        if !owned {
            return Err(CssError::NotFound(format!(
                "policy {id} not found for producer {producer}"
            )));
        }
        self.pdp.revoke(id);
        let record = AuditRecord::new(self.now(), producer, AuditAction::PolicyChange)
            .with_detail(format!("revoked {id}"));
        self.audit.append(record)?;
        Ok(())
    }

    /// Number of installed policies.
    pub fn policy_count(&self) -> usize {
        self.pdp.len()
    }

    /// Whether any policy (valid now, not revoked) authorizes `consumer`
    /// for events of `event_type` — the subscription / inquiry gate.
    /// Served from the PDP's generation-stamped cache on repeat checks.
    pub fn is_authorized_consumer(&self, consumer: ActorId, event_type: &EventTypeId) -> bool {
        self.pdp
            .is_authorized(consumer, event_type, &self.actors, self.now())
    }

    // ---- subscription --------------------------------------------------

    /// Consumer subscribes to a class of events.
    ///
    /// Deny-by-default: rejected unless a privacy policy authorizes this
    /// consumer for the class (Section 5.2).
    pub fn subscribe(
        &mut self,
        consumer: ActorId,
        event_type: &EventTypeId,
    ) -> CssResult<SubscriberHandle<NotificationMessage>> {
        self.subscribe_inner(consumer, event_type, None)
    }

    /// Consumer subscribes a *worker group*: every call with the same
    /// `group` name joins one competing-consumer group, so N workers of
    /// the same organization split the notification stream instead of
    /// each receiving every message. The group is scoped to the consumer
    /// (two organizations using the same group name never share a
    /// queue), and each member passes the same deny-by-default
    /// authorization gate as [`DataController::subscribe`].
    pub fn subscribe_grouped(
        &mut self,
        consumer: ActorId,
        event_type: &EventTypeId,
        group: &str,
    ) -> CssResult<SubscriberHandle<NotificationMessage>> {
        let scoped = format!("{consumer}:{group}");
        self.subscribe_inner(consumer, event_type, Some(&scoped))
    }

    fn subscribe_inner(
        &mut self,
        consumer: ActorId,
        event_type: &EventTypeId,
        group: Option<&str>,
    ) -> CssResult<SubscriberHandle<NotificationMessage>> {
        self.contracts.require_consumer(
            self.actors
                .organization_of(consumer)
                .ok_or_else(|| CssError::NotFound(format!("actor {consumer} not registered")))?,
        )?;
        let now = self.now();
        if !self.catalog.contains(event_type) {
            return Err(CssError::NotFound(format!(
                "event class {event_type} not declared"
            )));
        }
        if !self.is_authorized_consumer(consumer, event_type) {
            self.audit.append(
                AuditRecord::new(now, consumer, AuditAction::Subscribe)
                    .event_type(event_type.clone())
                    .denied(DenyReason::NoMatchingPolicy.to_string()),
            )?;
            return Err(CssError::AccessDenied(DenyReason::NoMatchingPolicy));
        }
        let topic = event_type.to_string();
        let handle = match group {
            Some(g) => self
                .bus
                .subscribe_group(&topic, g, self.subscription_config)?,
            None => self.bus.subscribe(&topic, self.subscription_config)?,
        };
        self.subscribers
            .insert(handle.id(), (consumer, event_type.clone()));
        self.audit.append(
            AuditRecord::new(now, consumer, AuditAction::Subscribe).event_type(event_type.clone()),
        )?;
        Ok(handle)
    }

    /// Remove a subscription (consumer-initiated).
    pub fn unsubscribe(&mut self, handle: SubscriberHandle<NotificationMessage>) -> CssResult<()> {
        self.subscribers.remove(&handle.id());
        handle.unsubscribe()
    }

    // ---- publish --------------------------------------------------------

    /// Producer publishes an event: the notification is validated,
    /// consent-checked, indexed (identity sealed) and routed to every
    /// authorized subscriber. The detail message must already be
    /// persisted in the producer's gateway under `src_event_id`.
    ///
    /// `(producer, src_event_id)` doubles as the publish **idempotency
    /// key**: re-publishing the same source event (a producer retry
    /// after a timeout, a crash-recovery replay) is dropped by the bus's
    /// dedup window and reported as [`CssError::AlreadyExists`] instead
    /// of notifying every consumer twice.
    ///
    /// When `parent` is given the publish continues that trace;
    /// otherwise a fresh `publish` root span is minted. The span covers
    /// the consent gate through the audit group commit; `bus.route`,
    /// `bus.deliver` and `index.insert` become children, and the trace
    /// id is stamped into the Publish and Delivery audit records.
    #[allow(clippy::too_many_arguments)]
    pub fn publish(
        &mut self,
        producer: ActorId,
        person: PersonIdentity,
        description: String,
        event_type: EventTypeId,
        occurred_at: Timestamp,
        src_event_id: SourceEventId,
        parent: Option<&TraceContext>,
    ) -> CssResult<PublishReceipt> {
        self.contracts.require_producer(producer)?;
        let schema = self.catalog.schema(&event_type)?;
        if schema.producer != producer {
            return Err(CssError::Invalid(format!(
                "event class {event_type} belongs to {}, not to {producer}",
                schema.producer
            )));
        }
        let now = self.now();
        let mut timer = StageTimer::start(&self.telemetry, "publish");
        let mut span = match parent {
            Some(ctx) => ctx.child("publish"),
            None => self.tracer.root("publish", now),
        };
        span.attr(SpanAttr::actor(producer));
        span.attr(SpanAttr::event_type(&event_type));
        let trace_id = span.trace_id();
        // Consent gate at the source.
        if !self.consent.allows(person.id, producer, &event_type) {
            timer.stage("consent_gate");
            span.set_status(SpanStatus::Denied);
            self.telemetry.counter("controller.publish_denied").inc();
            self.audit.append(
                AuditRecord::new(now, producer, AuditAction::Publish)
                    .event_type(event_type.clone())
                    .person(person.id)
                    .trace(trace_id)
                    .denied(DenyReason::ConsentWithheld.to_string()),
            )?;
            return Err(CssError::ConsentWithheld(format!(
                "person {} opted out of {event_type} from {producer}",
                person.id
            )));
        }
        timer.stage("consent_gate");
        let global_id: GlobalEventId = self.eid_gen.next_id();
        span.attr(SpanAttr::event(global_id));
        let notification = NotificationMessage {
            global_id,
            event_type: event_type.clone(),
            person: person.clone(),
            description,
            occurred_at,
            producer,
        };
        // Route first (all-or-nothing on overflow), then index. The
        // dedup key makes producer retries idempotent at the bus.
        let ctx = span.context();
        let dedup_key = format!("{producer}:{src_event_id}");
        let outcome = self.bus.publish_opts(
            &event_type.to_string(),
            notification.clone(),
            PublishOptions::new().dedup_key(&dedup_key).traced(&ctx),
        )?;
        if outcome.is_duplicate() {
            timer.stage("route");
            span.set_status(SpanStatus::Error);
            span.finish();
            self.telemetry.counter("controller.publish_deduped").inc();
            return Err(CssError::AlreadyExists(format!(
                "source event {src_event_id} of {producer} was already published"
            )));
        }
        timer.stage("route");
        let notified: HashSet<ActorId> = self
            .subscribers
            .values()
            .filter(|(_, ty)| *ty == event_type)
            .map(|(actor, _)| *actor)
            .collect();
        let index_span = ctx.child("index.insert");
        self.index
            .insert(&notification, src_event_id, notified.clone())?;
        index_span.finish();
        timer.stage("index");
        // One group commit for the Publish record and the per-consumer
        // Delivery fan-out: a single storage write instead of 1 + N.
        let mut records = Vec::with_capacity(1 + notified.len());
        records.push(
            AuditRecord::new(now, producer, AuditAction::Publish)
                .event(global_id)
                .event_type(event_type.clone())
                .person(person.id)
                .trace(trace_id),
        );
        for consumer in &notified {
            records.push(
                AuditRecord::new(now, *consumer, AuditAction::Delivery)
                    .event(global_id)
                    .event_type(event_type.clone())
                    .person(person.id)
                    .trace(trace_id),
            );
        }
        self.audit.append_batch(records)?;
        timer.stage("audit");
        timer.finish();
        span.finish();
        self.telemetry.counter("controller.published").inc();
        let mut notified: Vec<ActorId> = notified.into_iter().collect();
        notified.sort();
        Ok(PublishReceipt {
            global_id,
            notified,
        })
    }

    /// [`DataController::publish`] under its pre-consolidation name.
    #[allow(clippy::too_many_arguments)]
    #[deprecated(note = "use publish with an optional parent TraceContext")]
    pub fn publish_traced(
        &mut self,
        producer: ActorId,
        person: PersonIdentity,
        description: String,
        event_type: EventTypeId,
        occurred_at: Timestamp,
        src_event_id: SourceEventId,
        parent: Option<&TraceContext>,
    ) -> CssResult<PublishReceipt> {
        self.publish(
            producer,
            person,
            description,
            event_type,
            occurred_at,
            src_event_id,
            parent,
        )
    }

    // ---- index inquiry ----------------------------------------------------

    /// Consumer queries the events index for notifications about one
    /// person. Only events of classes the consumer is authorized for are
    /// returned; each returned event is marked as notified to the
    /// consumer (inquiry and pub/sub are equivalent notification
    /// channels, Section 4).
    pub fn inquire_by_person(
        &mut self,
        consumer: ActorId,
        person: PersonId,
    ) -> CssResult<Vec<NotificationMessage>> {
        self.inquire_by_person_traced(consumer, person, None)
    }

    /// [`DataController::inquire_by_person`], continuing the caller's
    /// trace (or minting an `inquiry` root span when `parent` is none).
    pub fn inquire_by_person_traced(
        &mut self,
        consumer: ActorId,
        person: PersonId,
        parent: Option<&TraceContext>,
    ) -> CssResult<Vec<NotificationMessage>> {
        let ids = self.index.events_of_person(person);
        self.filter_inquiry(consumer, ids, parent)
    }

    /// Consumer queries the events index for notifications of one class.
    pub fn inquire_by_type(
        &mut self,
        consumer: ActorId,
        event_type: &EventTypeId,
    ) -> CssResult<Vec<NotificationMessage>> {
        let ids = self.index.events_of_type(event_type);
        self.filter_inquiry(consumer, ids, None)
    }

    /// Consumer queries the events index for notifications in a time
    /// window (any class the consumer is authorized for).
    pub fn inquire_between(
        &mut self,
        consumer: ActorId,
        from: Timestamp,
        to: Timestamp,
    ) -> CssResult<Vec<NotificationMessage>> {
        let ids = self.index.events_between(from, to);
        self.filter_inquiry(consumer, ids, None)
    }

    fn filter_inquiry(
        &mut self,
        consumer: ActorId,
        candidates: Vec<GlobalEventId>,
        parent: Option<&TraceContext>,
    ) -> CssResult<Vec<NotificationMessage>> {
        let org = self
            .actors
            .organization_of(consumer)
            .ok_or_else(|| CssError::NotFound(format!("actor {consumer} not registered")))?;
        self.contracts.require_consumer(org)?;
        let now = self.now();
        let mut span = match parent {
            Some(ctx) => ctx.child("inquiry"),
            None => self.tracer.root("inquiry", now),
        };
        span.attr(SpanAttr::actor(consumer));
        // Resolve each candidate once inside the index (entry lookup,
        // authorization, decrypt and notified-marking share a single
        // entry resolution; markers are persisted as one batch).
        let pdp = &self.pdp;
        let actors = &self.actors;
        let filter_span = span.context().child("index.filter");
        let mut out = self.index.filter_authorized(&candidates, consumer, |ty| {
            pdp.is_authorized(consumer, ty, actors, now)
        })?;
        filter_span.finish();
        self.audit.append(
            AuditRecord::new(now, consumer, AuditAction::IndexInquiry)
                .trace(span.trace_id())
                .with_detail(format!("{} events returned", out.len())),
        )?;
        span.finish();
        out.sort_by_key(|n| n.global_id);
        Ok(out)
    }

    // ---- detail requests ----------------------------------------------------

    /// Consumer requests the details of an event (Algorithm 1).
    pub fn request_details(
        &mut self,
        consumer: ActorId,
        event_type: EventTypeId,
        event_id: GlobalEventId,
        purpose: Purpose,
    ) -> CssResult<css_event::PrivacyAwareEvent> {
        self.request_details_traced(consumer, event_type, event_id, purpose, None)
    }

    /// [`DataController::request_details`], continuing the caller's
    /// trace (or minting a `detail_request` root span when `parent` is
    /// none). Every Algorithm 1 stage the PEP reaches becomes a child
    /// span, and the root span status mirrors the outcome: `Denied` for
    /// policy denials, `Error` for infrastructure faults.
    pub fn request_details_traced(
        &mut self,
        consumer: ActorId,
        event_type: EventTypeId,
        event_id: GlobalEventId,
        purpose: Purpose,
        parent: Option<&TraceContext>,
    ) -> CssResult<css_event::PrivacyAwareEvent> {
        let org = self
            .actors
            .organization_of(consumer)
            .ok_or_else(|| CssError::NotFound(format!("actor {consumer} not registered")))?;
        self.contracts.require_consumer(org)?;
        let now = self.now();
        let mut span = match parent {
            Some(ctx) => ctx.child("detail_request"),
            None => self.tracer.root("detail_request", now),
        };
        span.attr(SpanAttr::actor(consumer));
        span.attr(SpanAttr::event(event_id));
        span.attr(SpanAttr::event_type(&event_type));
        span.attr(SpanAttr::purpose(&purpose));
        let request = DetailRequest::new(
            self.request_gen.next_id(),
            consumer,
            event_type,
            event_id,
            purpose,
        );
        let mut pep = PolicyEnforcementPoint {
            index: &self.index,
            pdp: &self.pdp,
            actors: &self.actors,
            consent: &self.consent,
            audit: &mut self.audit,
            gateways: &self.gateways,
            telemetry: &self.telemetry,
            trace: span.context(),
            now,
        };
        let result = pep.get_event_details(&request);
        match &result {
            Ok(_) => {}
            Err(CssError::AccessDenied(_)) | Err(CssError::ConsentWithheld(_)) => {
                span.set_status(SpanStatus::Denied);
            }
            Err(_) => span.set_status(SpanStatus::Error),
        }
        span.finish();
        result
    }

    // ---- subject access (citizen-facing, Section 7) -----------------------

    /// A data subject views their own profile: every notification about
    /// them, regardless of consumer policies — the right of access that
    /// underpins the PHR use the paper projects. Audited.
    pub fn subject_profile(&mut self, person: PersonId) -> CssResult<Vec<NotificationMessage>> {
        let ids = self.index.events_of_person(person);
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            out.push(self.index.decrypt_notification(id)?);
        }
        out.sort_by_key(|n| (n.occurred_at, n.global_id));
        self.audit.append(
            AuditRecord::new(self.now(), ActorId(0), AuditAction::SubjectAccess)
                .person(person)
                .with_detail(format!("profile view: {} events", out.len())),
        )?;
        Ok(out)
    }

    /// A data subject asks who touched their data: the audit records
    /// carrying their person dimension. The lookup itself is audited.
    pub fn subject_audit_trail(&mut self, person: PersonId) -> CssResult<Vec<AuditRecord>> {
        let trail: Vec<AuditRecord> = self
            .audit
            .query(&AuditQuery::new().person(person))
            .into_iter()
            .cloned()
            .collect();
        self.audit.append(
            AuditRecord::new(self.now(), ActorId(0), AuditAction::SubjectAccess)
                .person(person)
                .with_detail(format!("audit trail view: {} records", trail.len())),
        )?;
        Ok(trail)
    }

    // ---- consent ----------------------------------------------------------

    /// Record a consent directive from a data subject.
    pub fn record_consent(
        &mut self,
        person: PersonId,
        scope: ConsentScope,
        decision: ConsentDecision,
    ) -> CssResult<()> {
        let now = self.now();
        self.consent.record(person, scope, decision, now);
        // Consent changes are logged against the platform itself; the
        // subject is tracked in the person dimension.
        self.audit
            .append(AuditRecord::new(now, ActorId(0), AuditAction::ConsentChange).person(person))?;
        Ok(())
    }

    // ---- audit ----------------------------------------------------------

    /// Run an audit inquiry.
    pub fn audit_query(&self, q: &AuditQuery) -> Vec<AuditRecord> {
        self.audit.query(q).into_iter().cloned().collect()
    }

    /// Aggregate audit report.
    pub fn audit_report(&self, q: &AuditQuery) -> AuditReport {
        self.audit.report(q)
    }

    /// The audit chain head (hand to an external auditor).
    pub fn audit_head(&self) -> [u8; 32] {
        self.audit.head()
    }

    /// Verify the audit chain end-to-end.
    pub fn verify_audit(&self) -> CssResult<()> {
        self.audit.verify()
    }

    /// Number of audit records.
    pub fn audit_len(&self) -> usize {
        self.audit.len()
    }

    /// Number of indexed events.
    pub fn index_len(&self) -> usize {
        self.index.len()
    }

    /// Bus statistics.
    pub fn bus_stats(&self) -> css_bus::BrokerStats {
        self.bus.stats()
    }

    /// Notifications that exhausted their redelivery budget, with the
    /// delivery group and original publish trace that dead-lettered
    /// them.
    pub fn bus_dead_letters(&self) -> Vec<css_bus::DeadLetter<NotificationMessage>> {
        self.bus.dead_letters()
    }

    /// Move expired in-flight deliveries back onto their queues (or to
    /// the dead-letter queue once attempts are exhausted); returns how
    /// many were moved. Polling consumers sweep lazily; an idle
    /// deployment can call this from its ops loop.
    pub fn bus_sweep(&self) -> usize {
        self.bus.sweep()
    }
}
