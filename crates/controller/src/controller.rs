//! The Data Controller facade.
//!
//! Since the sharded data plane (see [`crate::shards`]) every method
//! takes `&self`: the controller's registries sit behind their own
//! `RwLock`s, the events index and audit log are partitioned by
//! citizen into independently locked shards, and id generators are
//! atomic. Callers share one controller with a plain `Arc` — no outer
//! mutex — and operations on different citizens proceed in parallel.
//!
//! Lock ordering (to stay deadlock-free): registry read guards (`pdp`
//! before `actors` when both are held) are taken before any index
//! shard lock; audit shard locks are taken last, with no other guard
//! held. Cross-shard operations hold one shard lock at a time.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::{RwLock, RwLockReadGuard};

use css_audit::{AuditAction, AuditQuery, AuditRecord, AuditReport, AuditShards};
use css_bus::{Bus, BusDriver, PublishOptions, SubscriberHandle, SubscriptionConfig};
use css_event::{EventSchema, NotificationMessage};
use css_policy::{DetailRequest, PolicyDecisionPoint, PrivacyPolicy};
use css_registry::EventCatalog;
use css_storage::LogBackend;
use css_telemetry::{MetricsRegistry, StageTimer};
use css_trace::{SpanAttr, SpanStatus, TraceContext, Tracer};
use css_types::{
    Actor, ActorId, ActorRegistry, Clock, CssError, CssResult, DenyReason, EventTypeId,
    GlobalEventId, IdGenerator, PersonId, PersonIdentity, PolicyId, Purpose, SourceEventId,
    SubscriptionId, Timestamp,
};

use crate::consent::{ConsentDecision, ConsentRegistry, ConsentScope};
use crate::contract::{ContractRegistry, ParticipantContract, ParticipantRole};
use crate::gateway_client::GatewayClient;
use crate::pep::PolicyEnforcementPoint;
use crate::shards::{HashedShards, IndexShards, ShardMap, SingleShard};

/// Construction parameters for a controller.
pub struct ControllerConfig {
    /// Master key for sealing identifying data in the events index.
    pub master_key: Vec<u8>,
    /// Default subscription configuration used for consumer queues.
    pub subscription: SubscriptionConfig,
    /// Clock used for policy evaluation, notifications and audit.
    pub clock: Arc<dyn Clock>,
    /// Registry the controller and its bus record metrics into. Share
    /// one registry across subsystems to get a platform-wide snapshot.
    pub telemetry: MetricsRegistry,
    /// Tracer the controller mints causal spans into (publish → route →
    /// deliver, inquiry, detail request → PEP stages). Disabled by
    /// default, making every span a no-op.
    pub tracer: Tracer,
    /// Bus driver the controller routes notifications through. `None`
    /// (the default) builds a private in-memory broker instrumented
    /// against `telemetry`; supply a driver to swap the transport (e.g.
    /// a [`css_bus::RecordingDriver`] in tests, a networked broker in a
    /// multi-site deployment).
    pub bus_driver: Option<Arc<dyn BusDriver<NotificationMessage>>>,
    /// How many data-plane shards (events index + audit) the controller
    /// partitions its state into. `1` (the default) reproduces the
    /// unsharded layout exactly; a multicore deployment wants one shard
    /// per expected concurrent writer, e.g. `min(8, cores)`.
    pub shards: usize,
}

impl ControllerConfig {
    /// A configuration with the given clock and a test-grade master key.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        ControllerConfig {
            master_key: b"css-demo-master-key".to_vec(),
            subscription: SubscriptionConfig::default(),
            clock,
            telemetry: MetricsRegistry::new(),
            tracer: Tracer::disabled(),
            bus_driver: None,
            shards: 1,
        }
    }

    /// Use an existing registry (e.g. the platform's) instead of a
    /// private one.
    pub fn with_telemetry(mut self, registry: MetricsRegistry) -> Self {
        self.telemetry = registry;
        self
    }

    /// Use an existing tracer (e.g. the platform's) so controller spans
    /// land in a shared collector.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Route notifications through the given driver instead of a
    /// private in-memory broker. The driver is payload-blind; detail
    /// confinement holds regardless of the transport chosen here.
    pub fn with_bus_driver(mut self, driver: Arc<dyn BusDriver<NotificationMessage>>) -> Self {
        self.bus_driver = Some(driver);
        self
    }

    /// Partition the data plane into `n` citizen-hashed shards
    /// (clamped to at least 1).
    pub fn with_shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// The shard map this configuration implies.
    fn shard_map(&self) -> Arc<dyn ShardMap> {
        if self.shards <= 1 {
            Arc::new(SingleShard)
        } else {
            Arc::new(HashedShards::new(self.shards))
        }
    }
}

/// Outcome of a successful publish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishReceipt {
    /// The global event id the controller minted.
    pub global_id: GlobalEventId,
    /// Consumer organizations the notification was routed to.
    pub notified: Vec<ActorId>,
}

/// The central coordination node (Fig. 2).
///
/// Generic over the storage backend of its audit log so tests run in
/// memory and deployments on disk. All methods take `&self`; share a
/// controller between threads with `Arc<DataController<_>>`.
pub struct DataController<B: LogBackend> {
    actors: RwLock<ActorRegistry>,
    contracts: RwLock<ContractRegistry>,
    catalog: RwLock<EventCatalog>,
    bus: Bus<NotificationMessage>,
    index: IndexShards<B>,
    pdp: RwLock<PolicyDecisionPoint>,
    consent: RwLock<ConsentRegistry>,
    audit: AuditShards<B>,
    gateways: RwLock<HashMap<ActorId, Arc<dyn GatewayClient>>>,
    /// consumer org per live subscription, for routing bookkeeping.
    subscribers: RwLock<HashMap<SubscriptionId, (ActorId, EventTypeId)>>,
    clock: Arc<dyn Clock>,
    subscription_config: SubscriptionConfig,
    telemetry: MetricsRegistry,
    tracer: Tracer,
    eid_gen: IdGenerator,
    policy_gen: IdGenerator,
    request_gen: IdGenerator,
}

impl<B: LogBackend> DataController<B> {
    /// Create a controller whose audit log lives on `audit_backend`.
    ///
    /// With `config.shards > 1` the events index is partitioned
    /// in-memory and the audit plane keeps shard 0 on the given
    /// backend (sibling shards are memory-resident).
    pub fn new(config: ControllerConfig, audit_backend: B) -> CssResult<Self> {
        let map = config.shard_map();
        let index = IndexShards::new(&config.master_key, map);
        let audit = AuditShards::open_padded(audit_backend, config.shards)?;
        Self::assemble(config, index, audit)
    }

    /// Create a controller whose audit log AND events index are both
    /// disk-backed, on one backend each. The index replays persisted
    /// notifications on open, so a controller restart loses no events.
    /// This layout is single-shard regardless of `config.shards`; a
    /// sharded persistent deployment uses
    /// [`DataController::with_shard_backends`].
    pub fn with_backends(
        config: ControllerConfig,
        audit_backend: B,
        index_backend: B,
    ) -> CssResult<Self> {
        Self::with_shard_backends(config, vec![audit_backend], vec![index_backend])
    }

    /// Create a fully disk-backed controller with one audit backend and
    /// one index backend **per shard**. The two backend vectors must be
    /// the same length; that length overrides `config.shards`. Index
    /// replay re-routes every persisted entry to its current owner
    /// shard, so reopening with a different shard count loses nothing.
    pub fn with_shard_backends(
        mut config: ControllerConfig,
        audit_backends: Vec<B>,
        index_backends: Vec<B>,
    ) -> CssResult<Self> {
        if audit_backends.len() != index_backends.len() {
            return Err(CssError::Invalid(format!(
                "shard backend mismatch: {} audit vs {} index",
                audit_backends.len(),
                index_backends.len()
            )));
        }
        config.shards = index_backends.len().max(1);
        let map = config.shard_map();
        let index = IndexShards::open(&config.master_key, map, index_backends)?;
        let audit = AuditShards::open(audit_backends)?;
        Self::assemble(config, index, audit)
    }

    fn assemble(
        config: ControllerConfig,
        mut index: IndexShards<B>,
        audit: AuditShards<B>,
    ) -> CssResult<Self> {
        index.instrument(&config.telemetry);
        // Continue minting global ids after the highest recovered one so
        // restarts never reuse an eID (nonce safety for the sealer).
        let next_eid = index.max_event_id().map(|m| m.value() + 1).unwrap_or(1);
        Ok(DataController {
            actors: RwLock::new(ActorRegistry::new()),
            contracts: RwLock::new(ContractRegistry::new()),
            catalog: RwLock::new(EventCatalog::new()),
            bus: match config.bus_driver {
                Some(driver) => Bus::from_driver(driver),
                None => Bus::in_memory_with_telemetry(&config.telemetry),
            },
            index,
            pdp: RwLock::new(PolicyDecisionPoint::new()),
            consent: RwLock::new(ConsentRegistry::new()),
            audit,
            gateways: RwLock::new(HashMap::new()),
            subscribers: RwLock::new(HashMap::new()),
            clock: config.clock,
            subscription_config: config.subscription,
            telemetry: config.telemetry,
            tracer: config.tracer,
            eid_gen: IdGenerator::starting_at(next_eid),
            policy_gen: IdGenerator::default(),
            request_gen: IdGenerator::default(),
        })
    }

    /// The registry this controller (and its bus) records into.
    pub fn telemetry(&self) -> &MetricsRegistry {
        &self.telemetry
    }

    /// The tracer this controller mints spans into.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Current controller time.
    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// How many data-plane shards this controller runs.
    pub fn shard_count(&self) -> usize {
        self.index.shard_count()
    }

    /// Indexed events per shard — the balance picture behind the
    /// imbalance gauge and health check.
    pub fn index_shard_lens(&self) -> Vec<usize> {
        self.index.shard_lens()
    }

    /// Audit records per shard.
    pub fn audit_shard_lens(&self) -> Vec<usize> {
        self.audit.shard_lens()
    }

    // ---- onboarding --------------------------------------------------

    /// Register an actor in the organizational registry.
    pub fn register_actor(&self, actor: Actor) -> CssResult<()> {
        self.actors.write().register(actor)?;
        // The hierarchy is an input to policy matching (a new unit under
        // an organization inherits its grants), so cached decisions are
        // no longer trustworthy.
        self.pdp.read().invalidate_cache();
        Ok(())
    }

    /// Read access to the actor registry.
    pub fn actors(&self) -> RwLockReadGuard<'_, ActorRegistry> {
        self.actors.read()
    }

    /// Sign a participation contract for a (top-level) actor.
    pub fn sign_contract(&self, actor: ActorId, role: ParticipantRole) -> CssResult<()> {
        if self.actors.read().get(actor).is_none() {
            return Err(CssError::NotFound(format!("actor {actor} not registered")));
        }
        let now = self.now();
        self.contracts.write().sign(ParticipantContract {
            actor,
            role,
            signed_at: now,
        });
        self.audit
            .append(AuditRecord::new(now, actor, AuditAction::ContractSigned))?;
        Ok(())
    }

    /// Connect a producer's gateway endpoint.
    pub fn register_gateway(&self, producer: ActorId, client: Box<dyn GatewayClient>) {
        self.gateways.write().insert(producer, Arc::from(client));
    }

    /// Producer declares a class of events in the catalog; the bus topic
    /// is created alongside.
    pub fn declare_event_class(&self, schema: &EventSchema, domain: Option<&str>) -> CssResult<()> {
        self.contracts.read().require_producer(schema.producer)?;
        self.catalog.write().declare(schema, domain)?;
        self.bus.create_topic(&schema.id.to_string());
        Ok(())
    }

    /// Read access to the event catalog (visible to every contracted
    /// participant).
    pub fn catalog(&self) -> RwLockReadGuard<'_, EventCatalog> {
        self.catalog.read()
    }

    // ---- policies -----------------------------------------------------

    /// Mint a fresh policy id (used by the elicitation tool).
    pub fn next_policy_id(&self) -> PolicyId {
        self.policy_gen.next_id()
    }

    /// Producer installs a privacy policy for one of its event classes.
    ///
    /// Validates ownership (only the declaring producer may protect its
    /// classes) and that `F` only names declared fields.
    pub fn define_policy(&self, policy: PrivacyPolicy) -> CssResult<()> {
        self.contracts.read().require_producer(policy.producer)?;
        {
            let catalog = self.catalog.read();
            let schema = catalog.schema(&policy.event_type)?;
            if schema.producer != policy.producer {
                return Err(CssError::Invalid(format!(
                    "event class {} belongs to {}, not to {}",
                    policy.event_type, schema.producer, policy.producer
                )));
            }
            for field in &policy.fields {
                if schema.field_def(field).is_none() {
                    return Err(CssError::Invalid(format!(
                        "policy names unknown field {field:?} of {}",
                        policy.event_type
                    )));
                }
            }
        }
        if self.actors.read().get(policy.actor).is_none() {
            return Err(CssError::NotFound(format!(
                "policy subject {} not registered",
                policy.actor
            )));
        }
        let record = AuditRecord::new(self.now(), policy.producer, AuditAction::PolicyChange)
            .event_type(policy.event_type.clone())
            .with_detail(format!("defined {}", policy.id));
        self.pdp.write().install(policy);
        self.audit.append(record)?;
        Ok(())
    }

    /// Restore a policy from the certified repository after a restart.
    ///
    /// Skips the ownership/field validation of
    /// [`DataController::define_policy`] (the repository content was
    /// validated when first defined) and writes no audit record (the
    /// original definition is already on the log).
    pub fn restore_policy(&self, policy: PrivacyPolicy) {
        // Keep the id generator ahead of restored ids.
        self.policy_gen.advance_past(policy.id.value());
        self.pdp.write().install(policy);
    }

    /// Producer revokes one of its policies.
    pub fn revoke_policy(&self, producer: ActorId, id: PolicyId) -> CssResult<()> {
        let owned = self
            .pdp
            .read()
            .iter()
            .any(|p| p.id == id && p.producer == producer);
        if !owned {
            return Err(CssError::NotFound(format!(
                "policy {id} not found for producer {producer}"
            )));
        }
        self.pdp.write().revoke(id);
        let record = AuditRecord::new(self.now(), producer, AuditAction::PolicyChange)
            .with_detail(format!("revoked {id}"));
        self.audit.append(record)?;
        Ok(())
    }

    /// Number of installed policies.
    pub fn policy_count(&self) -> usize {
        self.pdp.read().len()
    }

    /// Whether any policy (valid now, not revoked) authorizes `consumer`
    /// for events of `event_type` — the subscription / inquiry gate.
    /// Served from the PDP's generation-stamped cache on repeat checks;
    /// the cache is segment-local but its generation stamp is global, so
    /// a revocation anywhere denies everywhere on the next request.
    pub fn is_authorized_consumer(&self, consumer: ActorId, event_type: &EventTypeId) -> bool {
        let now = self.now();
        let pdp = self.pdp.read();
        let actors = self.actors.read();
        pdp.is_authorized(consumer, event_type, &actors, now)
    }

    // ---- subscription --------------------------------------------------

    /// Consumer subscribes to a class of events.
    ///
    /// Deny-by-default: rejected unless a privacy policy authorizes this
    /// consumer for the class (Section 5.2).
    pub fn subscribe(
        &self,
        consumer: ActorId,
        event_type: &EventTypeId,
    ) -> CssResult<SubscriberHandle<NotificationMessage>> {
        self.subscribe_inner(consumer, event_type, None)
    }

    /// Consumer subscribes a *worker group*: every call with the same
    /// `group` name joins one competing-consumer group, so N workers of
    /// the same organization split the notification stream instead of
    /// each receiving every message. The group is scoped to the consumer
    /// (two organizations using the same group name never share a
    /// queue), and each member passes the same deny-by-default
    /// authorization gate as [`DataController::subscribe`].
    pub fn subscribe_grouped(
        &self,
        consumer: ActorId,
        event_type: &EventTypeId,
        group: &str,
    ) -> CssResult<SubscriberHandle<NotificationMessage>> {
        let scoped = format!("{consumer}:{group}");
        self.subscribe_inner(consumer, event_type, Some(&scoped))
    }

    fn subscribe_inner(
        &self,
        consumer: ActorId,
        event_type: &EventTypeId,
        group: Option<&str>,
    ) -> CssResult<SubscriberHandle<NotificationMessage>> {
        let org = self
            .actors
            .read()
            .organization_of(consumer)
            .ok_or_else(|| CssError::NotFound(format!("actor {consumer} not registered")))?;
        self.contracts.read().require_consumer(org)?;
        let now = self.now();
        if !self.catalog.read().contains(event_type) {
            return Err(CssError::NotFound(format!(
                "event class {event_type} not declared"
            )));
        }
        if !self.is_authorized_consumer(consumer, event_type) {
            self.audit.append(
                AuditRecord::new(now, consumer, AuditAction::Subscribe)
                    .event_type(event_type.clone())
                    .denied(DenyReason::NoMatchingPolicy.to_string()),
            )?;
            return Err(CssError::AccessDenied(DenyReason::NoMatchingPolicy));
        }
        let topic = event_type.to_string();
        let handle = match group {
            Some(g) => self
                .bus
                .subscribe_group(&topic, g, self.subscription_config)?,
            None => self.bus.subscribe(&topic, self.subscription_config)?,
        };
        self.subscribers
            .write()
            .insert(handle.id(), (consumer, event_type.clone()));
        self.audit.append(
            AuditRecord::new(now, consumer, AuditAction::Subscribe).event_type(event_type.clone()),
        )?;
        Ok(handle)
    }

    /// Remove a subscription (consumer-initiated).
    pub fn unsubscribe(&self, handle: SubscriberHandle<NotificationMessage>) -> CssResult<()> {
        self.subscribers.write().remove(&handle.id());
        handle.unsubscribe()
    }

    // ---- publish --------------------------------------------------------

    /// Producer publishes an event: the notification is validated,
    /// consent-checked, indexed (identity sealed) and routed to every
    /// authorized subscriber. The detail message must already be
    /// persisted in the producer's gateway under `src_event_id`.
    ///
    /// `(producer, src_event_id)` doubles as the publish **idempotency
    /// key**: re-publishing the same source event (a producer retry
    /// after a timeout, a crash-recovery replay) is dropped by the bus's
    /// dedup window and reported as [`CssError::AlreadyExists`] instead
    /// of notifying every consumer twice.
    ///
    /// When `parent` is given the publish continues that trace;
    /// otherwise a fresh `publish` root span is minted. The span covers
    /// the consent gate through the audit group commit; `bus.route`,
    /// `bus.deliver` and `index.insert` become children, and the trace
    /// id is stamped into the Publish and Delivery audit records.
    ///
    /// Concurrency: publishes about different citizens touch disjoint
    /// index and audit shards, so they serialize only on the bus topic.
    #[allow(clippy::too_many_arguments)]
    pub fn publish(
        &self,
        producer: ActorId,
        person: PersonIdentity,
        description: String,
        event_type: EventTypeId,
        occurred_at: Timestamp,
        src_event_id: SourceEventId,
        parent: Option<&TraceContext>,
    ) -> CssResult<PublishReceipt> {
        self.contracts.read().require_producer(producer)?;
        {
            let catalog = self.catalog.read();
            let schema = catalog.schema(&event_type)?;
            if schema.producer != producer {
                return Err(CssError::Invalid(format!(
                    "event class {event_type} belongs to {}, not to {producer}",
                    schema.producer
                )));
            }
        }
        let now = self.now();
        let mut timer = StageTimer::start(&self.telemetry, "publish");
        let mut span = match parent {
            Some(ctx) => ctx.child("publish"),
            None => self.tracer.root("publish", now),
        };
        span.attr(SpanAttr::actor(producer));
        span.attr(SpanAttr::event_type(&event_type));
        let trace_id = span.trace_id();
        if let Some(t) = trace_id {
            // Exemplar: link this pass's publish.* buckets to its trace.
            timer.exemplar(t.value(), now.0);
        }
        // Consent gate at the source.
        if !self.consent.read().allows(person.id, producer, &event_type) {
            timer.stage("consent_gate");
            span.set_status(SpanStatus::Denied);
            self.telemetry.counter("controller.publish_denied").inc();
            self.audit.append(
                AuditRecord::new(now, producer, AuditAction::Publish)
                    .event_type(event_type.clone())
                    .person(person.id)
                    .trace(trace_id)
                    .denied(DenyReason::ConsentWithheld.to_string()),
            )?;
            return Err(CssError::ConsentWithheld(format!(
                "person {} opted out of {event_type} from {producer}",
                person.id
            )));
        }
        timer.stage("consent_gate");
        let global_id: GlobalEventId = self.eid_gen.next_id();
        span.attr(SpanAttr::event(global_id));
        let notification = NotificationMessage {
            global_id,
            event_type: event_type.clone(),
            person: person.clone(),
            description,
            occurred_at,
            producer,
        };
        // Route first (all-or-nothing on overflow), then index. The
        // dedup key makes producer retries idempotent at the bus.
        let ctx = span.context();
        let dedup_key = format!("{producer}:{src_event_id}");
        let outcome = self.bus.publish_opts(
            &event_type.to_string(),
            notification.clone(),
            PublishOptions::new().dedup_key(&dedup_key).traced(&ctx),
        )?;
        if outcome.is_duplicate() {
            timer.stage("route");
            span.set_status(SpanStatus::Error);
            span.finish();
            self.telemetry.counter("controller.publish_deduped").inc();
            return Err(CssError::AlreadyExists(format!(
                "source event {src_event_id} of {producer} was already published"
            )));
        }
        timer.stage("route");
        let notified: HashSet<ActorId> = self
            .subscribers
            .read()
            .values()
            .filter(|(_, ty)| *ty == event_type)
            .map(|(actor, _)| *actor)
            .collect();
        let index_span = ctx.child("index.insert");
        self.index
            .insert(&notification, src_event_id, notified.clone())?;
        index_span.finish();
        timer.stage("index");
        // One group commit for the Publish record and the per-consumer
        // Delivery fan-out: a single storage write instead of 1 + N.
        // Every record carries the same person, so the whole batch
        // lands on one audit shard.
        let mut records = Vec::with_capacity(1 + notified.len());
        records.push(
            AuditRecord::new(now, producer, AuditAction::Publish)
                .event(global_id)
                .event_type(event_type.clone())
                .person(person.id)
                .trace(trace_id),
        );
        for consumer in &notified {
            records.push(
                AuditRecord::new(now, *consumer, AuditAction::Delivery)
                    .event(global_id)
                    .event_type(event_type.clone())
                    .person(person.id)
                    .trace(trace_id),
            );
        }
        self.audit.append_batch(records)?;
        timer.stage("audit");
        timer.finish();
        span.finish();
        self.telemetry.counter("controller.published").inc();
        let mut notified: Vec<ActorId> = notified.into_iter().collect();
        notified.sort();
        Ok(PublishReceipt {
            global_id,
            notified,
        })
    }

    /// [`DataController::publish`] under its pre-consolidation name.
    #[allow(clippy::too_many_arguments)]
    #[deprecated(note = "use publish with an optional parent TraceContext")]
    pub fn publish_traced(
        &self,
        producer: ActorId,
        person: PersonIdentity,
        description: String,
        event_type: EventTypeId,
        occurred_at: Timestamp,
        src_event_id: SourceEventId,
        parent: Option<&TraceContext>,
    ) -> CssResult<PublishReceipt> {
        self.publish(
            producer,
            person,
            description,
            event_type,
            occurred_at,
            src_event_id,
            parent,
        )
    }

    // ---- index inquiry ----------------------------------------------------

    /// Consumer queries the events index for notifications about one
    /// person. Only events of classes the consumer is authorized for are
    /// returned; each returned event is marked as notified to the
    /// consumer (inquiry and pub/sub are equivalent notification
    /// channels, Section 4). Touches exactly one index shard.
    pub fn inquire_by_person(
        &self,
        consumer: ActorId,
        person: PersonId,
    ) -> CssResult<Vec<NotificationMessage>> {
        self.inquire_by_person_traced(consumer, person, None)
    }

    /// [`DataController::inquire_by_person`], continuing the caller's
    /// trace (or minting an `inquiry` root span when `parent` is none).
    pub fn inquire_by_person_traced(
        &self,
        consumer: ActorId,
        person: PersonId,
        parent: Option<&TraceContext>,
    ) -> CssResult<Vec<NotificationMessage>> {
        let ids = self.index.events_of_person(person);
        self.filter_inquiry(consumer, ids, parent)
    }

    /// Consumer queries the events index for notifications of one class.
    /// Scatter-gathers across shards; results keep global id order.
    pub fn inquire_by_type(
        &self,
        consumer: ActorId,
        event_type: &EventTypeId,
    ) -> CssResult<Vec<NotificationMessage>> {
        let ids = self.index.events_of_type(event_type);
        self.filter_inquiry(consumer, ids, None)
    }

    /// Consumer queries the events index for notifications in a time
    /// window (any class the consumer is authorized for).
    pub fn inquire_between(
        &self,
        consumer: ActorId,
        from: Timestamp,
        to: Timestamp,
    ) -> CssResult<Vec<NotificationMessage>> {
        let ids = self.index.events_between(from, to);
        self.filter_inquiry(consumer, ids, None)
    }

    fn filter_inquiry(
        &self,
        consumer: ActorId,
        candidates: Vec<GlobalEventId>,
        parent: Option<&TraceContext>,
    ) -> CssResult<Vec<NotificationMessage>> {
        let org = self
            .actors
            .read()
            .organization_of(consumer)
            .ok_or_else(|| CssError::NotFound(format!("actor {consumer} not registered")))?;
        self.contracts.read().require_consumer(org)?;
        let now = self.now();
        let mut span = match parent {
            Some(ctx) => ctx.child("inquiry"),
            None => self.tracer.root("inquiry", now),
        };
        span.attr(SpanAttr::actor(consumer));
        // Resolve each candidate once inside its owner shard (entry
        // lookup, authorization, decrypt and notified-marking share a
        // single entry resolution; markers are persisted as one batch
        // per shard). The pdp/actors read guards span the scatter, but
        // shard locks nest strictly inside them, one at a time.
        let filter_span = span.context().child("index.filter");
        let mut out = {
            let pdp = self.pdp.read();
            let actors = self.actors.read();
            self.index.filter_authorized(&candidates, consumer, |ty| {
                pdp.is_authorized(consumer, ty, &actors, now)
            })?
        };
        filter_span.finish();
        self.audit.append(
            AuditRecord::new(now, consumer, AuditAction::IndexInquiry)
                .trace(span.trace_id())
                .with_detail(format!("{} events returned", out.len())),
        )?;
        span.finish();
        out.sort_by_key(|n| n.global_id);
        Ok(out)
    }

    // ---- detail requests ----------------------------------------------------

    /// Consumer requests the details of an event (Algorithm 1).
    pub fn request_details(
        &self,
        consumer: ActorId,
        event_type: EventTypeId,
        event_id: GlobalEventId,
        purpose: Purpose,
    ) -> CssResult<css_event::PrivacyAwareEvent> {
        self.request_details_traced(consumer, event_type, event_id, purpose, None)
    }

    /// [`DataController::request_details`], continuing the caller's
    /// trace (or minting a `detail_request` root span when `parent` is
    /// none). Every Algorithm 1 stage the PEP reaches becomes a child
    /// span, and the root span status mirrors the outcome: `Denied` for
    /// policy denials, `Error` for infrastructure faults.
    pub fn request_details_traced(
        &self,
        consumer: ActorId,
        event_type: EventTypeId,
        event_id: GlobalEventId,
        purpose: Purpose,
        parent: Option<&TraceContext>,
    ) -> CssResult<css_event::PrivacyAwareEvent> {
        let org = self
            .actors
            .read()
            .organization_of(consumer)
            .ok_or_else(|| CssError::NotFound(format!("actor {consumer} not registered")))?;
        self.contracts.read().require_consumer(org)?;
        let now = self.now();
        let mut span = match parent {
            Some(ctx) => ctx.child("detail_request"),
            None => self.tracer.root("detail_request", now),
        };
        span.attr(SpanAttr::actor(consumer));
        span.attr(SpanAttr::event(event_id));
        span.attr(SpanAttr::event_type(&event_type));
        span.attr(SpanAttr::purpose(&purpose));
        let request = DetailRequest::new(
            self.request_gen.next_id(),
            consumer,
            event_type,
            event_id,
            purpose,
        );
        let pep = PolicyEnforcementPoint {
            index: &self.index,
            pdp: &self.pdp,
            actors: &self.actors,
            consent: &self.consent,
            audit: &self.audit,
            gateways: &self.gateways,
            telemetry: &self.telemetry,
            trace: span.context(),
            now,
        };
        let result = pep.get_event_details(&request);
        match &result {
            Ok(_) => {}
            Err(CssError::AccessDenied(_)) | Err(CssError::ConsentWithheld(_)) => {
                span.set_status(SpanStatus::Denied);
            }
            Err(_) => span.set_status(SpanStatus::Error),
        }
        span.finish();
        result
    }

    // ---- subject access (citizen-facing, Section 7) -----------------------

    /// A data subject views their own profile: every notification about
    /// them, regardless of consumer policies — the right of access that
    /// underpins the PHR use the paper projects. Audited.
    pub fn subject_profile(&self, person: PersonId) -> CssResult<Vec<NotificationMessage>> {
        let ids = self.index.events_of_person(person);
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            out.push(self.index.decrypt_notification(id)?);
        }
        out.sort_by_key(|n| (n.occurred_at, n.global_id));
        self.audit.append(
            AuditRecord::new(self.now(), ActorId(0), AuditAction::SubjectAccess)
                .person(person)
                .with_detail(format!("profile view: {} events", out.len())),
        )?;
        Ok(out)
    }

    /// A data subject asks who touched their data: the audit records
    /// carrying their person dimension. The lookup itself is audited.
    pub fn subject_audit_trail(&self, person: PersonId) -> CssResult<Vec<AuditRecord>> {
        let trail = self.audit.query(&AuditQuery::new().person(person));
        self.audit.append(
            AuditRecord::new(self.now(), ActorId(0), AuditAction::SubjectAccess)
                .person(person)
                .with_detail(format!("audit trail view: {} records", trail.len())),
        )?;
        Ok(trail)
    }

    // ---- consent ----------------------------------------------------------

    /// Record a consent directive from a data subject.
    pub fn record_consent(
        &self,
        person: PersonId,
        scope: ConsentScope,
        decision: ConsentDecision,
    ) -> CssResult<()> {
        let now = self.now();
        self.consent.write().record(person, scope, decision, now);
        // Consent changes are logged against the platform itself; the
        // subject is tracked in the person dimension.
        self.audit
            .append(AuditRecord::new(now, ActorId(0), AuditAction::ConsentChange).person(person))?;
        Ok(())
    }

    // ---- audit ----------------------------------------------------------

    /// Run an audit inquiry (merged across shards, global seq order).
    pub fn audit_query(&self, q: &AuditQuery) -> Vec<AuditRecord> {
        self.audit.query(q)
    }

    /// Aggregate audit report.
    pub fn audit_report(&self, q: &AuditQuery) -> AuditReport {
        self.audit.report(q)
    }

    /// The audit chain head (hand to an external auditor). With one
    /// shard this is the shard's chain head; with several it binds
    /// every shard head.
    pub fn audit_head(&self) -> [u8; 32] {
        self.audit.head()
    }

    /// Verify the audit chain end-to-end (every shard).
    pub fn verify_audit(&self) -> CssResult<()> {
        self.audit.verify()
    }

    /// Number of audit records.
    pub fn audit_len(&self) -> usize {
        self.audit.len()
    }

    /// Number of indexed events.
    pub fn index_len(&self) -> usize {
        self.index.len()
    }

    /// Bus statistics.
    pub fn bus_stats(&self) -> css_bus::BrokerStats {
        self.bus.stats()
    }

    /// Notifications that exhausted their redelivery budget, with the
    /// delivery group and original publish trace that dead-lettered
    /// them.
    pub fn bus_dead_letters(&self) -> Vec<css_bus::DeadLetter<NotificationMessage>> {
        self.bus.dead_letters()
    }

    /// Move expired in-flight deliveries back onto their queues (or to
    /// the dead-letter queue once attempts are exhausted); returns how
    /// many were moved. Polling consumers sweep lazily; an idle
    /// deployment can call this from its ops loop.
    pub fn bus_sweep(&self) -> usize {
        self.bus.sweep()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use css_storage::MemBackend;

    #[test]
    fn controller_is_shareable_across_threads() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<DataController<MemBackend>>();
    }
}
