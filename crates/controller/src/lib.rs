//! The Data Controller — "the central rooting node of the CSS platform".
//!
//! Per Section 4, the data controller:
//!
//! - maintains the **events index** (all notification messages, with the
//!   identifying information of the person stored **encrypted**) and the
//!   **event catalog**;
//! - supports producers and consumers in **joining** the platform
//!   (contracts) and consumers in **subscribing** to classes of events —
//!   rejected unless a privacy policy authorizes them (deny-by-default);
//! - **routes** notifications to subscribers over the service bus;
//! - resolves **requests for details** by enforcing the privacy policies
//!   (the PEP/PIP/PDP pipeline of Fig. 4 / Algorithm 1) and retrieving
//!   from the source only what the consumer may see;
//! - resolves **events index inquiries**;
//! - maintains **audit logs** of every request;
//! - checks data-subject **consent** (opt-in / opt-out) collected at the
//!   source.
//!
//! The [`controller::DataController`] ties these together; the
//! individual responsibilities live in their own modules.

pub mod consent;
pub mod contract;
pub mod controller;
pub mod gateway_client;
pub mod identity;
pub mod index;
pub mod pep;
pub mod shards;

pub use consent::{ConsentDecision, ConsentRegistry, ConsentScope};
pub use contract::{ContractRegistry, ParticipantContract, ParticipantRole};
pub use controller::{ControllerConfig, DataController, PublishReceipt};
pub use gateway_client::{GatewayClient, SharedGateway};
pub use identity::{Credential, IdentityManager};
pub use index::{EventsIndex, IndexEntry};
pub use pep::PolicyEnforcementPoint;
pub use shards::{HashedShards, IndexShards, ShardMap, SingleShard};
