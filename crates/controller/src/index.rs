//! The events index.
//!
//! The data controller "maintains an index of the events (events index
//! ...) as it stores all the notification messages published by the
//! producers ... The identifying information of the person specified in
//! the notification is stored in encrypted form to comply with the
//! privacy regulations." (Section 4)
//!
//! Each entry keeps:
//! - the person's identifying tuple **sealed** with the controller key,
//! - a keyed **lookup tag** (HMAC of the person id) so per-person
//!   inquiries don't require decrypting the whole index,
//! - the `eID → (producer, src_eID)` mapping the PIP resolves in
//!   Algorithm 1 step 1,
//! - the set of consumer organizations that were notified — possessing
//!   the notification is the prerequisite for a detail request.
//!
//! The index can be **disk-backed** ([`EventsIndex::open`]): inserts and
//! notified-markers are appended to a `css-storage` record log (sealed
//! identity persisted as hex, never plaintext) and replayed on restart,
//! so a controller restart loses no notifications.

use std::collections::{BTreeMap, HashMap, HashSet};

use css_crypto::SealedBox;
use css_event::NotificationMessage;
use css_storage::{LogBackend, MemBackend, RecordLog};
use css_types::{
    ActorId, CssError, CssResult, EventTypeId, GlobalEventId, PersonId, PersonIdentity,
    SourceEventId, Timestamp,
};
use css_xml::Element;

/// One stored notification, with identifying data encrypted at rest.
#[derive(Debug, Clone)]
pub struct IndexEntry {
    /// Global event id.
    pub global_id: GlobalEventId,
    /// Class of the event.
    pub event_type: EventTypeId,
    /// Sealed [`PersonIdentity`] bytes.
    pub sealed_identity: Vec<u8>,
    /// Keyed lookup tag for the person (HMAC over the person id).
    pub person_tag: [u8; 32],
    /// Event description (the *what*).
    pub description: String,
    /// When the event occurred.
    pub occurred_at: Timestamp,
    /// Producer of the event (the *where*).
    pub producer: ActorId,
    /// Producer-local id — the PIP mapping target.
    pub src_event_id: SourceEventId,
    /// Consumer organizations that received (or were authorized to see)
    /// the notification.
    pub notified: HashSet<ActorId>,
}

impl IndexEntry {
    pub(crate) fn to_xml(&self) -> Element {
        let mut e = Element::new("IndexEntry")
            .attr("eventId", self.global_id.to_string())
            .attr("type", self.event_type.to_string())
            .attr("sealed", css_crypto::to_hex(&self.sealed_identity))
            .attr("tag", css_crypto::to_hex(&self.person_tag))
            .attr("occurredAt", self.occurred_at.as_millis().to_string())
            .attr("producer", self.producer.to_string())
            .attr("srcEventId", self.src_event_id.to_string())
            .child(Element::leaf("What", self.description.clone()));
        let mut notified: Vec<ActorId> = self.notified.iter().copied().collect();
        notified.sort();
        for actor in notified {
            e = e.child(Element::new("Notified").attr("actor", actor.to_string()));
        }
        e
    }

    pub(crate) fn from_xml(e: &Element) -> CssResult<Self> {
        let bad = |msg: String| CssError::Serialization(format!("IndexEntry: {msg}"));
        let req = |attr: &str| {
            e.attribute(attr)
                .ok_or_else(|| bad(format!("missing {attr}")))
        };
        let sealed_identity =
            css_crypto::from_hex(req("sealed")?).ok_or_else(|| bad("bad sealed hex".into()))?;
        let tag_bytes =
            css_crypto::from_hex(req("tag")?).ok_or_else(|| bad("bad tag hex".into()))?;
        let person_tag: [u8; 32] = tag_bytes
            .try_into()
            .map_err(|_| bad("tag must be 32 bytes".into()))?;
        let mut notified = HashSet::new();
        for n in e.find_all("Notified") {
            let actor: ActorId = n
                .attribute("actor")
                .ok_or_else(|| bad("Notified without actor".into()))?
                .parse()
                .map_err(|err| bad(format!("bad notified actor: {err}")))?;
            notified.insert(actor);
        }
        Ok(IndexEntry {
            global_id: req("eventId")?
                .parse()
                .map_err(|err| bad(format!("bad eventId: {err}")))?,
            event_type: req("type")?
                .parse()
                .map_err(|err| bad(format!("bad type: {err}")))?,
            sealed_identity,
            person_tag,
            description: e.child_text("What").unwrap_or_default(),
            occurred_at: Timestamp(
                req("occurredAt")?
                    .parse()
                    .map_err(|err| bad(format!("bad occurredAt: {err}")))?,
            ),
            producer: req("producer")?
                .parse()
                .map_err(|err| bad(format!("bad producer: {err}")))?,
            src_event_id: req("srcEventId")?
                .parse()
                .map_err(|err| bad(format!("bad srcEventId: {err}")))?,
            notified,
        })
    }
}

/// The controller's index of all notifications, optionally disk-backed.
pub struct EventsIndex<B: LogBackend = MemBackend> {
    sealer: SealedBox,
    tag_key: Vec<u8>,
    entries: HashMap<GlobalEventId, IndexEntry>,
    by_person_tag: HashMap<[u8; 32], Vec<GlobalEventId>>,
    by_type: HashMap<EventTypeId, Vec<GlobalEventId>>,
    /// Secondary time index: `events_between` becomes a range scan
    /// instead of a full-index sweep.
    by_time: BTreeMap<Timestamp, Vec<GlobalEventId>>,
    /// Largest indexed event id (assembly resumes numbering from here).
    max_id: Option<GlobalEventId>,
    storage: Option<RecordLog<B>>,
}

/// The keyed-lookup-tag key derivation shared by every shard of an
/// index plane: identical master keys must yield identical person tags,
/// or per-person routing would scatter.
pub(crate) fn derive_tag_key(master_key: &[u8]) -> Vec<u8> {
    let mut tag_key = b"css-person-tag-v1:".to_vec();
    tag_key.extend_from_slice(master_key);
    tag_key
}

impl<B: LogBackend> EventsIndex<B> {
    /// A purely in-memory index sealing identities under keys derived
    /// from `master_key`.
    pub fn new(master_key: &[u8]) -> Self {
        let tag_key = derive_tag_key(master_key);
        EventsIndex {
            sealer: SealedBox::new(master_key),
            tag_key,
            entries: HashMap::new(),
            by_person_tag: HashMap::new(),
            by_type: HashMap::new(),
            by_time: BTreeMap::new(),
            max_id: None,
            storage: None,
        }
    }

    /// Open a disk-backed index, replaying any persisted entries and
    /// notified-markers.
    pub fn open(master_key: &[u8], backend: B) -> CssResult<Self> {
        let (storage, outcome) = RecordLog::recover(backend)?;
        let mut index = Self::new(master_key);
        for ptr in &outcome.records {
            let payload = storage.read(*ptr)?;
            let text = String::from_utf8(payload)
                .map_err(|e| CssError::Serialization(format!("index record not UTF-8: {e}")))?;
            let doc = css_xml::parse(&text).map_err(|e| CssError::Serialization(e.to_string()))?;
            match doc.name.as_str() {
                "IndexEntry" => {
                    let entry = IndexEntry::from_xml(&doc)?;
                    index.link_entry(entry);
                }
                "Notified" => {
                    let bad =
                        |msg: &str| CssError::Serialization(format!("Notified marker: {msg}"));
                    let event: GlobalEventId = doc
                        .attribute("eventId")
                        .ok_or_else(|| bad("missing eventId"))?
                        .parse()
                        .map_err(|e| bad(&format!("bad eventId: {e}")))?;
                    let actor: ActorId = doc
                        .attribute("actor")
                        .ok_or_else(|| bad("missing actor"))?
                        .parse()
                        .map_err(|e| bad(&format!("bad actor: {e}")))?;
                    if let Some(entry) = index.entries.get_mut(&event) {
                        entry.notified.insert(actor);
                    }
                }
                other => {
                    return Err(CssError::Serialization(format!(
                        "unknown index record <{other}>"
                    )))
                }
            }
        }
        index.storage = Some(storage);
        Ok(index)
    }

    /// Adopt a recovered entry in memory only (no persistence) — the
    /// shard layer re-routes replayed entries to their current owner
    /// shard, which may differ from the backend they were read off.
    pub(crate) fn adopt_entry(&mut self, entry: IndexEntry) {
        self.link_entry(entry);
    }

    /// Adopt a recovered notified-marker in memory only. Returns whether
    /// this index holds the marked event (the shard layer probes shards
    /// until one does).
    pub(crate) fn adopt_marker(&mut self, id: GlobalEventId, actor: ActorId) -> bool {
        match self.entries.get_mut(&id) {
            Some(entry) => {
                entry.notified.insert(actor);
                true
            }
            None => false,
        }
    }

    /// Attach the shard's own record log after replay; subsequent
    /// inserts and markers append to it.
    pub(crate) fn attach_storage(&mut self, storage: RecordLog<B>) {
        self.storage = Some(storage);
    }

    fn link_entry(&mut self, entry: IndexEntry) {
        self.by_person_tag
            .entry(entry.person_tag)
            .or_default()
            .push(entry.global_id);
        self.by_type
            .entry(entry.event_type.clone())
            .or_default()
            .push(entry.global_id);
        self.by_time
            .entry(entry.occurred_at)
            .or_default()
            .push(entry.global_id);
        if self.max_id.is_none_or(|m| entry.global_id > m) {
            self.max_id = Some(entry.global_id);
        }
        self.entries.insert(entry.global_id, entry);
    }

    fn persist(&mut self, doc: &Element) -> CssResult<()> {
        if let Some(storage) = &mut self.storage {
            storage.append(css_xml::to_string(doc).as_bytes())?;
        }
        Ok(())
    }

    fn tag(&self, person: PersonId) -> [u8; 32] {
        css_crypto::hmac_sha256(&self.tag_key, &person.value().to_le_bytes())
    }

    /// Store a notification, sealing the identifying fields.
    pub fn insert(
        &mut self,
        notification: &NotificationMessage,
        src_event_id: SourceEventId,
        notified: HashSet<ActorId>,
    ) -> CssResult<()> {
        let id = notification.global_id;
        if self.entries.contains_key(&id) {
            return Err(CssError::AlreadyExists(format!(
                "event {id} already indexed"
            )));
        }
        let sealed_identity = self
            .sealer
            .seal(id.value(), &notification.person.to_bytes());
        let person_tag = self.tag(notification.person.id);
        let entry = IndexEntry {
            global_id: id,
            event_type: notification.event_type.clone(),
            sealed_identity,
            person_tag,
            description: notification.description.clone(),
            occurred_at: notification.occurred_at,
            producer: notification.producer,
            src_event_id,
            notified,
        };
        self.persist(&entry.to_xml())?;
        self.link_entry(entry);
        Ok(())
    }

    /// The PIP mapping of Algorithm 1 step 1: `eID → (producer, src_eID)`.
    pub fn resolve_source(
        &self,
        id: GlobalEventId,
    ) -> CssResult<(ActorId, SourceEventId, EventTypeId)> {
        self.entries
            .get(&id)
            .map(|e| (e.producer, e.src_event_id, e.event_type.clone()))
            .ok_or_else(|| CssError::NotFound(format!("event {id} not in index")))
    }

    /// Raw entry access (controller-internal).
    pub fn entry(&self, id: GlobalEventId) -> Option<&IndexEntry> {
        self.entries.get(&id)
    }

    /// Record that `consumer` has been notified of event `id`.
    pub fn mark_notified(&mut self, id: GlobalEventId, consumer: ActorId) -> CssResult<()> {
        let Some(entry) = self.entries.get_mut(&id) else {
            return Err(CssError::NotFound(format!("event {id} not in index")));
        };
        let newly = entry.notified.insert(consumer);
        if newly {
            let marker = Element::new("Notified")
                .attr("eventId", id.to_string())
                .attr("actor", consumer.to_string());
            self.persist(&marker)?;
        }
        Ok(())
    }

    /// Whether `consumer` was notified of event `id`.
    pub fn was_notified(&self, id: GlobalEventId, consumer: ActorId) -> bool {
        self.entries
            .get(&id)
            .is_some_and(|e| e.notified.contains(&consumer))
    }

    /// Rebuild the full notification (decrypting the identity). Only the
    /// controller itself may do this, on behalf of authorized consumers.
    pub fn decrypt_notification(&self, id: GlobalEventId) -> CssResult<NotificationMessage> {
        let entry = self
            .entries
            .get(&id)
            .ok_or_else(|| CssError::NotFound(format!("event {id} not in index")))?;
        let bytes = self
            .sealer
            .open(&entry.sealed_identity)
            .map_err(|e| CssError::Crypto(e.to_string()))?;
        let person = PersonIdentity::from_bytes(&bytes)
            .ok_or_else(|| CssError::Crypto("sealed identity malformed".into()))?;
        Ok(NotificationMessage {
            global_id: entry.global_id,
            event_type: entry.event_type.clone(),
            person,
            description: entry.description.clone(),
            occurred_at: entry.occurred_at,
            producer: entry.producer,
        })
    }

    /// Event ids about one person (via the keyed tag; no decryption).
    pub fn events_of_person(&self, person: PersonId) -> Vec<GlobalEventId> {
        self.by_person_tag
            .get(&self.tag(person))
            .cloned()
            .unwrap_or_default()
    }

    /// Event ids of one class.
    pub fn events_of_type(&self, ty: &EventTypeId) -> Vec<GlobalEventId> {
        self.by_type.get(ty).cloned().unwrap_or_default()
    }

    /// Event ids in a time range (inclusive), any class — a range scan
    /// over the time index, touching only in-window entries.
    pub fn events_between(&self, from: Timestamp, to: Timestamp) -> Vec<GlobalEventId> {
        if from > to {
            return Vec::new();
        }
        let mut out: Vec<GlobalEventId> = self
            .by_time
            .range(from..=to)
            .flat_map(|(_, ids)| ids.iter().copied())
            .collect();
        out.sort();
        out
    }

    /// Largest indexed event id, if any (O(1); assembly resumes global
    /// numbering from here without walking the index).
    pub fn max_event_id(&self) -> Option<GlobalEventId> {
        self.max_id
    }

    /// Resolve each candidate event once for an inquiry on behalf of
    /// `consumer`: one entry lookup covers the authorization check
    /// (`authorize` is asked per event class), the identity decryption
    /// and the notified-marking, instead of three separate map probes.
    /// Newly-set notified markers are persisted as one batch append.
    pub fn filter_authorized(
        &mut self,
        candidates: &[GlobalEventId],
        consumer: ActorId,
        mut authorize: impl FnMut(&EventTypeId) -> bool,
    ) -> CssResult<Vec<NotificationMessage>> {
        let mut out = Vec::new();
        let mut markers: Vec<Vec<u8>> = Vec::new();
        for &id in candidates {
            let Some(entry) = self.entries.get_mut(&id) else {
                continue;
            };
            if !authorize(&entry.event_type) {
                continue;
            }
            let bytes = self
                .sealer
                .open(&entry.sealed_identity)
                .map_err(|e| CssError::Crypto(e.to_string()))?;
            let person = PersonIdentity::from_bytes(&bytes)
                .ok_or_else(|| CssError::Crypto("sealed identity malformed".into()))?;
            out.push(NotificationMessage {
                global_id: entry.global_id,
                event_type: entry.event_type.clone(),
                person,
                description: entry.description.clone(),
                occurred_at: entry.occurred_at,
                producer: entry.producer,
            });
            if entry.notified.insert(consumer) {
                let marker = Element::new("Notified")
                    .attr("eventId", id.to_string())
                    .attr("actor", consumer.to_string());
                markers.push(css_xml::to_string(&marker).into_bytes());
            }
        }
        if let Some(storage) = &mut self.storage {
            let refs: Vec<&[u8]> = markers.iter().map(Vec::as_slice).collect();
            storage.append_batch(&refs)?;
        }
        Ok(out)
    }

    /// Flush persisted records to stable storage.
    pub fn sync(&mut self) -> CssResult<()> {
        if let Some(storage) = &mut self.storage {
            storage.sync()?;
        }
        Ok(())
    }

    /// Number of indexed events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn notif(id: u64, person: u64, ty: &str) -> NotificationMessage {
        NotificationMessage {
            global_id: GlobalEventId(id),
            event_type: EventTypeId::v1(ty),
            person: PersonIdentity {
                id: PersonId(person),
                fiscal_code: format!("FC{person}"),
                name: "Mario".into(),
                surname: "Rossi".into(),
            },
            description: "test event".into(),
            occurred_at: Timestamp(id * 100),
            producer: ActorId(1),
        }
    }

    fn index() -> EventsIndex<MemBackend> {
        EventsIndex::new(b"controller master key")
    }

    #[test]
    fn insert_and_resolve_source() {
        let mut idx = index();
        idx.insert(
            &notif(1, 7, "blood-test"),
            SourceEventId(91),
            HashSet::new(),
        )
        .unwrap();
        let (producer, src, ty) = idx.resolve_source(GlobalEventId(1)).unwrap();
        assert_eq!(producer, ActorId(1));
        assert_eq!(src, SourceEventId(91));
        assert_eq!(ty, EventTypeId::v1("blood-test"));
        assert!(idx.resolve_source(GlobalEventId(404)).is_err());
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut idx = index();
        idx.insert(&notif(1, 7, "x"), SourceEventId(1), HashSet::new())
            .unwrap();
        assert!(idx
            .insert(&notif(1, 7, "x"), SourceEventId(2), HashSet::new())
            .is_err());
    }

    #[test]
    fn identity_is_encrypted_at_rest() {
        let mut idx = index();
        let n = notif(1, 7, "blood-test");
        idx.insert(&n, SourceEventId(1), HashSet::new()).unwrap();
        let entry = idx.entry(GlobalEventId(1)).unwrap();
        let raw = n.person.to_bytes();
        // The sealed blob must not contain the plaintext identity.
        assert!(entry
            .sealed_identity
            .windows(raw.len())
            .all(|w| w != raw.as_slice()));
        // And the fiscal code string must not appear either.
        assert!(entry.sealed_identity.windows(3).all(|w| w != b"FC7"));
    }

    #[test]
    fn decrypt_notification_roundtrip() {
        let mut idx = index();
        let n = notif(3, 9, "autonomy-test");
        idx.insert(&n, SourceEventId(5), HashSet::new()).unwrap();
        assert_eq!(idx.decrypt_notification(GlobalEventId(3)).unwrap(), n);
    }

    #[test]
    fn person_lookup_without_decryption() {
        let mut idx = index();
        idx.insert(&notif(1, 7, "a"), SourceEventId(1), HashSet::new())
            .unwrap();
        idx.insert(&notif(2, 8, "a"), SourceEventId(2), HashSet::new())
            .unwrap();
        idx.insert(&notif(3, 7, "b"), SourceEventId(3), HashSet::new())
            .unwrap();
        let of7 = idx.events_of_person(PersonId(7));
        assert_eq!(of7, vec![GlobalEventId(1), GlobalEventId(3)]);
        assert!(idx.events_of_person(PersonId(99)).is_empty());
    }

    #[test]
    fn type_and_time_lookup() {
        let mut idx = index();
        for i in 1..=5 {
            idx.insert(
                &notif(i, i, if i % 2 == 0 { "even" } else { "odd" }),
                SourceEventId(i),
                HashSet::new(),
            )
            .unwrap();
        }
        assert_eq!(idx.events_of_type(&EventTypeId::v1("even")).len(), 2);
        let window = idx.events_between(Timestamp(200), Timestamp(400));
        assert_eq!(
            window,
            vec![GlobalEventId(2), GlobalEventId(3), GlobalEventId(4)]
        );
    }

    #[test]
    fn time_index_agrees_with_full_scan() {
        let mut idx = index();
        // Deliberately colliding timestamps: ids 1..=12 mapped onto four
        // instants, inserted out of id order.
        for (i, id) in [5u64, 1, 9, 3, 12, 7, 2, 11, 4, 8, 6, 10]
            .iter()
            .enumerate()
        {
            let mut n = notif(*id, *id, "x");
            n.occurred_at = Timestamp((i as u64 % 4) * 100);
            idx.insert(&n, SourceEventId(*id), HashSet::new()).unwrap();
        }
        let full_scan = |from: Timestamp, to: Timestamp| {
            let mut out: Vec<GlobalEventId> = (1..=12)
                .map(GlobalEventId)
                .filter(|id| {
                    let at = idx.entry(*id).unwrap().occurred_at;
                    at >= from && at <= to
                })
                .collect();
            out.sort();
            out
        };
        for (from, to) in [
            (Timestamp(0), Timestamp(u64::MAX)),
            (Timestamp(0), Timestamp(0)),
            (Timestamp(100), Timestamp(200)),
            (Timestamp(150), Timestamp(250)),
            (Timestamp(301), Timestamp(u64::MAX)),
        ] {
            assert_eq!(idx.events_between(from, to), full_scan(from, to));
        }
        // Inverted range: empty, not a panic.
        assert!(idx.events_between(Timestamp(10), Timestamp(5)).is_empty());
        assert_eq!(idx.max_event_id(), Some(GlobalEventId(12)));
    }

    #[test]
    fn filter_authorized_resolves_marks_and_persists_once() {
        let mut idx = EventsIndex::open(b"k", MemBackend::new()).unwrap();
        for id in 1..=3u64 {
            idx.insert(
                &notif(id, id, if id == 2 { "secret" } else { "open" }),
                SourceEventId(id),
                HashSet::new(),
            )
            .unwrap();
        }
        let candidates = [
            GlobalEventId(1),
            GlobalEventId(2),
            GlobalEventId(3),
            GlobalEventId(404),
        ];
        let open = EventTypeId::v1("open");
        let out = idx
            .filter_authorized(&candidates, ActorId(5), |ty| *ty == open)
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].person.fiscal_code, "FC1");
        assert!(idx.was_notified(GlobalEventId(1), ActorId(5)));
        assert!(!idx.was_notified(GlobalEventId(2), ActorId(5)));
        // Re-running adds no new markers (and so no new bytes).
        let bytes = idx.storage.as_ref().unwrap().byte_len();
        idx.filter_authorized(&candidates, ActorId(5), |ty| *ty == open)
            .unwrap();
        assert_eq!(idx.storage.as_ref().unwrap().byte_len(), bytes);
    }

    #[test]
    fn notified_tracking() {
        let mut idx = index();
        let mut initial = HashSet::new();
        initial.insert(ActorId(5));
        idx.insert(&notif(1, 7, "x"), SourceEventId(1), initial)
            .unwrap();
        assert!(idx.was_notified(GlobalEventId(1), ActorId(5)));
        assert!(!idx.was_notified(GlobalEventId(1), ActorId(6)));
        idx.mark_notified(GlobalEventId(1), ActorId(6)).unwrap();
        assert!(idx.was_notified(GlobalEventId(1), ActorId(6)));
        assert!(idx.mark_notified(GlobalEventId(404), ActorId(6)).is_err());
    }

    #[test]
    fn different_master_keys_isolate_indices() {
        let mut a = EventsIndex::<MemBackend>::new(b"key-a");
        let n = notif(1, 7, "x");
        a.insert(&n, SourceEventId(1), HashSet::new()).unwrap();
        let entry = a.entry(GlobalEventId(1)).unwrap().clone();
        // An index with a different key cannot open the sealed blob.
        let b = EventsIndex::<MemBackend>::new(b"key-b");
        assert!(b.sealer.open(&entry.sealed_identity).is_err());
    }

    #[test]
    fn disk_backed_index_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("css-index-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut idx =
                EventsIndex::open(b"master", css_storage::FileBackend::open(&path).unwrap())
                    .unwrap();
            let mut initial = HashSet::new();
            initial.insert(ActorId(5));
            idx.insert(&notif(1, 7, "blood-test"), SourceEventId(11), initial)
                .unwrap();
            idx.insert(
                &notif(2, 8, "blood-test"),
                SourceEventId(12),
                HashSet::new(),
            )
            .unwrap();
            idx.mark_notified(GlobalEventId(2), ActorId(6)).unwrap();
            idx.sync().unwrap();
        }
        let idx =
            EventsIndex::open(b"master", css_storage::FileBackend::open(&path).unwrap()).unwrap();
        assert_eq!(idx.len(), 2);
        // Full state recovered: PIP mapping, identity, notified set.
        let (_, src, _) = idx.resolve_source(GlobalEventId(1)).unwrap();
        assert_eq!(src, SourceEventId(11));
        let n = idx.decrypt_notification(GlobalEventId(1)).unwrap();
        assert_eq!(n.person.fiscal_code, "FC7");
        assert!(idx.was_notified(GlobalEventId(1), ActorId(5)));
        assert!(idx.was_notified(GlobalEventId(2), ActorId(6)));
        assert_eq!(idx.events_of_person(PersonId(7)), vec![GlobalEventId(1)]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reopen_with_wrong_key_cannot_decrypt_but_loads_structure() {
        let dir = std::env::temp_dir().join(format!("css-index2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut idx =
                EventsIndex::open(b"right-key", css_storage::FileBackend::open(&path).unwrap())
                    .unwrap();
            idx.insert(&notif(1, 7, "x"), SourceEventId(1), HashSet::new())
                .unwrap();
            idx.sync().unwrap();
        }
        let idx = EventsIndex::open(b"wrong-key", css_storage::FileBackend::open(&path).unwrap())
            .unwrap();
        // Metadata is there (routing still possible)...
        assert_eq!(idx.len(), 1);
        // ...but identities stay opaque without the right key.
        assert!(idx.decrypt_notification(GlobalEventId(1)).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplicate_mark_notified_writes_once() {
        let mut idx = EventsIndex::open(b"k", MemBackend::new()).unwrap();
        idx.insert(&notif(1, 7, "x"), SourceEventId(1), HashSet::new())
            .unwrap();
        idx.mark_notified(GlobalEventId(1), ActorId(5)).unwrap();
        let bytes_after_first = idx.storage.as_ref().unwrap().byte_len();
        idx.mark_notified(GlobalEventId(1), ActorId(5)).unwrap();
        assert_eq!(idx.storage.as_ref().unwrap().byte_len(), bytes_after_first);
    }
}
