//! The sharded events-index plane.
//!
//! One [`EventsIndex`] behind one lock serializes the whole data plane;
//! BENCH_e15 measured flat-to-negative scaling from 1 to 8 threads
//! because of exactly that. [`IndexShards`] hash-partitions the index
//! by **citizen** into N independent shards, each behind its own
//! mutex, selected by a pluggable [`ShardMap`] (the same split a
//! driver-based bus uses: the policy of *where* a key lives is a trait,
//! so a future remote shard backend slots in without touching callers).
//!
//! Routing uses the keyed person tag (HMAC over the person id under
//! the controller master key) — the same value the index already
//! stores for per-person lookup — so the partition never sees a
//! plaintext identity. Per-person operations touch exactly one shard;
//! by-type and by-time inquiries scatter-gather across shards and
//! merge, preserving the unsharded time-ordering and single-probe
//! semantics; per-event operations (detail requests) probe shards for
//! the owner, holding each lock only for a map lookup.
//!
//! Replay on open is **re-routing**: entries are read off every
//! shard's backend and adopted by their *current* owner shard, so a
//! deployment that changes its shard count still recovers every event
//! into the right partition.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, MutexGuard};

use css_event::NotificationMessage;
use css_storage::{LogBackend, MemBackend, RecordLog};
use css_telemetry::{Counter, Histogram, MetricsRegistry};
use css_types::{
    ActorId, CssError, CssResult, EventTypeId, GlobalEventId, PersonId, SourceEventId, Timestamp,
};

use crate::index::{derive_tag_key, EventsIndex, IndexEntry};

/// Where a routing key lives: the pluggable partition policy of the
/// sharded data plane.
pub trait ShardMap: Send + Sync {
    /// How many shards the map spreads keys over.
    fn shard_count(&self) -> usize;
    /// The shard owning `key` (must be `< shard_count()`).
    fn shard_of(&self, key: u64) -> usize;
}

/// Everything on one shard — the unsharded controller, unchanged.
pub struct SingleShard;

impl ShardMap for SingleShard {
    fn shard_count(&self) -> usize {
        1
    }
    fn shard_of(&self, _key: u64) -> usize {
        0
    }
}

/// Fibonacci-hash keys onto `n` shards.
pub struct HashedShards {
    n: usize,
}

impl HashedShards {
    /// A map over `n` shards (clamped to at least 1).
    pub fn new(n: usize) -> Self {
        HashedShards { n: n.max(1) }
    }
}

impl ShardMap for HashedShards {
    fn shard_count(&self) -> usize {
        self.n
    }
    fn shard_of(&self, key: u64) -> usize {
        ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % self.n
    }
}

/// The routing key a person tag reduces to.
fn tag_key_bits(tag: &[u8; 32]) -> u64 {
    u64::from_le_bytes([
        tag[0], tag[1], tag[2], tag[3], tag[4], tag[5], tag[6], tag[7],
    ])
}

/// N per-citizen partitions of the events index, each behind its own
/// lock. All methods are `&self`: threads working different citizens
/// proceed in parallel, and a cross-shard inquiry holds one shard lock
/// at a time.
pub struct IndexShards<B: LogBackend = MemBackend> {
    shards: Vec<Mutex<EventsIndex<B>>>,
    map: Arc<dyn ShardMap>,
    tag_key: Vec<u8>,
    /// Per-shard operation counters (`shard.{i}.ops` once instrumented).
    ops: Vec<Counter>,
    /// Aggregate operation counter (`shard.ops`).
    ops_total: Counter,
    /// Time spent waiting to acquire a shard lock (`shard.lock_wait_ns`).
    lock_wait: Histogram,
}

impl<B: LogBackend> IndexShards<B> {
    /// A purely in-memory plane partitioned by `map`.
    pub fn new(master_key: &[u8], map: Arc<dyn ShardMap>) -> Self {
        let n = map.shard_count().max(1);
        IndexShards {
            shards: (0..n)
                .map(|_| Mutex::new(EventsIndex::new(master_key)))
                .collect(),
            map,
            tag_key: derive_tag_key(master_key),
            ops: (0..n).map(|_| Counter::new()).collect(),
            ops_total: Counter::new(),
            lock_wait: Histogram::new(),
        }
    }

    /// Open a disk-backed plane, one backend per shard, replaying every
    /// persisted entry into its **current** owner shard (entries first,
    /// then notified-markers, so markers resolve regardless of which
    /// backend they were read off).
    pub fn open(master_key: &[u8], map: Arc<dyn ShardMap>, backends: Vec<B>) -> CssResult<Self> {
        let n = map.shard_count().max(1);
        if backends.len() != n {
            return Err(CssError::Invalid(format!(
                "index plane wants {n} backends, got {}",
                backends.len()
            )));
        }
        let mut plane = Self::new(master_key, map);
        let mut markers: Vec<(GlobalEventId, ActorId)> = Vec::new();
        let mut logs: Vec<RecordLog<B>> = Vec::with_capacity(n);
        for backend in backends {
            let (storage, outcome) = RecordLog::recover(backend)?;
            for ptr in &outcome.records {
                let payload = storage.read(*ptr)?;
                let text = String::from_utf8(payload)
                    .map_err(|e| CssError::Serialization(format!("index record not UTF-8: {e}")))?;
                let doc =
                    css_xml::parse(&text).map_err(|e| CssError::Serialization(e.to_string()))?;
                match doc.name.as_str() {
                    "IndexEntry" => {
                        let entry = IndexEntry::from_xml(&doc)?;
                        let owner = plane.map.shard_of(tag_key_bits(&entry.person_tag));
                        plane.shards[owner].get_mut().adopt_entry(entry);
                    }
                    "Notified" => {
                        let bad =
                            |msg: &str| CssError::Serialization(format!("Notified marker: {msg}"));
                        let event: GlobalEventId = doc
                            .attribute("eventId")
                            .ok_or_else(|| bad("missing eventId"))?
                            .parse()
                            .map_err(|e| bad(&format!("bad eventId: {e}")))?;
                        let actor: ActorId = doc
                            .attribute("actor")
                            .ok_or_else(|| bad("missing actor"))?
                            .parse()
                            .map_err(|e| bad(&format!("bad actor: {e}")))?;
                        markers.push((event, actor));
                    }
                    other => {
                        return Err(CssError::Serialization(format!(
                            "unknown index record <{other}>"
                        )))
                    }
                }
            }
            logs.push(storage);
        }
        // Markers for unknown events are silently skipped, matching the
        // unsharded replay.
        for (event, actor) in markers {
            for shard in &mut plane.shards {
                if shard.get_mut().adopt_marker(event, actor) {
                    break;
                }
            }
        }
        for (shard, log) in plane.shards.iter_mut().zip(logs) {
            shard.get_mut().attach_storage(log);
        }
        Ok(plane)
    }

    /// Register this plane's instruments: per-shard `shard.{i}.ops`
    /// counters, the aggregate `shard.ops`, and the `shard.lock_wait_ns`
    /// acquisition-wait histogram.
    pub fn instrument(&mut self, registry: &MetricsRegistry) {
        self.ops = (0..self.shards.len())
            .map(|i| registry.counter(&format!("shard.{i}.ops")))
            .collect();
        self.ops_total = registry.counter("shard.ops");
        self.lock_wait = registry.histogram("shard.lock_wait_ns");
    }

    /// How many shards the plane runs.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Acquire shard `i`, recording the wait and the op.
    fn shard(&self, i: usize) -> MutexGuard<'_, EventsIndex<B>> {
        let start = Instant::now();
        let guard = self.shards[i].lock();
        self.lock_wait.record(start.elapsed().as_nanos() as u64);
        self.ops[i].inc();
        self.ops_total.inc();
        guard
    }

    fn person_tag(&self, person: PersonId) -> [u8; 32] {
        css_crypto::hmac_sha256(&self.tag_key, &person.value().to_le_bytes())
    }

    /// The shard owning a citizen's events.
    pub fn shard_of_person(&self, person: PersonId) -> usize {
        self.map.shard_of(tag_key_bits(&self.person_tag(person)))
    }

    /// Store a notification on its owner shard.
    pub fn insert(
        &self,
        notification: &NotificationMessage,
        src_event_id: SourceEventId,
        notified: HashSet<ActorId>,
    ) -> CssResult<()> {
        let owner = self.shard_of_person(notification.person.id);
        let mut shard = self.shard(owner);
        shard.insert(notification, src_event_id, notified)
    }

    /// The PIP mapping: `eID → (producer, src_eID, type)`, probing
    /// shards for the owner (each probe is one short map lookup).
    pub fn resolve_source(
        &self,
        id: GlobalEventId,
    ) -> CssResult<(ActorId, SourceEventId, EventTypeId)> {
        for i in 0..self.shards.len() {
            let shard = self.shard(i);
            if let Some(e) = shard.entry(id) {
                return Ok((e.producer, e.src_event_id, e.event_type.clone()));
            }
        }
        Err(CssError::NotFound(format!("event {id} not in index")))
    }

    /// Whether `consumer` — or any of the given enclosing organizations
    /// — was notified of event `id`. One shard lock covers the whole
    /// chain check.
    pub fn was_notified_any(
        &self,
        id: GlobalEventId,
        consumer: ActorId,
        ancestors: &[ActorId],
    ) -> bool {
        for i in 0..self.shards.len() {
            let shard = self.shard(i);
            if shard.entry(id).is_some() {
                return shard.was_notified(id, consumer)
                    || ancestors.iter().any(|a| shard.was_notified(id, *a));
            }
        }
        false
    }

    /// Whether `consumer` was notified of event `id`.
    pub fn was_notified(&self, id: GlobalEventId, consumer: ActorId) -> bool {
        self.was_notified_any(id, consumer, &[])
    }

    /// Record that `consumer` has been notified of event `id`.
    pub fn mark_notified(&self, id: GlobalEventId, consumer: ActorId) -> CssResult<()> {
        for i in 0..self.shards.len() {
            let mut shard = self.shard(i);
            if shard.entry(id).is_some() {
                return shard.mark_notified(id, consumer);
            }
        }
        Err(CssError::NotFound(format!("event {id} not in index")))
    }

    /// Rebuild the full notification (decrypting the identity) from the
    /// owning shard. Only the controller itself may do this, on behalf
    /// of authorized consumers.
    pub fn decrypt_notification(&self, id: GlobalEventId) -> CssResult<NotificationMessage> {
        for i in 0..self.shards.len() {
            let shard = self.shard(i);
            if shard.entry(id).is_some() {
                return shard.decrypt_notification(id);
            }
        }
        Err(CssError::NotFound(format!("event {id} not in index")))
    }

    /// Event ids about one person — exactly one shard is touched.
    pub fn events_of_person(&self, person: PersonId) -> Vec<GlobalEventId> {
        let owner = self.shard_of_person(person);
        self.shard(owner).events_of_person(person)
    }

    /// Event ids of one class: scatter-gather over every shard, merged
    /// into global id order.
    pub fn events_of_type(&self, ty: &EventTypeId) -> Vec<GlobalEventId> {
        let mut out = Vec::new();
        for i in 0..self.shards.len() {
            out.extend(self.shard(i).events_of_type(ty));
        }
        out.sort();
        out
    }

    /// Event ids in a time range (inclusive), any class: scatter-gather
    /// over per-shard range scans, merged into the same order the
    /// unsharded index returns.
    pub fn events_between(&self, from: Timestamp, to: Timestamp) -> Vec<GlobalEventId> {
        let mut out = Vec::new();
        for i in 0..self.shards.len() {
            out.extend(self.shard(i).events_between(from, to));
        }
        out.sort();
        out
    }

    /// Resolve inquiry candidates with per-shard authorized filtering:
    /// each shard resolves the candidates it owns in one probe apiece
    /// (authorize + decrypt + notified-marking, markers batched per
    /// shard), non-owned ids fall through, and the union is disjoint
    /// because every event has exactly one owner shard.
    pub fn filter_authorized(
        &self,
        candidates: &[GlobalEventId],
        consumer: ActorId,
        mut authorize: impl FnMut(&EventTypeId) -> bool,
    ) -> CssResult<Vec<NotificationMessage>> {
        let mut out = Vec::new();
        for i in 0..self.shards.len() {
            let mut shard = self.shard(i);
            out.extend(shard.filter_authorized(candidates, consumer, &mut authorize)?);
        }
        Ok(out)
    }

    /// Largest indexed event id across shards (assembly resumes global
    /// numbering from here).
    pub fn max_event_id(&self) -> Option<GlobalEventId> {
        (0..self.shards.len())
            .filter_map(|i| self.shard(i).max_event_id())
            .max()
    }

    /// Total indexed events across shards.
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|i| self.shard(i).len()).sum()
    }

    /// Whether no shard holds an event.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries per shard — the balance picture behind the imbalance
    /// gauge and health check.
    pub fn shard_lens(&self) -> Vec<usize> {
        (0..self.shards.len())
            .map(|i| self.shard(i).len())
            .collect()
    }

    /// Flush every shard's persisted records to stable storage.
    pub fn sync(&self) -> CssResult<()> {
        for i in 0..self.shards.len() {
            let mut shard = self.shard(i);
            shard.sync()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use css_types::PersonIdentity;

    fn notif(id: u64, person: u64, ty: &str) -> NotificationMessage {
        NotificationMessage {
            global_id: GlobalEventId(id),
            event_type: EventTypeId::v1(ty),
            person: PersonIdentity {
                id: PersonId(person),
                fiscal_code: format!("FC{person}"),
                name: "Mario".into(),
                surname: "Rossi".into(),
            },
            description: "test event".into(),
            occurred_at: Timestamp(id * 100),
            producer: ActorId(1),
        }
    }

    fn plane(n: usize) -> IndexShards<MemBackend> {
        IndexShards::new(b"controller master key", Arc::new(HashedShards::new(n)))
    }

    #[test]
    fn sharded_lookups_agree_with_single_shard() {
        let one = plane(1);
        let eight = plane(8);
        for id in 1..=40u64 {
            let n = notif(id, id % 7, if id % 2 == 0 { "even" } else { "odd" });
            one.insert(&n, SourceEventId(id), HashSet::new()).unwrap();
            eight.insert(&n, SourceEventId(id), HashSet::new()).unwrap();
        }
        assert_eq!(one.len(), eight.len());
        for p in 0..7u64 {
            assert_eq!(one.events_of_person(PersonId(p)), {
                let mut v = eight.events_of_person(PersonId(p));
                v.sort();
                v
            });
        }
        assert_eq!(
            one.events_of_type(&EventTypeId::v1("even")),
            eight.events_of_type(&EventTypeId::v1("even"))
        );
        assert_eq!(
            one.events_between(Timestamp(500), Timestamp(2000)),
            eight.events_between(Timestamp(500), Timestamp(2000))
        );
        assert_eq!(one.max_event_id(), eight.max_event_id());
        // Per-event probes find the owner regardless of shard.
        let (prod, src, _) = eight.resolve_source(GlobalEventId(17)).unwrap();
        assert_eq!((prod, src), (ActorId(1), SourceEventId(17)));
        assert!(eight.resolve_source(GlobalEventId(404)).is_err());
    }

    #[test]
    fn eight_shards_spread_citizens() {
        let eight = plane(8);
        for id in 1..=64u64 {
            eight
                .insert(&notif(id, id, "x"), SourceEventId(id), HashSet::new())
                .unwrap();
        }
        let lens = eight.shard_lens();
        let busy = lens.iter().filter(|&&n| n > 0).count();
        assert!(busy >= 4, "expected spread over shards, got {lens:?}");
        assert_eq!(lens.iter().sum::<usize>(), 64);
    }

    #[test]
    fn filter_authorized_scatter_gather_marks_once() {
        let eight = plane(8);
        for id in 1..=10u64 {
            eight
                .insert(
                    &notif(id, id, if id % 3 == 0 { "secret" } else { "open" }),
                    SourceEventId(id),
                    HashSet::new(),
                )
                .unwrap();
        }
        let candidates: Vec<GlobalEventId> = (1..=10).map(GlobalEventId).collect();
        let open = EventTypeId::v1("open");
        let mut out = eight
            .filter_authorized(&candidates, ActorId(5), |ty| *ty == open)
            .unwrap();
        out.sort_by_key(|n| n.global_id);
        assert_eq!(out.len(), 7);
        assert!(eight.was_notified(GlobalEventId(1), ActorId(5)));
        assert!(!eight.was_notified(GlobalEventId(3), ActorId(5)));
    }

    #[test]
    fn reopen_re_routes_entries_after_shard_count_change() {
        // Write through a 2-shard plane, reopen as 4 shards: every
        // entry and marker must land on its new owner shard.
        let dir = std::env::temp_dir().join(format!("css-shards-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = |i: usize| dir.join(format!("shard-{i}.log"));
        for i in 0..4 {
            let _ = std::fs::remove_file(path(i));
        }
        let file = |i: usize| css_storage::FileBackend::open(path(i)).unwrap();
        {
            let two = IndexShards::open(
                b"master",
                Arc::new(HashedShards::new(2)),
                vec![file(0), file(1)],
            )
            .unwrap();
            for id in 1..=20u64 {
                two.insert(&notif(id, id, "x"), SourceEventId(id), HashSet::new())
                    .unwrap();
            }
            two.mark_notified(GlobalEventId(3), ActorId(9)).unwrap();
            two.sync().unwrap();
        }
        let four = IndexShards::open(
            b"master",
            Arc::new(HashedShards::new(4)),
            (0..4).map(file).collect(),
        )
        .unwrap();
        assert_eq!(four.len(), 20);
        for id in 1..=20u64 {
            assert_eq!(
                four.events_of_person(PersonId(id)),
                vec![GlobalEventId(id)],
                "person {id} lost after re-shard"
            );
        }
        assert!(four.was_notified(GlobalEventId(3), ActorId(9)));
        let n = four.decrypt_notification(GlobalEventId(5)).unwrap();
        assert_eq!(n.person.fiscal_code, "FC5");
        for i in 0..4 {
            let _ = std::fs::remove_file(path(i));
        }
    }

    #[test]
    fn single_shard_map_routes_everything_to_shard_zero() {
        let one = IndexShards::<MemBackend>::new(b"k", Arc::new(SingleShard));
        for id in 1..=5u64 {
            one.insert(&notif(id, id, "x"), SourceEventId(id), HashSet::new())
                .unwrap();
        }
        assert_eq!(one.shard_lens(), vec![5]);
    }
}
