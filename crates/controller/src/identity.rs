//! Credential-based identity management.
//!
//! The paper defers identity management to a national infrastructure
//! ("we plan to include as future extension of the infrastructure
//! identity management mechanisms ... for the identification of the
//! specific users accessing the information, to validate their
//! credentials and roles and to manage changes and revocation of
//! authorizations", Section 5). This module implements that extension
//! as an HMAC-based credential scheme:
//!
//! - the controller issues a [`Credential`] to each contracted actor
//!   (the tag binds actor id + serial under the controller's key, so
//!   credentials cannot be forged or transplanted to another actor);
//! - every credential can be **revoked** individually, and re-issuing
//!   rotates the serial;
//! - validation is O(1) and requires no per-request state beyond the
//!   revocation set.

use std::collections::{HashMap, HashSet};

use css_crypto::hmac_sha256;
use css_types::{ActorId, CssError, CssResult};

/// A bearer credential for one actor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Credential {
    /// The actor this credential identifies.
    pub actor: ActorId,
    /// Monotonic serial; rotated on re-issue.
    pub serial: u64,
    /// HMAC over (actor, serial) under the issuer key.
    pub tag: [u8; 32],
}

/// Issues, validates and revokes credentials.
pub struct IdentityManager {
    key: Vec<u8>,
    next_serial: u64,
    /// Latest serial issued per actor (older serials are implicitly
    /// invalid — re-issuing rotates).
    current: HashMap<ActorId, u64>,
    revoked: HashSet<u64>,
}

impl IdentityManager {
    /// A manager with its own issuing key derived from a master key.
    pub fn new(master_key: &[u8]) -> Self {
        let mut key = b"css-identity-v1:".to_vec();
        key.extend_from_slice(master_key);
        IdentityManager {
            key,
            next_serial: 1,
            current: HashMap::new(),
            revoked: HashSet::new(),
        }
    }

    fn tag_for(&self, actor: ActorId, serial: u64) -> [u8; 32] {
        let mut msg = actor.value().to_le_bytes().to_vec();
        msg.extend_from_slice(&serial.to_le_bytes());
        hmac_sha256(&self.key, &msg)
    }

    /// Issue (or rotate) the credential for an actor. Any previously
    /// issued credential for the same actor stops validating.
    pub fn issue(&mut self, actor: ActorId) -> Credential {
        let serial = self.next_serial;
        self.next_serial += 1;
        self.current.insert(actor, serial);
        Credential {
            actor,
            serial,
            tag: self.tag_for(actor, serial),
        }
    }

    /// Validate a credential: the tag must verify, the serial must be
    /// the actor's current one, and it must not be revoked.
    pub fn validate(&self, credential: &Credential) -> CssResult<ActorId> {
        let expected = self.tag_for(credential.actor, credential.serial);
        if !css_crypto::hmac::verify_mac(&expected, &credential.tag) {
            return Err(CssError::Crypto("credential tag invalid".into()));
        }
        if self.revoked.contains(&credential.serial) {
            return Err(CssError::Crypto("credential revoked".into()));
        }
        match self.current.get(&credential.actor) {
            Some(serial) if *serial == credential.serial => Ok(credential.actor),
            _ => Err(CssError::Crypto("credential superseded".into())),
        }
    }

    /// Revoke a credential by serial. Idempotent.
    pub fn revoke(&mut self, serial: u64) {
        self.revoked.insert(serial);
    }

    /// Whether the actor currently holds a valid (non-revoked)
    /// credential.
    pub fn has_valid_credential(&self, actor: ActorId) -> bool {
        self.current
            .get(&actor)
            .is_some_and(|s| !self.revoked.contains(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> IdentityManager {
        IdentityManager::new(b"master")
    }

    #[test]
    fn issue_validate_roundtrip() {
        let mut m = mgr();
        let cred = m.issue(ActorId(7));
        assert_eq!(m.validate(&cred).unwrap(), ActorId(7));
        assert!(m.has_valid_credential(ActorId(7)));
        assert!(!m.has_valid_credential(ActorId(8)));
    }

    #[test]
    fn forged_tag_rejected() {
        let mut m = mgr();
        let mut cred = m.issue(ActorId(7));
        cred.tag[0] ^= 1;
        assert!(m.validate(&cred).is_err());
    }

    #[test]
    fn credential_bound_to_actor() {
        let mut m = mgr();
        let mut cred = m.issue(ActorId(7));
        // Transplant onto another actor: tag no longer matches.
        cred.actor = ActorId(8);
        assert!(m.validate(&cred).is_err());
    }

    #[test]
    fn revocation_invalidates() {
        let mut m = mgr();
        let cred = m.issue(ActorId(7));
        m.revoke(cred.serial);
        assert!(m.validate(&cred).is_err());
        assert!(!m.has_valid_credential(ActorId(7)));
    }

    #[test]
    fn reissue_rotates_serial() {
        let mut m = mgr();
        let old = m.issue(ActorId(7));
        let new = m.issue(ActorId(7));
        assert_ne!(old.serial, new.serial);
        assert!(m.validate(&old).is_err(), "old credential superseded");
        assert!(m.validate(&new).is_ok());
    }

    #[test]
    fn different_master_keys_do_not_cross_validate() {
        let mut a = IdentityManager::new(b"key-a");
        let b = IdentityManager::new(b"key-b");
        let cred = a.issue(ActorId(7));
        assert!(b.validate(&cred).is_err());
    }
}
