//! Participation contracts.
//!
//! "The participation of an entity to the architecture (as data producer
//! or data consumer) is conditioned to the definition of precise
//! contractual agreements with the data controller." (Section 5)

use std::collections::HashMap;

use css_types::{ActorId, CssError, CssResult, Timestamp};

/// The role(s) a participant signed up for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParticipantRole {
    /// May declare event classes and publish events.
    Producer,
    /// May subscribe, inquire the index, and request details.
    Consumer,
    /// Both roles.
    Both,
}

impl ParticipantRole {
    /// Whether this role allows producing.
    pub fn can_produce(self) -> bool {
        matches!(self, ParticipantRole::Producer | ParticipantRole::Both)
    }

    /// Whether this role allows consuming.
    pub fn can_consume(self) -> bool {
        matches!(self, ParticipantRole::Consumer | ParticipantRole::Both)
    }
}

/// A signed contract between a participant and the data controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParticipantContract {
    /// The participant (a top-level organization).
    pub actor: ActorId,
    /// Granted role.
    pub role: ParticipantRole,
    /// When the contract was signed.
    pub signed_at: Timestamp,
}

/// Registry of signed contracts, consulted before any platform action.
#[derive(Debug, Default)]
pub struct ContractRegistry {
    contracts: HashMap<ActorId, ParticipantContract>,
}

impl ContractRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a signed contract. Re-signing upgrades the role.
    pub fn sign(&mut self, contract: ParticipantContract) {
        self.contracts.insert(contract.actor, contract);
    }

    /// The contract of an actor, if any.
    pub fn get(&self, actor: ActorId) -> Option<&ParticipantContract> {
        self.contracts.get(&actor)
    }

    /// Error unless `actor` has a contract permitting production.
    pub fn require_producer(&self, actor: ActorId) -> CssResult<()> {
        match self.contracts.get(&actor) {
            Some(c) if c.role.can_produce() => Ok(()),
            Some(_) => Err(CssError::NoContract(format!(
                "{actor} has no producer contract"
            ))),
            None => Err(CssError::NoContract(format!("{actor} has no contract"))),
        }
    }

    /// Error unless `actor` has a contract permitting consumption.
    pub fn require_consumer(&self, actor: ActorId) -> CssResult<()> {
        match self.contracts.get(&actor) {
            Some(c) if c.role.can_consume() => Ok(()),
            Some(_) => Err(CssError::NoContract(format!(
                "{actor} has no consumer contract"
            ))),
            None => Err(CssError::NoContract(format!("{actor} has no contract"))),
        }
    }

    /// Number of signed contracts.
    pub fn len(&self) -> usize {
        self.contracts.len()
    }

    /// Whether no contracts exist.
    pub fn is_empty(&self) -> bool {
        self.contracts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles() {
        assert!(ParticipantRole::Producer.can_produce());
        assert!(!ParticipantRole::Producer.can_consume());
        assert!(ParticipantRole::Both.can_produce() && ParticipantRole::Both.can_consume());
    }

    #[test]
    fn require_checks() {
        let mut reg = ContractRegistry::new();
        assert!(reg.require_producer(ActorId(1)).is_err());
        reg.sign(ParticipantContract {
            actor: ActorId(1),
            role: ParticipantRole::Consumer,
            signed_at: Timestamp(0),
        });
        assert!(reg.require_producer(ActorId(1)).is_err());
        assert!(reg.require_consumer(ActorId(1)).is_ok());
        // Upgrade.
        reg.sign(ParticipantContract {
            actor: ActorId(1),
            role: ParticipantRole::Both,
            signed_at: Timestamp(1),
        });
        assert!(reg.require_producer(ActorId(1)).is_ok());
        assert_eq!(reg.len(), 1);
    }
}
