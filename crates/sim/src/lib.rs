//! Synthetic Trentino scenario and workload generation.
//!
//! The paper evaluates the CSS platform on the social-health ecosystem
//! of the Trentino region (Section 2): hospitals, municipalities, a
//! telecare company, the social welfare department, family doctors and
//! the provincial governance exchanging events about citizens in care.
//! Real deployment data is not available (it is health data), so this
//! crate generates the closest synthetic equivalent:
//!
//! - [`scenario`]: builds a fully-wired platform with the region's
//!   organizations, event classes and the policy matrix the paper's
//!   examples imply (family doctors see clinical results for treatment,
//!   the governance sees only `age`/`sex`/`autonomy_score` for
//!   statistics, ...);
//! - [`generator`]: seeded random workloads over that scenario —
//!   publishes, subscription drains, purpose-stated detail requests;
//! - [`pathway`]: correlated *elderly care pathway* event sequences
//!   (discharge → assessment → home care → meals → telecare), the
//!   process the paper's monitoring targets;
//! - [`baseline`]: the two comparators used by experiments E1 and E8 —
//!   **point-to-point document exchange** (the pre-CSS world of Fig. 1)
//!   and **full-push pub/sub** (no two-phase privacy layer);
//! - [`workers`]: competing-consumer worker fleets — one organization's
//!   N workers splitting a notification stream through the bus's
//!   delivery groups, with transient failures handed to peers
//!   (experiment E18).

pub mod baseline;
pub mod generator;
pub mod metrics;
pub mod pathway;
pub mod scenario;
pub mod workers;

pub use baseline::{
    full_push_exposure, over_constrained_exposure, point_to_point_exposure, two_phase_exposure,
};
pub use generator::{run_workload, synth_details, WorkloadConfig, WorkloadReport};
pub use metrics::ExposureReport;
pub use pathway::{run_pathway, PathwayReport};
pub use scenario::{Orgs, Scenario, ScenarioConfig};
pub use workers::{run_worker_fleet, WorkerFleetConfig, WorkerFleetReport};
