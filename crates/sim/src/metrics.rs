//! Exposure metrics compared across integration architectures.

/// What an integration architecture cost in messages and disclosure.
///
/// Produced by the baselines and by the CSS measurement so experiments
/// E1 and E8 can compare like with like.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExposureReport {
    /// Distinct communication channels that had to be provisioned
    /// (point-to-point links, or topics + gateway links for CSS).
    pub channels: usize,
    /// Messages sent in total (documents, notifications, detail
    /// responses).
    pub messages: usize,
    /// Total payload bytes moved.
    pub total_bytes: usize,
    /// Bytes of *sensitive* field values that crossed an organization
    /// boundary.
    pub sensitive_bytes: usize,
    /// Count of sensitive field values disclosed to consumers that had
    /// no need for them (over-disclosure events).
    pub unnecessary_disclosures: usize,
    /// Count of legitimate detail needs that went unserved (the
    /// over-constraining failure mode: caregivers lacking data).
    pub unserved_needs: usize,
}

impl ExposureReport {
    /// Merge another report into this one.
    pub fn absorb(&mut self, other: &ExposureReport) {
        self.channels += other.channels;
        self.messages += other.messages;
        self.total_bytes += other.total_bytes;
        self.sensitive_bytes += other.sensitive_bytes;
        self.unnecessary_disclosures += other.unnecessary_disclosures;
        self.unserved_needs += other.unserved_needs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums() {
        let mut a = ExposureReport {
            channels: 1,
            messages: 2,
            total_bytes: 3,
            sensitive_bytes: 4,
            unnecessary_disclosures: 5,
            unserved_needs: 6,
        };
        a.absorb(&a.clone());
        assert_eq!(a.messages, 4);
        assert_eq!(a.unnecessary_disclosures, 10);
        assert_eq!(a.unserved_needs, 12);
    }
}
