//! Baseline integration architectures (experiments E1 and E8).
//!
//! The paper motivates CSS against the status quo of Fig. 1 — manual,
//! point-to-point document exchange where "data owners ... do not have
//! any fine-grained control on the data they exchange" and "either they
//! make the data inaccessible ... or they release more data than
//! required". These analytic models let the benches compare three
//! architectures on identical workload parameters:
//!
//! - **point-to-point**: every producer-consumer pair needs its own
//!   channel; full documents travel on every exchange;
//! - **full-push pub/sub**: a bus removes the channel explosion, but
//!   details are pushed inside notifications, so sensitive data still
//!   reaches every subscriber;
//! - **two-phase CSS**: notifications carry no sensitive payload;
//!   details travel only on explicit, policy-filtered requests.

use crate::metrics::ExposureReport;

/// Workload parameters shared by the three models.
#[derive(Debug, Clone, Copy)]
pub struct FlowParams {
    /// Producer organizations.
    pub producers: usize,
    /// Consumer organizations.
    pub consumers: usize,
    /// Events published in the window under study.
    pub events: usize,
    /// Consumers interested in (subscribed to) each event.
    pub interested_per_event: usize,
    /// Fraction of notified consumers that actually need the details.
    pub detail_request_prob: f64,
    /// Bytes of a notification (who/what/when/where).
    pub notification_bytes: usize,
    /// Bytes of a full detail document.
    pub detail_bytes: usize,
    /// Bytes of the sensitive portion of a detail document.
    pub sensitive_bytes: usize,
    /// Fraction of the detail document the applicable policy allows.
    pub allowed_fraction: f64,
}

impl Default for FlowParams {
    fn default() -> Self {
        FlowParams {
            producers: 4,
            consumers: 5,
            events: 1_000,
            interested_per_event: 3,
            detail_request_prob: 0.3,
            notification_bytes: 200,
            detail_bytes: 2_000,
            sensitive_bytes: 1_200,
            allowed_fraction: 0.5,
        }
    }
}

/// Fig. 1's world: direct document exchange between every pair.
pub fn point_to_point_exposure(p: &FlowParams) -> ExposureReport {
    let deliveries = p.events * p.interested_per_event;
    let needless = (deliveries as f64 * (1.0 - p.detail_request_prob)).round() as usize;
    ExposureReport {
        // Every producer must integrate with every consumer.
        channels: p.producers * p.consumers,
        messages: deliveries,
        total_bytes: deliveries * p.detail_bytes,
        // The full document, sensitive data included, goes to everyone
        // interested.
        sensitive_bytes: deliveries * p.sensitive_bytes,
        unnecessary_disclosures: needless,
        unserved_needs: 0,
    }
}

/// Pub/sub without the two-phase privacy layer: details ride inside the
/// notification.
pub fn full_push_exposure(p: &FlowParams) -> ExposureReport {
    let deliveries = p.events * p.interested_per_event;
    let needless = (deliveries as f64 * (1.0 - p.detail_request_prob)).round() as usize;
    ExposureReport {
        // Each party integrates once, with the bus.
        channels: p.producers + p.consumers,
        messages: deliveries,
        total_bytes: deliveries * p.detail_bytes,
        sensitive_bytes: deliveries * p.sensitive_bytes,
        unnecessary_disclosures: needless,
        unserved_needs: 0,
    }
}

/// The CSS model: summary first, filtered details on explicit request.
pub fn two_phase_exposure(p: &FlowParams) -> ExposureReport {
    let deliveries = p.events * p.interested_per_event;
    let requests = (deliveries as f64 * p.detail_request_prob).round() as usize;
    let allowed_detail = (p.detail_bytes as f64 * p.allowed_fraction).round() as usize;
    let allowed_sensitive = (p.sensitive_bytes as f64 * p.allowed_fraction).round() as usize;
    ExposureReport {
        channels: p.producers + p.consumers,
        // Notifications to everyone interested, plus request/response
        // round-trips for those that need details.
        messages: deliveries + 2 * requests,
        total_bytes: deliveries * p.notification_bytes
            + requests * (p.notification_bytes / 2 + allowed_detail),
        // Sensitive data moves only inside permitted, filtered responses.
        sensitive_bytes: requests * allowed_sensitive,
        unnecessary_disclosures: 0,
        unserved_needs: 0,
    }
}

/// The paper's other failure mode: "either they make the data
/// inaccessible (over-constraining approach) or they release more data
/// than required". Here sources share nothing beyond notifications:
/// perfect privacy, but every legitimate detail need goes unserved.
pub fn over_constrained_exposure(p: &FlowParams) -> ExposureReport {
    let deliveries = p.events * p.interested_per_event;
    let needs = (deliveries as f64 * p.detail_request_prob).round() as usize;
    ExposureReport {
        channels: p.producers + p.consumers,
        messages: deliveries,
        total_bytes: deliveries * p.notification_bytes,
        sensitive_bytes: 0,
        unnecessary_disclosures: 0,
        unserved_needs: needs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn over_constraining_trades_disclosure_for_unserved_needs() {
        let p = FlowParams::default();
        let closed = over_constrained_exposure(&p);
        let css = two_phase_exposure(&p);
        assert_eq!(closed.sensitive_bytes, 0);
        assert!(closed.unserved_needs > 0);
        // CSS serves every legitimate need with bounded disclosure.
        assert_eq!(css.unserved_needs, 0);
        assert!(css.sensitive_bytes > 0);
    }

    #[test]
    fn channel_counts_cross_over_with_scale() {
        // Point-to-point channels grow multiplicatively, bus channels
        // additively: at 2x2 they tie, beyond that the bus wins.
        let small = FlowParams {
            producers: 2,
            consumers: 2,
            ..Default::default()
        };
        assert_eq!(point_to_point_exposure(&small).channels, 4);
        assert_eq!(two_phase_exposure(&small).channels, 4);
        let large = FlowParams {
            producers: 20,
            consumers: 30,
            ..Default::default()
        };
        assert_eq!(point_to_point_exposure(&large).channels, 600);
        assert_eq!(two_phase_exposure(&large).channels, 50);
    }

    #[test]
    fn two_phase_minimizes_sensitive_exposure() {
        let p = FlowParams::default();
        let ptp = point_to_point_exposure(&p);
        let push = full_push_exposure(&p);
        let css = two_phase_exposure(&p);
        assert_eq!(ptp.sensitive_bytes, push.sensitive_bytes);
        assert!(css.sensitive_bytes < ptp.sensitive_bytes / 2);
        assert_eq!(css.unnecessary_disclosures, 0);
        assert!(ptp.unnecessary_disclosures > 0);
    }

    #[test]
    fn two_phase_costs_more_messages_at_high_request_rates() {
        // The trade-off: when *everyone* wants details, two-phase pays
        // extra round-trips.
        let hot = FlowParams {
            detail_request_prob: 1.0,
            ..Default::default()
        };
        let css = two_phase_exposure(&hot);
        let push = full_push_exposure(&hot);
        assert!(css.messages > push.messages);
        // But still discloses less when policies filter fields.
        assert!(css.sensitive_bytes < push.sensitive_bytes);
    }

    #[test]
    fn zero_request_rate_moves_no_sensitive_bytes() {
        let cold = FlowParams {
            detail_request_prob: 0.0,
            ..Default::default()
        };
        let css = two_phase_exposure(&cold);
        assert_eq!(css.sensitive_bytes, 0);
        assert_eq!(css.messages, cold.events * cold.interested_per_event);
    }
}
