//! Seeded random workloads over the scenario.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use css_core::{ConsumerHandle, MemoryProvider, Subscription};
use css_event::{EventDetails, FieldValue, NotificationMessage};
use css_types::{CssError, Duration, EventTypeId, PersonId, Purpose};

use crate::scenario::{types, Scenario};

/// Workload knobs.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Number of events to publish.
    pub events: usize,
    /// Probability that a notified consumer requests the details.
    pub detail_request_prob: f64,
    /// Probability that a detail request states a purpose outside the
    /// consumer's grants (modelling mistaken or over-reaching requests;
    /// these exercise the deny path and show up in audit reports).
    pub wrong_purpose_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            events: 200,
            detail_request_prob: 0.3,
            wrong_purpose_prob: 0.05,
            seed: 99,
        }
    }
}

/// What happened during a workload run.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkloadReport {
    /// Events successfully published.
    pub published: usize,
    /// Notification deliveries across all subscriptions.
    pub notifications_delivered: usize,
    /// Detail requests that were permitted.
    pub detail_permits: usize,
    /// Detail requests that were denied.
    pub detail_denies: usize,
    /// Bytes of field values released through permitted detail
    /// responses.
    pub released_bytes: usize,
    /// Bytes of *sensitive* field values released (fields the schema
    /// marks sensitive never leave unless a policy allows them; this
    /// counts what policies did allow).
    pub sensitive_released_bytes: usize,
}

/// Generate schema-valid synthetic details for a scenario event type.
pub fn synth_details(ty: &EventTypeId, person: PersonId, rng: &mut StdRng) -> EventDetails {
    let pid = FieldValue::Integer(person.value() as i64);
    let when = FieldValue::DateTime(css_types::Timestamp(
        1_262_304_000_000 + rng.gen_range(0..31_536_000_000u64),
    ));
    match ty.code() {
        "blood-test" => EventDetails::new(ty.clone())
            .with("PatientId", pid)
            .with("CollectedAt", when)
            .with(
                "Result",
                FieldValue::Code(
                    if rng.gen_bool(0.9) {
                        "negative"
                    } else {
                        "positive"
                    }
                    .into(),
                ),
            )
            .with(
                "Hemoglobin",
                FieldValue::Decimal(
                    format!("{}.{}", rng.gen_range(10..18), rng.gen_range(0..10))
                        .parse()
                        .unwrap(),
                ),
            )
            .with("HivResult", FieldValue::Text("negative".into())),
        "radiology-report" => EventDetails::new(ty.clone())
            .with("PatientId", pid)
            .with(
                "Modality",
                FieldValue::Code(["xray", "ct", "mri"][rng.gen_range(0..3)].into()),
            )
            .with(
                "Report",
                FieldValue::Text("no acute findings; follow-up in 6 months".into()),
            ),
        "hospital-discharge" => EventDetails::new(ty.clone())
            .with("PatientId", pid)
            .with("Ward", FieldValue::Text("geriatrics".into()))
            .with("DischargedAt", when)
            .with(
                "Diagnosis",
                FieldValue::Text("hip fracture, recovering".into()),
            )
            .with("CarePlan", FieldValue::Text("home care 3x weekly".into())),
        "home-care-service-event" => EventDetails::new(ty.clone())
            .with("PatientId", pid)
            .with(
                "Service",
                FieldValue::Text(["cleaning", "nursing", "bathing"][rng.gen_range(0..3)].into()),
            )
            .with(
                "DurationMinutes",
                FieldValue::Integer(rng.gen_range(20..120)),
            )
            .with(
                "CareNotes",
                FieldValue::Text("patient in good spirits".into()),
            ),
        "telecare-alarm" => EventDetails::new(ty.clone())
            .with("PatientId", pid)
            .with(
                "AlarmKind",
                FieldValue::Code(["fall", "panic", "inactivity"][rng.gen_range(0..3)].into()),
            )
            .with(
                "Outcome",
                FieldValue::Text("operator call, no ambulance".into()),
            ),
        "autonomy-assessment" => EventDetails::new(ty.clone())
            .with("PatientId", pid)
            .with("Age", FieldValue::Integer(rng.gen_range(65..95)))
            .with(
                "Sex",
                FieldValue::Code(if rng.gen_bool(0.5) { "m" } else { "f" }.into()),
            )
            .with("AutonomyScore", FieldValue::Integer(rng.gen_range(1..10)))
            .with("PsychNotes", FieldValue::Text("mild memory decline".into())),
        "meal-delivery" => EventDetails::new(ty.clone())
            .with("PatientId", pid)
            .with("MealType", FieldValue::Text("low sodium".into()))
            .with("DietNotes", FieldValue::Text("diabetic diet".into())),
        other => panic!("unknown scenario event type {other}"),
    }
}

struct ActiveConsumer<'a> {
    handle: ConsumerHandle<MemoryProvider>,
    subs: Vec<Subscription>,
    purpose_for: fn(&EventTypeId) -> Purpose,
    _marker: std::marker::PhantomData<&'a ()>,
}

fn doctor_purpose(_ty: &EventTypeId) -> Purpose {
    Purpose::HealthcareTreatment
}

fn welfare_purpose(_ty: &EventTypeId) -> Purpose {
    Purpose::SocialAssistance
}

fn governance_purpose(ty: &EventTypeId) -> Purpose {
    if ty.code() == "autonomy-assessment" {
        Purpose::StatisticalAnalysis
    } else {
        Purpose::Reimbursement
    }
}

/// Run a random workload: publish events, drain subscriptions, request
/// details with per-role purposes.
pub fn run_workload(scenario: &Scenario, config: WorkloadConfig) -> WorkloadReport {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut report = WorkloadReport::default();

    // Stand up the consumer fleet.
    let mut consumers: Vec<ActiveConsumer<'_>> = Vec::new();
    for doctor in &scenario.orgs.family_doctors {
        let handle = scenario.platform.consumer(*doctor).expect("doctor joined");
        let subs = [
            types::blood_test(),
            types::radiology_report(),
            types::discharge(),
            types::telecare_alarm(),
            types::home_care(),
        ]
        .iter()
        .map(|ty| handle.subscribe(ty).expect("doctor policy exists"))
        .collect();
        consumers.push(ActiveConsumer {
            handle,
            subs,
            purpose_for: doctor_purpose,
            _marker: Default::default(),
        });
    }
    {
        let handle = scenario
            .platform
            .consumer(scenario.orgs.welfare)
            .expect("welfare joined");
        let subs = [
            types::discharge(),
            types::home_care(),
            types::telecare_alarm(),
            types::meal_delivery(),
        ]
        .iter()
        .map(|ty| handle.subscribe(ty).expect("welfare policy exists"))
        .collect();
        consumers.push(ActiveConsumer {
            handle,
            subs,
            purpose_for: welfare_purpose,
            _marker: Default::default(),
        });
    }
    {
        let handle = scenario
            .platform
            .consumer(scenario.orgs.governance)
            .expect("governance joined");
        let subs = [
            types::autonomy(),
            types::home_care(),
            types::meal_delivery(),
        ]
        .iter()
        .map(|ty| handle.subscribe(ty).expect("governance policy exists"))
        .collect();
        consumers.push(ActiveConsumer {
            handle,
            subs,
            purpose_for: governance_purpose,
            _marker: Default::default(),
        });
    }

    let all_types = types::all();
    for _ in 0..config.events {
        let ty = &all_types[rng.gen_range(0..all_types.len())];
        let person = &scenario.persons[rng.gen_range(0..scenario.persons.len())];
        let producer_org = scenario.producer_of(ty);
        let producer = scenario
            .platform
            .producer(producer_org)
            .expect("producer joined");
        let details = synth_details(ty, person.id, &mut rng);
        scenario
            .clock
            .advance(Duration::minutes(rng.gen_range(1..120)));
        let occurred_at = {
            use css_types::Clock;
            scenario.clock.now()
        };
        match producer.publish(
            person.clone(),
            format!("{} occurred", ty.code()),
            details,
            occurred_at,
        ) {
            Ok(_) => report.published += 1,
            Err(CssError::ConsentWithheld(_)) => continue,
            Err(e) => panic!("unexpected publish failure: {e}"),
        }

        // Consumers drain and maybe chase details.
        for consumer in &consumers {
            for sub in &consumer.subs {
                let notifications: Vec<NotificationMessage> =
                    sub.drain().expect("subscription alive");
                for n in notifications {
                    report.notifications_delivered += 1;
                    if rng.gen_bool(config.detail_request_prob) {
                        let purpose = if rng.gen_bool(config.wrong_purpose_prob) {
                            Purpose::Custom("over-reach".into())
                        } else {
                            (consumer.purpose_for)(&n.event_type)
                        };
                        match consumer.handle.request_details(&n, purpose) {
                            Ok(response) => {
                                report.detail_permits += 1;
                                report.released_bytes += response.details.exposed_bytes();
                                // Sensitive = fields the producer's schema
                                // marks sensitive.
                                let schema = scenario
                                    .platform
                                    .controller()
                                    .catalog()
                                    .schema(&n.event_type)
                                    .expect("declared");
                                let sensitive: std::collections::HashSet<&str> =
                                    schema.sensitive_fields().collect();
                                report.sensitive_released_bytes += response
                                    .details
                                    .iter()
                                    .filter(|(name, _)| sensitive.contains(name))
                                    .map(|(_, v)| v.byte_size())
                                    .sum::<usize>();
                            }
                            Err(CssError::AccessDenied(_)) => report.detail_denies += 1,
                            Err(e) => panic!("unexpected detail failure: {e}"),
                        }
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioConfig};

    #[test]
    fn workload_runs_and_counts() {
        let scenario = Scenario::build(ScenarioConfig {
            persons: 10,
            family_doctors: 2,
            seed: 3,
        })
        .unwrap();
        let report = run_workload(
            &scenario,
            WorkloadConfig {
                events: 50,
                detail_request_prob: 0.5,
                wrong_purpose_prob: 0.05,
                seed: 4,
            },
        );
        assert_eq!(report.published, 50);
        assert!(report.notifications_delivered > 0);
        assert!(report.detail_permits > 0);
        assert!(report.released_bytes > 0);
        // Audit log saw everything and still verifies.
        scenario.platform.verify_audit().unwrap();
    }

    #[test]
    fn workload_deterministic_under_seed() {
        let build = || {
            let scenario = Scenario::build(ScenarioConfig {
                persons: 8,
                family_doctors: 1,
                seed: 1,
            })
            .unwrap();
            let r = run_workload(
                &scenario,
                WorkloadConfig {
                    events: 30,
                    detail_request_prob: 0.4,
                    wrong_purpose_prob: 0.05,
                    seed: 2,
                },
            );
            (
                r.published,
                r.notifications_delivered,
                r.detail_permits,
                r.released_bytes,
            )
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn zero_probability_means_no_detail_requests() {
        let scenario = Scenario::build(ScenarioConfig {
            persons: 5,
            family_doctors: 1,
            seed: 1,
        })
        .unwrap();
        let report = run_workload(
            &scenario,
            WorkloadConfig {
                events: 20,
                detail_request_prob: 0.0,
                wrong_purpose_prob: 0.05,
                seed: 2,
            },
        );
        assert_eq!(report.detail_permits + report.detail_denies, 0);
        assert_eq!(report.released_bytes, 0);
    }

    #[test]
    fn synth_details_validate_against_schemas() {
        let scenario = Scenario::build(ScenarioConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let controller = scenario.platform.controller();
        for ty in types::all() {
            let details = synth_details(&ty, PersonId(1), &mut rng);
            let schema = controller.catalog().schema(&ty).unwrap();
            schema.validate(&details).unwrap_or_else(|e| {
                panic!("synthetic details for {ty} invalid: {e}");
            });
        }
    }
}
